"""Aggregate Tree baseline: FlatFAT over individual records (Section 3.2).

Reimplements the FlatFAT-style aggregate tree (Tangwongsan et al.) as the
paper benchmarks it: a binary tree of partial aggregates *on top of the
stream records* (Table 1 row 2).  Window aggregates become O(log n)
range queries, so the latency is far below a tuple buffer -- but every
record costs O(log n) tree updates, and an out-of-order record forces an
O(n) leaf insert plus rebuild ("rebalancing"), which is why this
technique collapses under disorder in Figure 9 / Figure 12a.

One tree is maintained per distinct aggregate function; raw values are
additionally retained so that holistic/non-commutative workloads remain
supported (Table 1 row 2 counts both).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Sequence

from ..core.characteristics import Query
from ..core.flatfat import FlatFAT
from ..core.operator_base import StreamOrderViolation, WindowOperator
from ..core.types import Record, Watermark, WindowResult
from .trigger import BufferTriggerEngine

__all__ = ["AggregateTreeOperator"]


class AggregateTreeOperator(WindowOperator):
    """FlatFAT over records: low latency, expensive out-of-order inserts."""

    def __init__(
        self,
        *,
        stream_in_order: bool = False,
        allowed_lateness: int = 0,
        emit_empty: bool = False,
    ) -> None:
        super().__init__()
        self.stream_in_order = stream_in_order
        self.allowed_lateness = allowed_lateness
        self._ts: List[int] = []
        self._values: List[Any] = []
        #: One FlatFAT per distinct aggregation (leaves = lifted records).
        self._trees: Dict[tuple, FlatFAT] = {}
        self._fn_by_key: Dict[tuple, Any] = {}
        self._max_ts: int | None = None
        self._watermark: int | None = None
        self._engine = BufferTriggerEngine(self, emit_empty=emit_empty)

    def _on_queries_changed(self) -> None:
        self._engine.set_queries(self.queries)
        self._fn_by_key = {q.aggregation.signature(): q.aggregation for q in self.queries}
        for query in self.queries:
            key = query.aggregation.signature()
            if key not in self._trees:
                function = query.aggregation
                leaves = [function.lift(value) for value in self._values]
                self._trees[key] = FlatFAT(function.combine, leaves)
        live = {q.aggregation.signature() for q in self.queries}
        for key in list(self._trees):
            if key not in live:
                del self._trees[key]

    # ------------------------------------------------------------------
    # SortedRecordsView protocol

    def timestamps(self) -> Sequence[int]:
        return self._ts

    def fold_range(self, lo: int, hi: int, query: Query) -> Any:
        if hi <= lo:
            return None
        return self._trees[query.aggregation.signature()].query(lo, hi)

    # ------------------------------------------------------------------

    def process_record(self, record: Record) -> List[WindowResult]:
        results: List[WindowResult] = []
        in_order = self._max_ts is None or record.ts >= self._max_ts
        if in_order:
            self._ts.append(record.ts)
            self._values.append(record.value)
            for key, tree in self._trees.items():
                function = self._function_for(key)
                tree.append(function.lift(record.value))
            self._max_ts = record.ts
            if self.stream_in_order:
                results.extend(self._engine.advance(record.ts))
                self._evict(record.ts)
        else:
            if self.stream_in_order:
                raise StreamOrderViolation(
                    f"late record ts={record.ts} on an in-order aggregate tree"
                )
            if (
                self._watermark is not None
                and record.ts < self._watermark - self.allowed_lateness
            ):
                self._drop_late(record)
                return results
            position = bisect.bisect_right(self._ts, record.ts)
            self._ts.insert(position, record.ts)
            self._values.insert(position, record.value)
            # The expensive path: a leaf insert in the middle of the tree
            # shifts leaves and recomputes inner nodes (O(n)).
            for key, tree in self._trees.items():
                function = self._function_for(key)
                tree.insert(position, function.lift(record.value))
            results.extend(self._engine.on_late_record(record.ts))
        return results

    def _function_for(self, key: tuple):
        return self._fn_by_key[key]

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        if self._watermark is not None and watermark.ts <= self._watermark:
            return []
        self._watermark = watermark.ts
        results = self._engine.advance(watermark.ts)
        self._evict(watermark.ts)
        return results

    def process_batch(self, elements) -> List[WindowResult]:
        """Batch entry point: bulk leaf appends for in-order runs.

        On watermark-driven streams a run of in-order records extends
        the buffer and each tree via :meth:`FlatFAT.extend` (one growth
        and one inner-node repair pass per run).  In-order-declared
        streams emit per record, and late records pay their O(n) insert,
        both on the per-element path -- results match :meth:`process`.
        """
        results: List[WindowResult] = []
        process = self.process
        n = len(elements)
        i = 0
        while i < n:
            element = elements[i]
            if not self.stream_in_order and isinstance(element, Record):
                prev = self._max_ts
                j = i
                while j < n:
                    e = elements[j]
                    if not isinstance(e, Record) or (prev is not None and e.ts < prev):
                        break
                    prev = e.ts
                    j += 1
                if j > i:
                    run = elements[i:j]
                    values = [record.value for record in run]
                    self._ts.extend(record.ts for record in run)
                    self._values.extend(values)
                    for key, tree in self._trees.items():
                        lift = self._function_for(key).lift
                        tree.extend([lift(value) for value in values])
                    self._max_ts = prev
                    i = j
                    continue
            out = process(element)
            if out:
                results.extend(out)
            i += 1
        return results

    # ------------------------------------------------------------------

    def _retention(self) -> int:
        extent = 0
        for query in self.queries:
            for attribute in ("length", "gap", "count"):
                value = getattr(query.window, attribute, None)
                if value is not None:
                    extent = max(extent, value)
        return extent + self.allowed_lateness

    #: Front deletions are O(n); batch them so steady-state eviction
    #: amortizes to O(1) per record.
    EVICT_BATCH = 1024

    def _evict(self, wm: int) -> None:
        horizon = wm - self._retention()
        cut = bisect.bisect_right(self._ts, horizon)
        if cut >= self.EVICT_BATCH or (cut and cut == len(self._ts)):
            del self._ts[:cut]
            del self._values[:cut]
            for tree in self._trees.values():
                tree.remove_front(cut)
            self._engine.note_eviction(cut)
            self._engine.prune_emitted(horizon)

    # ------------------------------------------------------------------

    def state_objects(self) -> list:
        return [self._ts, self._values, *self._trees.values()]

    def buffered_records(self) -> int:
        return len(self._ts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"AggregateTreeOperator(records={len(self._ts)}, "
            f"trees={len(self._trees)}, queries={len(self.queries)})"
        )
