"""Pairs baseline (Krishnamurthy et al., SIGMOD 2006; Section 3.4).

One of the first on-the-fly stream-slicing techniques.  Pairs splits
each slide period of a periodic (tumbling/sliding) window into two
"pair" fragments sized so that fragment edges line up with every window
start and end; for multiple queries the composite slicing uses the
union of all window edges.  Partial aggregates are computed per
fragment and combined lazily when windows end.

Limitations (faithful to the original): context-free periodic windows
only, in-order streams only, partial aggregates only (no raw records,
hence no holistic aggregations).
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..aggregations.base import AggregationClass
from ..core.characteristics import Query
from ..core.operator_base import StreamOrderViolation, WindowOperator
from ..core.types import Record, Watermark, WindowResult
from ..windows.base import ContextClass
from ..windows.sliding import SlidingWindow
from ..windows.tumbling import TumblingWindow

__all__ = ["PairsOperator"]


class PairsOperator(WindowOperator):
    """Pairs slicing: in-order, periodic context-free windows, lazy final
    aggregation over pair fragments."""

    def __init__(self, *, emit_empty: bool = False) -> None:
        super().__init__()
        self.emit_empty = emit_empty
        #: Distinct aggregate functions (shared across queries) and the
        #: per-query index into them.
        self._functions = []
        self._fn_of_query = []
        #: Closed fragments: parallel arrays of (start, end, partial-per-fn).
        self._frag_start: List[int] = []
        self._frag_end: List[int] = []
        self._frag_aggs: List[List[Any]] = []
        self._open_start: Optional[int] = None
        self._open_aggs: Optional[List[Any]] = None
        self._next_edge: Optional[int] = None
        self._max_ts: Optional[int] = None
        self._prev_emit: Optional[int] = None

    # ------------------------------------------------------------------

    def add_query(self, window, aggregation) -> Query:
        if not isinstance(window, (TumblingWindow, SlidingWindow)):
            raise ValueError(
                "Pairs supports periodic tumbling/sliding windows only; "
                f"got {type(window).__name__}"
            )
        if window.context is not ContextClass.CONTEXT_FREE:
            raise ValueError("Pairs supports context-free windows only")
        if aggregation.kind is AggregationClass.HOLISTIC:
            raise ValueError("Pairs stores partial aggregates only (no holistic)")
        return super().add_query(window, aggregation)

    def _on_queries_changed(self) -> None:
        self._functions = []
        self._fn_of_query = []
        index_by_signature = {}
        for query in self.queries:
            key = query.aggregation.signature()
            if key not in index_by_signature:
                index_by_signature[key] = len(self._functions)
                self._functions.append(query.aggregation)
            self._fn_of_query.append(index_by_signature[key])
        # Open fragment layout changed: re-home existing partials.
        if self._open_aggs is not None and len(self._open_aggs) != len(self._functions):
            self._open_aggs = self._open_aggs[: len(self._functions)] + [None] * max(
                0, len(self._functions) - len(self._open_aggs)
            )

    # ------------------------------------------------------------------

    def _compute_next_edge(self, ts: int) -> Optional[int]:
        best: Optional[int] = None
        for query in self.queries:
            edge = query.window.get_next_edge(ts)
            if edge is not None and (best is None or edge < best):
                best = edge
        return best

    def _floor_edge(self, ts: int) -> int:
        best: Optional[int] = None
        for query in self.queries:
            edge = query.window.get_floor_edge(ts)
            if edge is not None and (best is None or edge > best):
                best = edge
        return best if best is not None else ts

    def process_record(self, record: Record) -> List[WindowResult]:
        if self._max_ts is not None and record.ts < self._max_ts:
            raise StreamOrderViolation(
                f"late record ts={record.ts}: Pairs is an in-order technique"
            )
        results: List[WindowResult] = []
        if self._open_aggs is None:
            self._open_start = self._floor_edge(record.ts)
            self._open_aggs = [None] * len(self._functions)
            self._next_edge = self._compute_next_edge(self._open_start)
        cut = False
        while self._next_edge is not None and record.ts >= self._next_edge:
            cut = True
            self._close_fragment(self._next_edge)
            self._next_edge = self._compute_next_edge(self._next_edge)
        for index, function in enumerate(self._functions):
            lifted = function.lift(record.value)
            current = self._open_aggs[index]
            self._open_aggs[index] = (
                lifted if current is None else function.combine(current, lifted)
            )
        self._max_ts = record.ts
        if cut:
            results.extend(self._emit(record.ts))
            self._evict(record.ts)
        return results

    def process_batch(self, elements) -> List[WindowResult]:
        """Batch entry point: fold edge-free runs with one update per fn.

        Records that cut a pair fragment take the per-record path; the
        records between two fragment edges only fold into the open
        fragment's partials, so whole runs collapse into one
        ``fold_values`` call per distinct function.  Results are
        identical to :meth:`process`.
        """
        results: List[WindowResult] = []
        n = len(elements)
        i = 0
        while i < n:
            element = elements[i]
            if not isinstance(element, Record):
                results.extend(self.process(element))
                i += 1
                continue
            results.extend(self.process_record(element))
            i += 1
            # Bulk-fold the records that provably do not reach the next
            # fragment edge (and stay in order).
            edge = self._next_edge
            prev = self._max_ts
            j = i
            while j < n:
                e = elements[j]
                if (
                    not isinstance(e, Record)
                    or (prev is not None and e.ts < prev)
                    or (edge is not None and e.ts >= edge)
                ):
                    break
                prev = e.ts
                j += 1
            if j > i:
                values = [record.value for record in elements[i:j]]
                open_aggs = self._open_aggs
                for index, function in enumerate(self._functions):
                    open_aggs[index] = function.fold_values(open_aggs[index], values)
                self._max_ts = prev
                i = j
        return results

    def _close_fragment(self, edge: int) -> None:
        assert self._open_start is not None and self._open_aggs is not None
        self._frag_start.append(self._open_start)
        self._frag_end.append(edge)
        self._frag_aggs.append(self._open_aggs)
        self._open_start = edge
        self._open_aggs = [None] * len(self._functions)

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        results = self._emit(watermark.ts)
        self._evict(watermark.ts)
        return results

    # ------------------------------------------------------------------

    def _emit(self, wm: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        if self._prev_emit is None:
            lower = (self._frag_start[0] if self._frag_start else wm) - 1
        else:
            lower = self._prev_emit
        if wm <= lower:
            return results
        for q_index, query in enumerate(self.queries):
            fn_index = self._fn_of_query[q_index]
            for start, end in query.window.trigger_windows(lower, wm):
                partial = self._combine_range(fn_index, start, end)
                if partial is None and not self.emit_empty:
                    continue
                value = query.aggregation.lower_or_default(partial)
                results.append(WindowResult(query.query_id, start, end, value))
        self._prev_emit = wm
        return results

    def _combine_range(self, fn_index: int, start: int, end: int) -> Any:
        import bisect

        function = self._functions[fn_index]
        partial = None
        lo = bisect.bisect_left(self._frag_start, start)
        for i in range(lo, len(self._frag_start)):
            if self._frag_start[i] >= end:
                break
            if self._frag_end[i] <= end:
                piece = self._frag_aggs[i][fn_index]
                if piece is None:
                    continue
                partial = piece if partial is None else function.combine(partial, piece)
        # Include the open fragment when all its records precede the window
        # end (its records are bounded by the last processed timestamp).
        if (
            self._open_start is not None
            and self._open_aggs is not None
            and self._open_start >= start
            and (self._max_ts is None or self._max_ts < end)
            and self._open_aggs[fn_index] is not None
        ):
            piece = self._open_aggs[fn_index]
            partial = piece if partial is None else function.combine(partial, piece)
        return partial

    def _evict(self, wm: int) -> None:
        horizon = wm - max(
            (getattr(q.window, "length", 0) or 0) for q in self.queries
        ) if self.queries else wm
        keep = 0
        while keep < len(self._frag_end) and self._frag_end[keep] <= horizon:
            keep += 1
        if keep >= 256:
            del self._frag_start[:keep]
            del self._frag_end[:keep]
            del self._frag_aggs[:keep]

    # ------------------------------------------------------------------

    def state_objects(self) -> list:
        return [self._frag_start, self._frag_end, self._frag_aggs]

    def fragment_count(self) -> int:
        return len(self._frag_start) + (1 if self._open_aggs is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PairsOperator(fragments={self.fragment_count()}, queries={len(self.queries)})"
