"""Tuple Buffer baseline (Section 3.1, Table 1 row 1).

The straightforward technique: keep every record of the allowed
lateness in a ring buffer sorted by event-time and recompute each
window's aggregate lazily, from scratch, when the window ends.

Cost profile (reproduced by the benchmarks):

* throughput degrades with window overlap (every window recomputes) and
  with out-of-order input (sorted inserts copy memory);
* latency is high -- the full aggregation happens at window end;
* memory is ``|records| * size(record)``.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Sequence

from ..core.characteristics import Query
from ..core.operator_base import StreamOrderViolation, WindowOperator
from ..core.types import Record, Watermark, WindowResult
from .trigger import BufferTriggerEngine

__all__ = ["TupleBufferOperator"]


class TupleBufferOperator(WindowOperator):
    """Sorted ring-buffer of records with lazy per-window recomputation."""

    def __init__(
        self,
        *,
        stream_in_order: bool = False,
        allowed_lateness: int = 0,
        emit_empty: bool = False,
    ) -> None:
        super().__init__()
        self.stream_in_order = stream_in_order
        self.allowed_lateness = allowed_lateness
        #: Event-time-sorted buffer; two parallel arrays avoid per-record
        #: object overhead in the hot path (ring-buffer stand-in).
        self._ts: List[int] = []
        self._values: List[Any] = []
        self._max_ts: int | None = None
        self._watermark: int | None = None
        self._engine = BufferTriggerEngine(self, emit_empty=emit_empty)

    def _on_queries_changed(self) -> None:
        self._engine.set_queries(self.queries)

    # ------------------------------------------------------------------
    # SortedRecordsView protocol

    def timestamps(self) -> Sequence[int]:
        return self._ts

    def fold_range(self, lo: int, hi: int, query: Query) -> Any:
        function = query.aggregation
        partial = None
        for value in self._values[lo:hi]:
            lifted = function.lift(value)
            partial = lifted if partial is None else function.combine(partial, lifted)
        return partial

    # ------------------------------------------------------------------

    def process_record(self, record: Record) -> List[WindowResult]:
        results: List[WindowResult] = []
        in_order = self._max_ts is None or record.ts >= self._max_ts
        if in_order:
            self._ts.append(record.ts)
            self._values.append(record.value)
            self._max_ts = record.ts
            if self.stream_in_order:
                results.extend(self._engine.advance(record.ts))
                self._evict(record.ts)
        else:
            if self.stream_in_order:
                raise StreamOrderViolation(
                    f"late record ts={record.ts} on an in-order tuple buffer"
                )
            if (
                self._watermark is not None
                and record.ts < self._watermark - self.allowed_lateness
            ):
                self._drop_late(record)
                return results
            # The costly sorted insert (memory copy in the ring buffer).
            position = bisect.bisect_right(self._ts, record.ts)
            self._ts.insert(position, record.ts)
            self._values.insert(position, record.value)
            results.extend(self._engine.on_late_record(record.ts))
        return results

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        if self._watermark is not None and watermark.ts <= self._watermark:
            return []
        self._watermark = watermark.ts
        results = self._engine.advance(watermark.ts)
        self._evict(watermark.ts)
        return results

    def process_batch(self, elements) -> List[WindowResult]:
        """Batch entry point: bulk-append runs of in-order records.

        On watermark-driven streams an in-order record only appends to
        the buffer (no emission), so whole runs extend the parallel
        arrays in one step.  In-order-declared streams emit per record
        and keep the per-element path, as do late records and
        watermarks -- results are identical to :meth:`process`.
        """
        results: List[WindowResult] = []
        process = self.process
        n = len(elements)
        i = 0
        while i < n:
            element = elements[i]
            if not self.stream_in_order and isinstance(element, Record):
                prev = self._max_ts
                j = i
                while j < n:
                    e = elements[j]
                    if not isinstance(e, Record) or (prev is not None and e.ts < prev):
                        break
                    prev = e.ts
                    j += 1
                if j > i:
                    run = elements[i:j]
                    self._ts.extend(record.ts for record in run)
                    self._values.extend(record.value for record in run)
                    self._max_ts = prev
                    i = j
                    continue
            out = process(element)
            if out:
                results.extend(out)
            i += 1
        return results

    # ------------------------------------------------------------------

    def _retention(self) -> int:
        extent = 0
        for query in self.queries:
            for attribute in ("length", "gap", "count"):
                value = getattr(query.window, attribute, None)
                if value is not None:
                    extent = max(extent, value)
        return extent + self.allowed_lateness

    #: Front deletions are O(n); batch them so steady-state eviction
    #: amortizes to O(1) per record.
    EVICT_BATCH = 1024

    def _evict(self, wm: int) -> None:
        horizon = wm - self._retention()
        cut = bisect.bisect_right(self._ts, horizon)
        if cut >= self.EVICT_BATCH or (cut and cut == len(self._ts)):
            del self._ts[:cut]
            del self._values[:cut]
            self._engine.note_eviction(cut)
            self._engine.prune_emitted(horizon)

    # ------------------------------------------------------------------

    def state_objects(self) -> list:
        return [self._ts, self._values]

    def buffered_records(self) -> int:
        return len(self._ts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TupleBufferOperator(records={len(self._ts)}, queries={len(self.queries)})"
