"""Buckets baseline: one independent bucket per window (Section 3.3).

Li et al.'s Window-ID approach as adopted by Flink, Beam, and friends:
every window is an independent bucket keyed in a hash map; records are
assigned to *all* windows containing them (by event-time, regardless of
arrival order) and each bucket aggregates independently -- no sharing.

Cost profile (reproduced by the benchmarks):

* per-record cost grows linearly with the number of overlapping windows
  (the Figure 8/9 collapse for many concurrent windows);
* out-of-order records cost the same as in-order ones (bucket lookup +
  one incremental update) -- the Figure 12 robustness;
* latency is the lowest of all techniques: the final aggregate of every
  bucket is pre-computed when the window ends (hash-map lookup);
* memory duplicates state per overlapping window (Table 1 rows 3-4).

Two variants: :class:`AggregateBucketsOperator` stores one partial per
bucket (preferred); :class:`TupleBucketsOperator` keeps the individual
records per bucket, required for holistic aggregations or count-based
windows on out-of-order streams.

Session windows use Flink's merging-window behaviour: each record opens
a ``[ts, ts + gap)`` proto-bucket and overlapping buckets merge.
"""

from __future__ import annotations

import bisect
import heapq
from typing import Any, Dict, List, Optional, Tuple

from ..core.characteristics import Query
from ..core.measures import MeasureKind
from ..core.operator_base import StreamOrderViolation, WindowOperator
from ..core.types import Record, Watermark, WindowResult
from ..windows.multimeasure import LastNEveryWindow
from ..windows.session import SessionWindow

__all__ = ["AggregateBucketsOperator", "TupleBucketsOperator", "BucketsOperator"]

_TS_OF = lambda pair: pair[0]  # noqa: E731 - bisect key


class _Bucket:
    """One window instance: bounds plus aggregate state."""

    __slots__ = ("start", "end", "partial", "records", "emitted")

    def __init__(self, start: int, end: int, keep_records: bool) -> None:
        self.start = start
        self.end = end
        self.partial: Any = None
        self.records: Optional[List[Tuple[int, Any]]] = [] if keep_records else None
        self.emitted = False

    def add(self, ts: int, value: Any, function) -> None:
        """Fold one record into the bucket (incremental where possible)."""
        if self.records is not None:
            bisect.insort_right(self.records, (ts, value), key=_TS_OF)
            if not function.commutative:
                self.partial = None  # recomputed lazily from sorted records
                return
        lifted = function.lift(value)
        self.partial = lifted if self.partial is None else function.combine(self.partial, lifted)

    def merge_in(self, other: "_Bucket", function) -> None:
        """Absorb an overlapping session proto-bucket."""
        self.start = min(self.start, other.start)
        self.end = max(self.end, other.end)
        if self.records is not None and other.records is not None:
            merged = self.records + other.records
            merged.sort(key=_TS_OF)
            self.records = merged
            if not function.commutative:
                self.partial = None
                self.emitted = self.emitted or other.emitted
                return
        if other.partial is not None:
            self.partial = (
                other.partial
                if self.partial is None
                else function.combine(self.partial, other.partial)
            )
        self.emitted = self.emitted or other.emitted

    def aggregate(self, function) -> Any:
        """The bucket partial, recomputed from records when invalidated."""
        if self.partial is None and self.records:
            partial = None
            for _, value in self.records:
                lifted = function.lift(value)
                partial = lifted if partial is None else function.combine(partial, lifted)
            self.partial = partial
        return self.partial


class BucketsOperator(WindowOperator):
    """Bucket-per-window aggregation (Flink-style WID)."""

    #: Subclasses choose: keep records per bucket or partials only.
    keep_records = False

    def __init__(
        self,
        *,
        stream_in_order: bool = False,
        allowed_lateness: int = 0,
        emit_empty: bool = False,
    ) -> None:
        super().__init__()
        self.stream_in_order = stream_in_order
        self.allowed_lateness = allowed_lateness
        self.emit_empty = emit_empty
        #: (query_id, start, end) -> bucket (the Flink hash map).
        self._buckets: Dict[Tuple[int, int, int], _Bucket] = {}
        #: Pending emissions: (end, query_id, start) min-heaps, separate
        #: per measure domain (time ends vs count ends are incomparable).
        self._pending: List[Tuple[int, int, int]] = []
        self._pending_count: List[Tuple[int, int, int]] = []
        #: Session buckets per query, sorted by start (merging assigner).
        self._sessions: Dict[int, List[_Bucket]] = {}
        #: Sorted records per count/multi-measure query.
        self._count_records: Dict[int, List[Tuple[int, Any]]] = {}
        self._count_hwm: Dict[int, int] = {}
        self._edge_hwm: Dict[int, Optional[int]] = {}
        self._query_by_id: Dict[int, Query] = {}
        self._max_ts: int | None = None
        self._watermark: int | None = None
        self._arrived = 0
        self._advances = 0

    def _on_queries_changed(self) -> None:
        self._query_by_id = {query.query_id: query for query in self.queries}
        for query in self.queries:
            window = query.window
            if isinstance(window, SessionWindow):
                self._sessions.setdefault(query.query_id, [])
            elif isinstance(window, LastNEveryWindow) or (
                window.measure_kind is MeasureKind.COUNT
                and (self.keep_records or not self.stream_in_order)
            ):
                # Count positions are event-time ranks.  Partials-only
                # buckets can use arrival order as the rank on in-order
                # streams, but a late record shifts every later rank, so
                # out-of-order count queries must buffer records too.
                self._count_records.setdefault(query.query_id, [])
            if query.aggregation.kind.value == "holistic" and not self.keep_records:
                raise ValueError(
                    "aggregate buckets cannot serve holistic aggregations; "
                    "use TupleBucketsOperator"
                )

    # ------------------------------------------------------------------
    # record processing

    def process_record(self, record: Record) -> List[WindowResult]:
        results: List[WindowResult] = []
        in_order = self._max_ts is None or record.ts >= self._max_ts
        if not in_order and self.stream_in_order:
            raise StreamOrderViolation(
                f"late record ts={record.ts} on an in-order buckets operator"
            )
        if (
            not in_order
            and self._watermark is not None
            and record.ts < self._watermark - self.allowed_lateness
        ):
            self._drop_late(record)
            return results
        position = self._arrived
        self._arrived += 1
        for query in self.queries:
            window = query.window
            if isinstance(window, SessionWindow):
                bucket = self._add_to_session(query, record)
                if bucket.emitted:
                    results.append(self._result(query, bucket, is_update=True))
            elif query.query_id in self._count_records:
                records = self._count_records[query.query_id]
                bisect.insort_right(records, (record.ts, record.value), key=_TS_OF)
            elif window.measure_kind is MeasureKind.COUNT:
                # Partials-only count buckets: in-order streams only
                # (positions match arrival order there).
                for start, end in window.assign_windows(position):
                    self._add_to_bucket(query, start, end, record, results)
            else:
                # The hot loop: one update per containing window.
                for start, end in window.assign_windows(record.ts):
                    self._add_to_bucket(query, start, end, record, results)
        if in_order:
            self._max_ts = record.ts
            if self.stream_in_order:
                results.extend(self._advance(record.ts))
        return results

    def _add_to_bucket(
        self,
        query: Query,
        start: int,
        end: int,
        record: Record,
        results: List[WindowResult],
    ) -> None:
        key = (query.query_id, start, end)
        bucket = self._buckets.get(key)
        if bucket is None:
            bucket = _Bucket(start, end, self.keep_records)
            self._buckets[key] = bucket
            if query.window.measure_kind is MeasureKind.COUNT:
                heapq.heappush(self._pending_count, (end, query.query_id, start))
            else:
                heapq.heappush(self._pending, (end, query.query_id, start))
        bucket.add(record.ts, record.value, query.aggregation)
        if bucket.emitted:
            results.append(self._result(query, bucket, is_update=True))

    def _add_to_session(self, query: Query, record: Record) -> _Bucket:
        window: SessionWindow = query.window
        buckets = self._sessions[query.query_id]
        proto = _Bucket(record.ts, record.ts + window.gap, self.keep_records)
        proto.add(record.ts, record.value, query.aggregation)
        position = bisect.bisect_right(buckets, proto.start, key=lambda b: b.start)
        buckets.insert(position, proto)
        # Merge with the left neighbour, then absorb right neighbours.
        index = position
        if index > 0 and buckets[index - 1].end > proto.start:
            buckets[index - 1].merge_in(proto, query.aggregation)
            buckets.pop(index)
            index -= 1
        target = buckets[index]
        while index + 1 < len(buckets) and buckets[index + 1].start < target.end:
            target.merge_in(buckets[index + 1], query.aggregation)
            buckets.pop(index + 1)
        return target

    # ------------------------------------------------------------------
    # emission

    def _advance(self, wm: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        # CF buckets: pop everything due from the heaps (hash-map lookups).
        while self._pending and self._pending[0][0] <= wm:
            end, query_id, start = heapq.heappop(self._pending)
            bucket = self._buckets.get((query_id, start, end))
            query = self._query_by_id.get(query_id)
            if bucket is None or query is None or bucket.emitted:
                continue
            results.append(self._result(query, bucket, is_update=False))
            bucket.emitted = True
        while self._pending_count and self._pending_count[0][0] <= self._arrived:
            end, query_id, start = heapq.heappop(self._pending_count)
            bucket = self._buckets.get((query_id, start, end))
            query = self._query_by_id.get(query_id)
            if bucket is None or query is None or bucket.emitted:
                continue
            results.append(self._result(query, bucket, is_update=False))
            bucket.emitted = True
        # Session buckets.
        for query_id, buckets in self._sessions.items():
            query = self._query_by_id.get(query_id)
            if query is None:
                continue
            for bucket in buckets:
                if not bucket.emitted and bucket.end <= wm:
                    results.append(self._result(query, bucket, is_update=False))
                    bucket.emitted = True
        results.extend(self._emit_count_windows(wm))
        # Eviction scans every bucket; amortize it across advances.
        self._advances += 1
        if self._advances % 512 == 0:
            self._evict(wm)
        return results

    def _emit_count_windows(self, wm: int) -> List[WindowResult]:
        """Emit record-kept count / multi-measure windows."""
        results: List[WindowResult] = []
        for query_id, records in self._count_records.items():
            query = self._query_by_id.get(query_id)
            if query is None:
                continue
            window = query.window
            timestamps = [ts for ts, _ in records]
            if isinstance(window, LastNEveryWindow):
                previous = self._edge_hwm.get(query_id)
                lower = (
                    previous
                    if previous is not None
                    else (timestamps[0] if timestamps else wm) - 1
                )
                for edge in window.time_edges_between(lower, wm):
                    cumulative = bisect.bisect_left(timestamps, edge)
                    start = max(0, cumulative - window.count)
                    value = self._fold(query, records[start:cumulative])
                    if value is not None or self.emit_empty:
                        results.append(WindowResult(query_id, start, cumulative, value))
                self._edge_hwm[query_id] = wm
            else:
                completed = bisect.bisect_right(timestamps, wm)
                previous = self._count_hwm.get(query_id, 0)
                if completed <= previous:
                    continue
                for start, end in window.trigger_windows(previous, completed):
                    value = self._fold(query, records[start:end])
                    if value is not None or self.emit_empty:
                        results.append(WindowResult(query_id, start, end, value))
                self._count_hwm[query_id] = completed
        return results

    def _fold(self, query: Query, pairs: List[Tuple[int, Any]]) -> Any:
        function = query.aggregation
        partial = None
        for _, value in pairs:
            lifted = function.lift(value)
            partial = lifted if partial is None else function.combine(partial, lifted)
        if partial is None:
            return function.empty_result() if self.emit_empty else None
        return function.lower(partial)

    def _result(self, query: Query, bucket: _Bucket, is_update: bool) -> WindowResult:
        value = query.aggregation.lower_or_default(bucket.aggregate(query.aggregation))
        return WindowResult(query.query_id, bucket.start, bucket.end, value, is_update)

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        if self._watermark is not None and watermark.ts <= self._watermark:
            return []
        results = self._advance(watermark.ts)
        self._watermark = watermark.ts
        return results

    def process_batch(self, elements) -> List[WindowResult]:
        """Batch entry point (apples-to-apples with the slicing batch API).

        Buckets must touch every containing window per record, so there
        is no run-level work to amortize; the batch path only hoists the
        element-type dispatch out of :meth:`process`.  Results are
        identical to the per-element path.
        """
        results: List[WindowResult] = []
        process_record = self.process_record
        process_watermark = self.process_watermark
        process = self.process
        for element in elements:
            if isinstance(element, Record):
                out = process_record(element)
            elif isinstance(element, Watermark):
                out = process_watermark(element)
            else:
                out = process(element)
            if out:
                results.extend(out)
        return results

    # ------------------------------------------------------------------
    # housekeeping

    def _evict(self, wm: int) -> None:
        horizon = wm - self.allowed_lateness
        if len(self._buckets) > 0:
            stale = [key for key, bucket in self._buckets.items() if bucket.end <= horizon]
            for key in stale:
                del self._buckets[key]
        for query_id, buckets in self._sessions.items():
            self._sessions[query_id] = [
                bucket for bucket in buckets if bucket.end > horizon or not bucket.emitted
            ]

    def state_objects(self) -> list:
        return [self._buckets, self._sessions, self._count_records]

    def bucket_count(self) -> int:
        """Number of materialized buckets (the Table 1 |win| factor)."""
        return len(self._buckets) + sum(len(b) for b in self._sessions.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"{type(self).__name__}(buckets={self.bucket_count()}, "
            f"queries={len(self.queries)})"
        )


class AggregateBucketsOperator(BucketsOperator):
    """Buckets storing one partial aggregate each (Table 1 row 3)."""

    keep_records = False


class TupleBucketsOperator(BucketsOperator):
    """Buckets storing the individual records (Table 1 row 4)."""

    keep_records = True
