"""Cutty baseline (Carbone et al., CIKM 2016; Section 3.4).

Cutty generalizes stream slicing to user-defined (deterministic)
windows: window specifications emit their edges on the fly and the
slicer cuts exactly there, keeping the number of slices minimal.  Final
aggregates are served from an aggregate tree over the slice partials
(eager combination), so Cutty pairs slicing throughput with low output
latency.

Limitations (faithful to the original): in-order streams only -- Cutty
"does not support out-of-order processing" (Section 7) -- and partial
aggregates only.  Context-free and forward-context-free (punctuation)
windows are supported; FCA windows and sessions are not.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..aggregations.base import AggregationClass
from ..core.characteristics import Query
from ..core.flatfat import FlatFAT
from ..core.operator_base import StreamOrderViolation, WindowOperator
from ..core.types import Punctuation, Record, Watermark, WindowResult
from ..windows.base import ContextClass, WindowEdges
from ..windows.punctuation import PunctuationWindow

__all__ = ["CuttyOperator"]


class CuttyOperator(WindowOperator):
    """Cutty: in-order slicing for user-defined windows + eager tree."""

    def __init__(self, *, emit_empty: bool = False) -> None:
        super().__init__()
        self.emit_empty = emit_empty
        self._slice_start: List[int] = []
        self._slice_end: List[int] = []
        #: Distinct aggregate functions shared across queries, and one
        #: FlatFAT per function over the closed slice partials (the open
        #: slice partial is kept separately).
        self._functions: List = []
        self._fn_of_query: List[int] = []
        self._index_by_signature: dict = {}
        self._trees: List[FlatFAT] = []
        self._open_start: Optional[int] = None
        self._open_aggs: List[Any] = []
        self._next_edge: Optional[int] = None
        self._max_ts: Optional[int] = None
        self._prev_emit: Optional[int] = None

    def add_query(self, window, aggregation) -> Query:
        if window.context is ContextClass.FORWARD_CONTEXT_AWARE:
            raise ValueError("Cutty supports deterministic (CF/FCF) windows only")
        if aggregation.kind is AggregationClass.HOLISTIC:
            raise ValueError("Cutty stores partial aggregates only (no holistic)")
        query = super().add_query(window, aggregation)
        return query

    def _on_queries_changed(self) -> None:
        self._fn_of_query = []
        for query in self.queries:
            key = query.aggregation.signature()
            if key not in self._index_by_signature:
                self._index_by_signature[key] = len(self._functions)
                self._functions.append(query.aggregation)
                leaves = [None] * len(self._slice_start)
                self._trees.append(FlatFAT(query.aggregation.combine, leaves))
                self._open_aggs.append(None)
            self._fn_of_query.append(self._index_by_signature[key])

    # ------------------------------------------------------------------

    def _compute_next_edge(self, ts: int) -> Optional[int]:
        best: Optional[int] = None
        for query in self.queries:
            edge = query.window.get_next_edge(ts)
            if edge is not None and (best is None or edge < best):
                best = edge
        return best

    def _floor_edge(self, ts: int) -> int:
        best: Optional[int] = None
        for query in self.queries:
            edge = query.window.get_floor_edge(ts)
            if edge is not None and (best is None or edge > best):
                best = edge
        return best if best is not None else ts

    def process_record(self, record: Record) -> List[WindowResult]:
        if self._max_ts is not None and record.ts < self._max_ts:
            raise StreamOrderViolation(
                f"late record ts={record.ts}: Cutty is an in-order technique"
            )
        results: List[WindowResult] = []
        if self._open_start is None:
            self._open_start = self._floor_edge(record.ts)
            self._next_edge = self._compute_next_edge(self._open_start)
        cut = False
        while self._next_edge is not None and record.ts >= self._next_edge:
            cut = True
            self._close_slice(self._next_edge)
            self._next_edge = self._compute_next_edge(self._next_edge)
        for index, function in enumerate(self._functions):
            lifted = function.lift(record.value)
            current = self._open_aggs[index]
            self._open_aggs[index] = (
                lifted if current is None else function.combine(current, lifted)
            )
        self._max_ts = record.ts
        if cut:
            results.extend(self._emit(record.ts))
        return results

    def process_batch(self, elements) -> List[WindowResult]:
        """Batch entry point: fold edge-free runs with one update per fn.

        Mirrors the Pairs batch path: records between two slice edges
        only fold into the open slice's partials, so runs collapse into
        one ``fold_values`` call per distinct function.  Edge-crossing
        records, punctuations, and watermarks take the per-element path;
        results are identical to :meth:`process`.
        """
        results: List[WindowResult] = []
        n = len(elements)
        i = 0
        while i < n:
            element = elements[i]
            if not isinstance(element, Record):
                results.extend(self.process(element))
                i += 1
                continue
            results.extend(self.process_record(element))
            i += 1
            edge = self._next_edge
            prev = self._max_ts
            j = i
            while j < n:
                e = elements[j]
                if (
                    not isinstance(e, Record)
                    or (prev is not None and e.ts < prev)
                    or (edge is not None and e.ts >= edge)
                ):
                    break
                prev = e.ts
                j += 1
            if j > i:
                values = [record.value for record in elements[i:j]]
                open_aggs = self._open_aggs
                for index, function in enumerate(self._functions):
                    open_aggs[index] = function.fold_values(open_aggs[index], values)
                self._max_ts = prev
                i = j
        return results

    def _close_slice(self, edge: int) -> None:
        assert self._open_start is not None
        self._slice_start.append(self._open_start)
        self._slice_end.append(edge)
        for index, tree in enumerate(self._trees):
            tree.append(self._open_aggs[index])
            self._open_aggs[index] = None
        self._open_start = edge

    def process_punctuation(self, punctuation: Punctuation) -> List[WindowResult]:
        if self._max_ts is not None and punctuation.ts <= self._max_ts:
            raise StreamOrderViolation(
                "late punctuation (must strictly lead the records at its "
                "timestamp): Cutty is an in-order technique"
            )
        for query in self.queries:
            window = query.window
            if isinstance(window, PunctuationWindow):
                window.on_punctuation(WindowEdges(), punctuation)
        self._next_edge = self._compute_next_edge(
            self._max_ts if self._max_ts is not None else punctuation.ts - 1
        )
        if self._max_ts is not None:
            return self._emit(self._max_ts)
        return []

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        return self._emit(watermark.ts)

    # ------------------------------------------------------------------

    def _emit(self, wm: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        if self._prev_emit is None:
            lower = (self._slice_start[0] if self._slice_start else wm) - 1
        else:
            lower = self._prev_emit
        if wm <= lower:
            return results
        for q_index, query in enumerate(self.queries):
            fn_index = self._fn_of_query[q_index]
            for start, end in query.window.trigger_windows(lower, wm):
                partial = self._query_range(fn_index, start, end)
                if partial is None and not self.emit_empty:
                    continue
                value = query.aggregation.lower_or_default(partial)
                results.append(WindowResult(query.query_id, start, end, value))
        self._prev_emit = wm
        return results

    def _query_range(self, fn_index: int, start: int, end: int) -> Any:
        import bisect

        lo = bisect.bisect_left(self._slice_start, start)
        hi = lo
        while hi < len(self._slice_end) and self._slice_end[hi] <= end:
            hi += 1
        partial = self._trees[fn_index].query(lo, hi) if hi > lo else None
        # Include the open slice when it provably belongs to the window.
        if (
            self._open_start is not None
            and self._open_start >= start
            and (self._max_ts is None or self._max_ts < end)
            and self._open_aggs[fn_index] is not None
        ):
            piece = self._open_aggs[fn_index]
            function = self._functions[fn_index]
            partial = piece if partial is None else function.combine(partial, piece)
        return partial

    # ------------------------------------------------------------------

    def state_objects(self) -> list:
        return [self._slice_start, self._slice_end, self._trees]

    def slice_count(self) -> int:
        return len(self._slice_start) + (1 if self._open_start is not None else 0)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CuttyOperator(slices={self.slice_count()}, queries={len(self.queries)})"
