"""The Section 3 baseline techniques, all behind the common
:class:`~repro.core.operator_base.WindowOperator` interface.

========================  =====================================  ==========
Technique                 Class                                  Table 1 row
========================  =====================================  ==========
Tuple Buffer              :class:`TupleBufferOperator`           1
Aggregate Tree (FlatFAT)  :class:`AggregateTreeOperator`         2
Aggregate Buckets (WID)   :class:`AggregateBucketsOperator`      3
Tuple Buckets (WID)       :class:`TupleBucketsOperator`          4
Pairs slicing             :class:`PairsOperator`                 5 (lazy)
Cutty slicing             :class:`CuttyOperator`                 6 (eager)
General slicing           :class:`repro.core.GeneralSlicingOperator`  5-8
========================  =====================================  ==========
"""

from .aggregate_tree import AggregateTreeOperator
from .buckets import AggregateBucketsOperator, BucketsOperator, TupleBucketsOperator
from .cutty import CuttyOperator
from .pairs import PairsOperator
from .tuple_buffer import TupleBufferOperator

__all__ = [
    "TupleBufferOperator",
    "AggregateTreeOperator",
    "BucketsOperator",
    "AggregateBucketsOperator",
    "TupleBucketsOperator",
    "PairsOperator",
    "CuttyOperator",
]
