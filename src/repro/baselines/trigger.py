"""Shared window-trigger engine for record-buffer baselines.

The Tuple Buffer (Section 3.1) and the Aggregate Tree (Section 3.2)
both keep the *individual records* of the allowed lateness in
event-time order and differ only in how a range of records is folded
into an aggregate.  This module factors the common part out: given a
:class:`SortedRecordsView`, the :class:`BufferTriggerEngine` enumerates
ended windows on watermark progress, computes their aggregates through
the view, and emits update results for late arrivals -- the same
output semantics as the slicing operator.
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, List, Optional, Protocol, Sequence, Set, Tuple

from ..core.characteristics import Query
from ..core.measures import MeasureKind
from ..core.types import WindowResult
from ..windows.base import ContextClass
from ..windows.multimeasure import LastNEveryWindow
from ..windows.session import SessionWindow

__all__ = ["SortedRecordsView", "BufferTriggerEngine"]


class SortedRecordsView(Protocol):
    """A technique's view of its event-time-ordered record state."""

    def timestamps(self) -> Sequence[int]:
        """Event-times of all retained records, ascending."""
        ...

    def fold_range(self, lo: int, hi: int, query: Query) -> Any:
        """Partial aggregate of records ``[lo, hi)`` for ``query``."""
        ...


class BufferTriggerEngine:
    """Watermark-driven window emission over a sorted record buffer."""

    def __init__(self, view: SortedRecordsView, emit_empty: bool = False) -> None:
        self._view = view
        self._emit_empty = emit_empty
        self._queries: List[Query] = []
        self._prev_wm: Optional[int] = None
        self._emitted: Dict[int, Set[Tuple[int, int]]] = {}
        self._count_hwm: Dict[int, int] = {}
        self._emitted_edges: Dict[int, Dict[int, int]] = {}
        #: Count offset of evicted records (count positions are global).
        self.evicted_count = 0

    # ------------------------------------------------------------------

    def set_queries(self, queries: Sequence[Query]) -> None:
        """Register the query set whose windows this engine triggers."""
        self._queries = list(queries)
        for query in queries:
            self._emitted.setdefault(query.query_id, set())
            if isinstance(query.window, LastNEveryWindow):
                self._emitted_edges.setdefault(query.query_id, {})

    @property
    def watermark(self) -> Optional[int]:
        return self._prev_wm

    # ------------------------------------------------------------------
    # emission

    def advance(self, wm: int) -> List[WindowResult]:
        """Emit every window that ended at or before watermark ``wm``."""
        prev = self._prev_wm
        if prev is not None and wm <= prev:
            return []
        timestamps = self._view.timestamps()
        if prev is not None:
            lower = prev
        else:
            lower = (timestamps[0] if timestamps else wm) - 1
            lower = min(lower, wm - 1)
        results: List[WindowResult] = []
        for query in self._queries:
            window = query.window
            if isinstance(window, SessionWindow):
                results.extend(self._trigger_sessions(query, wm))
            elif isinstance(window, LastNEveryWindow):
                results.extend(self._trigger_multimeasure(query, lower, wm))
            elif window.measure_kind is MeasureKind.COUNT:
                results.extend(self._trigger_count(query, wm))
            else:
                results.extend(self._trigger_time(query, lower, wm))
        self._prev_wm = wm
        return results

    def _emit_range(
        self, query: Query, start: int, end: int, lo: int, hi: int, is_update: bool
    ) -> Optional[WindowResult]:
        if hi <= lo and not self._emit_empty:
            return None
        partial = self._view.fold_range(lo, hi, query)
        if partial is None and not self._emit_empty:
            return None
        value = query.aggregation.lower_or_default(partial)
        return WindowResult(query.query_id, start, end, value, is_update)

    def _trigger_time(self, query: Query, prev: int, wm: int) -> List[WindowResult]:
        timestamps = self._view.timestamps()
        results: List[WindowResult] = []
        emitted = self._emitted[query.query_id]
        for start, end in query.window.trigger_windows(prev, wm):
            if (start, end) in emitted:
                continue
            lo = bisect.bisect_left(timestamps, start)
            hi = bisect.bisect_left(timestamps, end)
            result = self._emit_range(query, start, end, lo, hi, is_update=False)
            if result is not None:
                emitted.add((start, end))
                results.append(result)
        return results

    def _sessions(self, gap: int) -> List[Tuple[int, int, int, int]]:
        """(first_ts, last_ts, lo, hi) activity groups over the buffer."""
        timestamps = self._view.timestamps()
        sessions: List[Tuple[int, int, int, int]] = []
        lo = 0
        for index in range(1, len(timestamps) + 1):
            at_end = index == len(timestamps)
            if at_end or timestamps[index] - timestamps[index - 1] >= gap:
                sessions.append((timestamps[lo], timestamps[index - 1], lo, index))
                lo = index
        return sessions

    def _trigger_sessions(self, query: Query, wm: int) -> List[WindowResult]:
        window: SessionWindow = query.window
        results: List[WindowResult] = []
        emitted = self._emitted[query.query_id]
        for first_ts, last_ts, lo, hi in self._sessions(window.gap):
            end = last_ts + window.gap
            if end > wm or (first_ts, end) in emitted:
                continue
            result = self._emit_range(query, first_ts, end, lo, hi, is_update=False)
            if result is not None:
                emitted.add((first_ts, end))
                results.append(result)
        return results

    def _completed_count(self, wm: int) -> int:
        timestamps = self._view.timestamps()
        return self.evicted_count + bisect.bisect_right(timestamps, wm)

    def _trigger_count(self, query: Query, wm: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        completed = self._completed_count(wm)
        previous = self._count_hwm.get(query.query_id, 0)
        if completed <= previous:
            return results
        for start, end in query.window.trigger_windows(previous, completed):
            result = self._emit_count_window(query, start, end, is_update=False)
            if result is not None:
                results.append(result)
        self._count_hwm[query.query_id] = completed
        return results

    def _emit_count_window(
        self, query: Query, start: int, end: int, is_update: bool
    ) -> Optional[WindowResult]:
        lo = start - self.evicted_count
        hi = end - self.evicted_count
        size = len(self._view.timestamps())
        lo = max(lo, 0)
        hi = min(hi, size)
        if hi <= lo:
            return None
        result = self._emit_range(query, start, end, lo, hi, is_update)
        return result

    def _trigger_multimeasure(self, query: Query, prev: int, wm: int) -> List[WindowResult]:
        window: LastNEveryWindow = query.window
        timestamps = self._view.timestamps()
        results: List[WindowResult] = []
        emitted = self._emitted_edges[query.query_id]
        for edge in window.time_edges_between(prev, wm):
            if edge in emitted:
                continue
            cumulative = self.evicted_count + bisect.bisect_left(timestamps, edge)
            emitted[edge] = cumulative
            start = max(0, cumulative - window.count)
            result = self._emit_count_window(query, start, cumulative, is_update=False)
            if result is not None:
                results.append(result)
        return results

    # ------------------------------------------------------------------
    # late updates

    def on_late_record(self, ts: int) -> List[WindowResult]:
        """Re-emit already-triggered windows affected by a late record."""
        wm = self._prev_wm
        if wm is None:
            return []
        timestamps = self._view.timestamps()
        position = self.evicted_count + bisect.bisect_right(timestamps, ts) - 1
        results: List[WindowResult] = []
        for query in self._queries:
            window = query.window
            if isinstance(window, SessionWindow):
                results.extend(self._update_sessions(query, ts, wm))
            elif isinstance(window, LastNEveryWindow):
                results.extend(self._update_multimeasure(query, ts))
            elif window.measure_kind is MeasureKind.COUNT:
                results.extend(self._update_count(query, position))
            elif window.context is ContextClass.CONTEXT_FREE:
                results.extend(self._update_time_cf(query, ts, wm))
            else:
                results.extend(self._update_time_emitted(query, ts, wm))
        return results

    def _update_time_cf(self, query: Query, ts: int, wm: int) -> List[WindowResult]:
        timestamps = self._view.timestamps()
        results: List[WindowResult] = []
        emitted = self._emitted[query.query_id]
        for start, end in query.window.assign_windows(ts):
            if end > wm:
                continue
            lo = bisect.bisect_left(timestamps, start)
            hi = bisect.bisect_left(timestamps, end)
            result = self._emit_range(query, start, end, lo, hi, is_update=True)
            if result is not None:
                emitted.add((start, end))
                results.append(result)
        return results

    def _update_time_emitted(self, query: Query, ts: int, wm: int) -> List[WindowResult]:
        timestamps = self._view.timestamps()
        results: List[WindowResult] = []
        emitted = self._emitted[query.query_id]
        for start, end in list(emitted):
            if not start <= ts < end:
                continue
            lo = bisect.bisect_left(timestamps, start)
            hi = bisect.bisect_left(timestamps, end)
            result = self._emit_range(query, start, end, lo, hi, is_update=True)
            if result is not None:
                results.append(result)
        return results

    def _update_sessions(self, query: Query, ts: int, wm: int) -> List[WindowResult]:
        window: SessionWindow = query.window
        results: List[WindowResult] = []
        emitted = self._emitted[query.query_id]
        for first_ts, last_ts, lo, hi in self._sessions(window.gap):
            end = last_ts + window.gap
            if not (first_ts - window.gap <= ts < end):
                continue
            if end > wm:
                for pair in [p for p in emitted if p[0] <= ts < p[1]]:
                    emitted.discard(pair)
                continue
            overlapped = [p for p in emitted if not (p[1] <= first_ts or p[0] >= end)]
            for pair in overlapped:
                emitted.discard(pair)
            result = self._emit_range(
                query, first_ts, end, lo, hi, is_update=bool(overlapped)
            )
            if result is not None:
                emitted.add((first_ts, end))
                results.append(result)
        return results

    def _update_count(self, query: Query, position: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        hwm = self._count_hwm.get(query.query_id, 0)
        if position >= hwm:
            return results
        for start, end in query.window.trigger_windows(position, hwm):
            if end <= position:
                continue
            result = self._emit_count_window(query, start, end, is_update=True)
            if result is not None:
                results.append(result)
        return results

    def _update_multimeasure(self, query: Query, ts: int) -> List[WindowResult]:
        window: LastNEveryWindow = query.window
        timestamps = self._view.timestamps()
        results: List[WindowResult] = []
        emitted = self._emitted_edges[query.query_id]
        for edge, old_count in sorted(emitted.items()):
            if edge <= ts:
                continue
            cumulative = self.evicted_count + bisect.bisect_left(timestamps, edge)
            if cumulative == old_count:
                continue
            emitted[edge] = cumulative
            start = max(0, cumulative - window.count)
            result = self._emit_count_window(query, start, cumulative, is_update=True)
            if result is not None:
                results.append(result)
        return results

    # ------------------------------------------------------------------

    def note_eviction(self, count: int) -> None:
        """Record that ``count`` front records left the buffer."""
        self.evicted_count += count

    def prune_emitted(self, horizon: int) -> None:
        """Drop emission bookkeeping for windows before the horizon."""
        for query_id, pairs in self._emitted.items():
            self._emitted[query_id] = {p for p in pairs if p[1] > horizon}
        for query_id, edges in self._emitted_edges.items():
            self._emitted_edges[query_id] = {
                edge: count for edge, count in edges.items() if edge > horizon
            }
