"""Regression detection between two tracked benchmark runs.

``python -m repro.bench --compare PREV.json`` runs the registry, then
diffs the fresh numbers against ``PREV.json``.  A scenario regresses
when its throughput drops by more than the noise threshold (relative,
default 15 %); anything inside the band is ``ok``, a symmetric rise is
reported as ``improved`` but never fails the run.  Scenarios present on
only one side are ``new`` / ``missing`` -- informational, not failures,
so adding a scenario doesn't break an existing baseline.
"""

from __future__ import annotations

from typing import Dict, List, Optional

__all__ = ["ComparisonRow", "compare_results", "format_report", "DEFAULT_THRESHOLD"]

#: Relative throughput drop tolerated before a scenario counts as a
#: regression.  Generous on purpose: single-machine medians of a few
#: repeats jitter, and a false alarm in CI costs more than a slightly
#: late catch.
DEFAULT_THRESHOLD = 0.15


class ComparisonRow:
    """One scenario's verdict: previous vs current throughput."""

    __slots__ = ("name", "status", "previous", "current", "delta")

    def __init__(
        self,
        name: str,
        status: str,
        previous: Optional[float],
        current: Optional[float],
        delta: Optional[float],
    ) -> None:
        self.name = name
        self.status = status  # ok | regression | improved | new | missing
        self.previous = previous
        self.current = current
        self.delta = delta  # relative change, current/previous - 1

    def as_dict(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "status": self.status,
            "previous": self.previous,
            "current": self.current,
            "delta": self.delta,
        }


def _throughputs(document: Dict[str, object]) -> Dict[str, float]:
    # Prefer the best-of-repeats rate: for short runs the minimum time
    # is a far lower-variance estimator than the median, which keeps
    # same-machine self-comparisons inside the noise threshold.
    scenarios = document.get("scenarios")
    if not isinstance(scenarios, dict):
        raise ValueError("result document has no 'scenarios' section")
    return {
        name: float(entry.get("best_records_per_second", entry["records_per_second"]))
        for name, entry in scenarios.items()
        if isinstance(entry, dict) and "records_per_second" in entry
    }


def compare_results(
    previous: Dict[str, object],
    current: Dict[str, object],
    *,
    threshold: float = DEFAULT_THRESHOLD,
) -> List[ComparisonRow]:
    """Diff two result documents; rows sorted worst-regression first."""
    if threshold <= 0:
        raise ValueError(f"threshold must be positive, got {threshold}")
    prev_rates = _throughputs(previous)
    curr_rates = _throughputs(current)
    rows: List[ComparisonRow] = []
    for name in sorted(set(prev_rates) | set(curr_rates)):
        before = prev_rates.get(name)
        after = curr_rates.get(name)
        if before is None:
            rows.append(ComparisonRow(name, "new", None, after, None))
            continue
        if after is None:
            rows.append(ComparisonRow(name, "missing", before, None, None))
            continue
        delta = (after / before - 1.0) if before > 0 else 0.0
        if delta < -threshold:
            status = "regression"
        elif delta > threshold:
            status = "improved"
        else:
            status = "ok"
        rows.append(ComparisonRow(name, status, before, after, delta))
    rows.sort(key=lambda row: (row.delta is None, row.delta))
    return rows


def _comparability_warnings(
    previous: Dict[str, object], current: Dict[str, object]
) -> List[str]:
    """Warn when the two runs are not apples-to-apples."""
    warnings: List[str] = []
    prev_fp = previous.get("fingerprint") or {}
    curr_fp = current.get("fingerprint") or {}
    for field, label in (("cpu", "CPU"), ("python", "Python"), ("hostname", "host")):
        if prev_fp.get(field) != curr_fp.get(field):
            warnings.append(
                f"{label} differs: {prev_fp.get(field)!r} vs {curr_fp.get(field)!r}"
            )
    prev_cfg = previous.get("config") or {}
    curr_cfg = current.get("config") or {}
    if prev_cfg.get("smoke") != curr_cfg.get("smoke"):
        warnings.append(
            f"smoke mode differs: {prev_cfg.get('smoke')!r} vs {curr_cfg.get('smoke')!r}"
        )
    return warnings


def format_report(
    rows: List[ComparisonRow],
    *,
    threshold: float,
    previous: Optional[Dict[str, object]] = None,
    current: Optional[Dict[str, object]] = None,
) -> str:
    """Human-readable comparison table plus verdict line."""
    lines: List[str] = []
    if previous is not None and current is not None:
        for warning in _comparability_warnings(previous, current):
            lines.append(f"WARNING: {warning}")
    header = f"{'scenario':<28} {'previous':>14} {'current':>14} {'delta':>8}  status"
    lines.append(header)
    lines.append("-" * len(header))
    for row in rows:
        prev = f"{row.previous:,.0f}" if row.previous is not None else "-"
        curr = f"{row.current:,.0f}" if row.current is not None else "-"
        delta = f"{row.delta:+.1%}" if row.delta is not None else "-"
        lines.append(f"{row.name:<28} {prev:>14} {curr:>14} {delta:>8}  {row.status}")
    regressions = [row for row in rows if row.status == "regression"]
    if regressions:
        lines.append(
            f"FAIL: {len(regressions)} scenario(s) regressed beyond "
            f"{threshold:.0%}: " + ", ".join(row.name for row in regressions)
        )
    else:
        lines.append(f"OK: no regressions beyond {threshold:.0%}")
    return "\n".join(lines)
