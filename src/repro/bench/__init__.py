"""Tracked benchmark subsystem (``python -m repro.bench``).

Complements the pytest-benchmark suites under ``benchmarks/``: those
explore parameter grids interactively; this package tracks a fixed
scenario registry over time, writing schema-versioned ``BENCH_<n>.json``
files that ``--compare`` diffs for regressions.  See
docs/observability.md for the schema and workflow.
"""

from .compare import DEFAULT_THRESHOLD, ComparisonRow, compare_results, format_report
from .environment import FINGERPRINT_FIELDS, fingerprint
from .harness import (
    RESULT_KIND,
    SCHEMA_VERSION,
    load_result,
    next_bench_path,
    run_scenarios,
    write_result,
)
from .scenarios import SCENARIOS, Scenario, scenario, select

__all__ = [
    "SCENARIOS",
    "Scenario",
    "scenario",
    "select",
    "run_scenarios",
    "write_result",
    "load_result",
    "next_bench_path",
    "SCHEMA_VERSION",
    "RESULT_KIND",
    "compare_results",
    "format_report",
    "ComparisonRow",
    "DEFAULT_THRESHOLD",
    "fingerprint",
    "FINGERPRINT_FIELDS",
]
