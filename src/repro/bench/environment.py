"""Environment fingerprint for tracked benchmark results.

A benchmark number is meaningless without the machine and build that
produced it.  Every ``BENCH_*.json`` embeds this fingerprint so
``--compare`` can warn when two runs are not apples-to-apples (different
CPU, Python, or commit) instead of silently comparing them.
"""

from __future__ import annotations

import datetime
import os
import platform
import subprocess
import sys
from typing import Dict, Optional

__all__ = ["fingerprint", "FINGERPRINT_FIELDS"]

#: Fields every fingerprint carries (schema contract, see tests).
FINGERPRINT_FIELDS = (
    "python",
    "implementation",
    "platform",
    "machine",
    "cpu",
    "cpu_count",
    "hostname",
    "commit",
    "dirty",
    "timestamp_utc",
    "bench_scale",
    "smoke",
)


def _cpu_model() -> str:
    """Best-effort CPU model name (Linux /proc/cpuinfo, else platform)."""
    try:
        with open("/proc/cpuinfo", "r", encoding="utf-8") as handle:
            for line in handle:
                if line.lower().startswith("model name"):
                    return line.split(":", 1)[1].strip()
    except OSError:
        pass
    return platform.processor() or platform.machine() or "unknown"


def _git(*args: str) -> Optional[str]:
    try:
        result = subprocess.run(
            ["git", *args],
            capture_output=True,
            text=True,
            timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)),
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if result.returncode != 0:
        return None
    return result.stdout.strip()


def fingerprint(*, smoke: bool = False) -> Dict[str, object]:
    """Collect the environment description embedded in every result file."""
    commit = _git("rev-parse", "HEAD")
    status = _git("status", "--porcelain") if commit is not None else None
    return {
        "python": sys.version.split()[0],
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "cpu": _cpu_model(),
        "cpu_count": os.cpu_count(),
        "hostname": platform.node(),
        "commit": commit,
        "dirty": bool(status) if status is not None else None,
        "timestamp_utc": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
        "bench_scale": os.environ.get("REPRO_BENCH_SCALE", "1.0"),
        "smoke": smoke,
    }
