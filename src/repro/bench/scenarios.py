"""The tracked benchmark scenario registry.

Each scenario is a named, self-contained measurement: it builds its
operator and pre-materialized stream, replays the stream through
:func:`repro.runtime.metrics.measure_throughput` (GC parked, generation
cost outside the clock), and returns one run's numbers.  The harness
(:mod:`repro.bench.harness`) handles warmup, repeats, and trimming.

The registry spans the axes the paper's evaluation cares about:
technique (in-order Figure 8 / out-of-order Figure 9), ingestion mode
(per-record vs batched), keying, holistic aggregations (Figure 14),
recovery overhead, and the tracing-ablation pair that guards the
"disabled tracing costs nothing" invariant.

Scenario names are hierarchical (``group/subgroup``) so ``-k`` filters
select families.  Sizes are per-scenario record counts; the smoke sizes
keep the full registry under ~30 s for CI.
"""

from __future__ import annotations

import time
from functools import lru_cache
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..aggregations import Median, PlainMedian, Sum
from ..core.operator_ import GeneralSlicingOperator
from ..core.tracing import Tracer
from ..core.types import Record, StreamElement, Watermark
from ..data.machine import machine_stream
from ..data.workloads import SECOND_MS, dashboard_windows
from ..experiments.harness import make_operator
from ..runtime.checkpoint import CheckpointingOperator
from ..runtime.disorder import inject_disorder, with_watermarks
from ..runtime.keyed import KeyedWindowOperator
from ..runtime.metrics import measure_throughput
from ..windows.count import CountTumblingWindow
from ..windows.session import SessionWindow
from ..windows.sliding import SlidingWindow

__all__ = ["Scenario", "SCENARIOS", "scenario", "select"]


class Scenario:
    """One registered measurement: a callable plus its run configuration."""

    __slots__ = ("name", "fn", "tags", "full_size", "smoke_size")

    def __init__(
        self,
        name: str,
        fn: Callable[[int], Dict[str, object]],
        tags: Tuple[str, ...],
        full_size: int,
        smoke_size: int,
    ) -> None:
        self.name = name
        self.fn = fn
        self.tags = tags
        self.full_size = full_size
        self.smoke_size = smoke_size

    def size(self, smoke: bool) -> int:
        return self.smoke_size if smoke else self.full_size

    def run(self, size: int) -> Dict[str, object]:
        """Execute one measured repetition; returns that run's numbers."""
        return self.fn(size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Scenario({self.name!r}, tags={self.tags})"


#: name -> :class:`Scenario`, in registration order.
SCENARIOS: Dict[str, Scenario] = {}


def scenario(name: str, *, tags: Sequence[str] = (), full_size: int, smoke_size: int):
    """Register a scenario function ``fn(size) -> run dict``."""

    def decorate(fn: Callable[[int], Dict[str, object]]):
        if name in SCENARIOS:
            raise ValueError(f"duplicate scenario name: {name}")
        SCENARIOS[name] = Scenario(name, fn, tuple(tags), full_size, smoke_size)
        return fn

    return decorate


def select(patterns: Sequence[str]) -> List[Scenario]:
    """Scenarios whose name contains any of ``patterns`` (all when empty)."""
    if not patterns:
        return list(SCENARIOS.values())
    chosen = [
        scn
        for scn in SCENARIOS.values()
        if any(pattern in scn.name for pattern in patterns)
    ]
    return chosen


# ----------------------------------------------------------------------
# stream builders (cached: repeats re-measure processing, not generation)


@lru_cache(maxsize=8)
def _inorder_records(size: int) -> Tuple[Record, ...]:
    # ~7 ms apart: a 1 s dashboard window spans ~143 records.
    return tuple(Record(i * 7, float(i % 101)) for i in range(size))


@lru_cache(maxsize=8)
def _ooo_elements(size: int) -> Tuple[StreamElement, ...]:
    # The paper's knobs: 20 % late, delays U[0, 2 s], trailing watermarks.
    disordered = inject_disorder(
        list(_inorder_records(size)), 0.2, 2 * SECOND_MS, seed=11
    )
    return tuple(
        with_watermarks(disordered, interval=SECOND_MS, max_delay=2 * SECOND_MS)
    )


@lru_cache(maxsize=8)
def _keyed_records(size: int) -> Tuple[Record, ...]:
    return tuple(
        Record(i * 7, float(i % 101), key=f"sensor-{i % 32}") for i in range(size)
    )


@lru_cache(maxsize=8)
def _machine_records(size: int) -> Tuple[Record, ...]:
    return tuple(machine_stream(size))


def _dashboard_operator(
    technique: str, *, in_order: bool = True, windows: int = 5
) -> GeneralSlicingOperator:
    operator = make_operator(
        technique,
        stream_in_order=in_order,
        allowed_lateness=0 if in_order else 2 * SECOND_MS,
    )
    for window in dashboard_windows(windows):
        operator.add_query(window, Sum())
    return operator


def _run(operator, elements, *, batch_size: Optional[int] = None) -> Dict[str, object]:
    outcome = measure_throughput(operator, elements, batch_size=batch_size)
    return {
        "records": outcome.records,
        "seconds": outcome.seconds,
        "results_emitted": outcome.results_emitted,
    }


# ----------------------------------------------------------------------
# per-technique ingest (Figures 8 and 9)

_INORDER_TECHNIQUES = {
    "lazy": "Lazy Slicing",
    "eager": "Eager Slicing",
    "pairs": "Pairs",
    "cutty": "Cutty",
    "buckets": "Buckets",
    "tuple_buffer": "Tuple Buffer",
}

_OOO_TECHNIQUES = {
    "lazy": "Lazy Slicing",
    "eager": "Eager Slicing",
    "buckets": "Buckets",
}


def _register_ingest() -> None:
    for slug, technique in _INORDER_TECHNIQUES.items():

        @scenario(
            f"ingest/inorder/{slug}",
            tags=("ingest", "inorder", slug),
            full_size=50_000,
            smoke_size=2_500,
        )
        def _run_inorder(size: int, _technique: str = technique) -> Dict[str, object]:
            return _run(_dashboard_operator(_technique), _inorder_records(size))

    for slug, technique in _OOO_TECHNIQUES.items():

        @scenario(
            f"ingest/ooo/{slug}",
            tags=("ingest", "ooo", slug),
            full_size=30_000,
            smoke_size=1_500,
        )
        def _run_ooo(size: int, _technique: str = technique) -> Dict[str, object]:
            operator = _dashboard_operator(_technique, in_order=False)
            tracer = operator.enable_tracing()
            run = _run(operator, _ooo_elements(size))
            run["counters"] = dict(tracer.counters)
            return run


_register_ingest()


# ----------------------------------------------------------------------
# batched vs per-record ingestion (the PR 1 fast path)


@scenario(
    "batched/per_record",
    tags=("batched",),
    full_size=80_000,
    smoke_size=4_000,
)
def _batched_per_record(size: int) -> Dict[str, object]:
    return _run(_dashboard_operator("Lazy Slicing"), _inorder_records(size))


@scenario(
    "batched/batch_1024",
    tags=("batched",),
    full_size=80_000,
    smoke_size=4_000,
)
def _batched_1024(size: int) -> Dict[str, object]:
    return _run(
        _dashboard_operator("Lazy Slicing"), _inorder_records(size), batch_size=1024
    )


# ----------------------------------------------------------------------
# aggregation-kernel ablation: in-order sliding sum with a fine slide,
# so the eager store carries ~100 live slices and the per-record update
# plus per-trigger range query dominate -- exactly where the kernels
# differ (FlatFAT O(log s) vs two-stacks/subtract-on-evict O(1))


def _kernel_operator(kernel: Optional[str]) -> GeneralSlicingOperator:
    operator = GeneralSlicingOperator(
        stream_in_order=True, eager=True, kernel=kernel
    )
    operator.add_query(SlidingWindow(10 * SECOND_MS, SECOND_MS // 10), Sum())
    return operator


def _register_kernels() -> None:
    # None = auto-selection (subtract-on-evict for an invertible Sum on
    # an in-order stream); the forced variants isolate each kernel.
    for slug, kernel in (
        ("auto", None),
        ("flatfat", "flatfat"),
        ("finger_tree", "finger_tree"),
        ("two_stacks", "two_stacks"),
        ("subtract_on_evict", "subtract_on_evict"),
    ):

        @scenario(
            f"kernel/{slug}",
            tags=("kernel", "eager", slug),
            full_size=50_000,
            smoke_size=2_500,
        )
        def _run_kernel(size: int, _kernel: Optional[str] = kernel) -> Dict[str, object]:
            return _run(_kernel_operator(_kernel), _inorder_records(size))


_register_kernels()


# ----------------------------------------------------------------------
# out-of-order kernel ablation (the fig9 regime): a disordered
# fine-slide sliding aggregation on an eager store, where every record
# lands a positional kernel update (one per distinct function -- four
# here, so kernel work dominates the fixed slicing overhead), every
# 250 ms watermark bulk-evicts the expired slice prefix, and 20 % of
# records arrive late and touch the middle of the structure.  This is
# the FlatFAT-vs-finger-tree battleground: FlatFAT pays a combine per
# tree level per update and a full O(s) rebuild per eviction, the
# finger tree marks a short dirty path and drops the prefix in one
# walk.  ``ooo/auto`` pins what the selector actually ships.


@lru_cache(maxsize=4)
def _ooo_dense_elements(size: int) -> Tuple[StreamElement, ...]:
    # Same disorder knobs as _ooo_elements, but watermarks every 250 ms:
    # the eviction cadence is the point of the kernel comparison.
    disordered = inject_disorder(
        list(_inorder_records(size)), 0.2, 2 * SECOND_MS, seed=11
    )
    return tuple(
        with_watermarks(
            disordered, interval=SECOND_MS // 4, max_delay=2 * SECOND_MS
        )
    )


def _ooo_kernel_operator(kernel: Optional[str]) -> GeneralSlicingOperator:
    from ..aggregations import Average, Max, Min

    operator = GeneralSlicingOperator(
        stream_in_order=False,
        eager=True,
        kernel=kernel,
        allowed_lateness=2 * SECOND_MS,
    )
    for aggregation in (Sum(), Max(), Min(), Average()):
        operator.add_query(
            SlidingWindow(10 * SECOND_MS, SECOND_MS // 10), aggregation
        )
    return operator


def _register_ooo_kernels() -> None:
    for slug, kernel in (
        ("auto", None),
        ("flatfat", "flatfat"),
        ("finger", "finger_tree"),
    ):

        @scenario(
            f"ooo/{slug}",
            tags=("ooo", "kernel", "eager", slug),
            full_size=30_000,
            smoke_size=1_500,
        )
        def _run_ooo_kernel(size: int, _kernel: Optional[str] = kernel) -> Dict[str, object]:
            operator = _ooo_kernel_operator(_kernel)
            tracer = operator.enable_tracing()
            run = _run(operator, _ooo_dense_elements(size))
            run["counters"] = dict(tracer.counters)
            return run


_register_ooo_kernels()


# ----------------------------------------------------------------------
# shared-window reuse: concurrently-triggering sliding windows where
# combining slice partials is expensive (holistic median), so the
# SharedQueryPlan's common-prefix reuse removes most of the combine work


def _share_operator(share: bool) -> GeneralSlicingOperator:
    operator = GeneralSlicingOperator(
        stream_in_order=True, share_windows=share
    )
    # One slide grid, five extents: every trigger closes all five
    # windows on the same end slice with nested ranges.
    for seconds in (2, 4, 6, 8, 10):
        operator.add_query(
            SlidingWindow(seconds * SECOND_MS, SECOND_MS // 2), Median()
        )
    return operator


@scenario("share/on", tags=("share",), full_size=20_000, smoke_size=1_500)
def _share_on(size: int) -> Dict[str, object]:
    operator = _share_operator(True)
    tracer = operator.enable_tracing()
    run = _run(operator, _inorder_records(size))
    run["counters"] = dict(tracer.counters)
    return run


@scenario("share/off", tags=("share",), full_size=20_000, smoke_size=1_500)
def _share_off(size: int) -> Dict[str, object]:
    operator = _share_operator(False)
    tracer = operator.enable_tracing()
    run = _run(operator, _inorder_records(size))
    run["counters"] = dict(tracer.counters)
    return run


# ----------------------------------------------------------------------
# keyed execution


@scenario("keyed/lazy", tags=("keyed",), full_size=30_000, smoke_size=2_000)
def _keyed_lazy(size: int) -> Dict[str, object]:
    operator = KeyedWindowOperator(lambda: _dashboard_operator("Lazy Slicing"))
    return _run(operator, _keyed_records(size))


# ----------------------------------------------------------------------
# holistic aggregation (Figure 14): RLE-encoded runs vs plain lists


def _holistic_operator(aggregation) -> GeneralSlicingOperator:
    operator = GeneralSlicingOperator(stream_in_order=True)
    for window in dashboard_windows(3):
        operator.add_query(window, aggregation)
    return operator


@scenario("holistic/median_rle", tags=("holistic",), full_size=15_000, smoke_size=1_200)
def _holistic_rle(size: int) -> Dict[str, object]:
    return _run(_holistic_operator(Median()), _machine_records(size))


@scenario("holistic/median_plain", tags=("holistic",), full_size=15_000, smoke_size=1_200)
def _holistic_plain(size: int) -> Dict[str, object]:
    return _run(_holistic_operator(PlainMedian()), _machine_records(size))


# ----------------------------------------------------------------------
# session windows under disorder (merge/split churn)


@scenario("session/ooo_lazy", tags=("session", "ooo"), full_size=20_000, smoke_size=1_500)
def _session_ooo(size: int) -> Dict[str, object]:
    operator = GeneralSlicingOperator(
        stream_in_order=False, allowed_lateness=2 * SECOND_MS
    )
    operator.add_query(SessionWindow(SECOND_MS), Sum())
    tracer = operator.enable_tracing()
    run = _run(operator, _ooo_elements(size))
    run["counters"] = dict(tracer.counters)
    return run


# ----------------------------------------------------------------------
# count-measure windows


@scenario("count/tumbling_lazy", tags=("count",), full_size=40_000, smoke_size=2_500)
def _count_tumbling(size: int) -> Dict[str, object]:
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(CountTumblingWindow(100), Sum())
    return _run(operator, _inorder_records(size))


# ----------------------------------------------------------------------
# recovery overhead: checkpointing wrapper vs bare ingest


@scenario("recovery/checkpointed", tags=("recovery",), full_size=20_000, smoke_size=1_500)
def _recovery_checkpointed(size: int) -> Dict[str, object]:
    inner = _dashboard_operator("Lazy Slicing")
    operator = CheckpointingOperator(inner, every=max(250, size // 8))
    tracer = operator.enable_tracing()
    run = _run(operator, _inorder_records(size))
    run["counters"] = dict(tracer.counters)
    run["metrics"] = {
        "checkpoints_taken": float(operator.snapshots_taken),
        "checkpoint_bytes": float(tracer.value("checkpoint.bytes_written")),
    }
    return run


# ----------------------------------------------------------------------
# tracing ablation: the "disabled tracing costs nothing" guard


@scenario("tracing/off", tags=("tracing",), full_size=50_000, smoke_size=4_000)
def _tracing_off(size: int) -> Dict[str, object]:
    return _run(_dashboard_operator("Lazy Slicing"), _inorder_records(size))


@scenario("tracing/on", tags=("tracing",), full_size=50_000, smoke_size=4_000)
def _tracing_on(size: int) -> Dict[str, object]:
    operator = _dashboard_operator("Lazy Slicing")
    tracer = operator.enable_tracing()
    run = _run(operator, _inorder_records(size))
    run["counters"] = dict(tracer.counters)
    return run


# ----------------------------------------------------------------------
# sharded multi-process execution (paper Section 5.3 / Figure 17):
# scaling the keyed dashboard workload over 1..8 worker shards.  shard/1
# exposes the IPC + merge overhead against keyed/lazy; higher counts
# show the key-parallel speedup ceiling for this record size.


def _shard_factory():
    """Module-level per-shard factory (pickled into worker processes)."""
    return _dashboard_operator("Lazy Slicing")


@lru_cache(maxsize=8)
def _sharded_elements(size: int) -> Tuple[StreamElement, ...]:
    # Keyed records with a watermark each event-time second: watermarks
    # are the merge alignment points, so the cadence matters for the
    # coordinator's epoch-release cost.
    elements: List[StreamElement] = []
    next_mark = SECOND_MS
    for record in _keyed_records(size):
        if record.ts >= next_mark:
            elements.append(Watermark(next_mark - 1))
            next_mark += SECOND_MS
        elements.append(record)
    return tuple(elements)


# ----------------------------------------------------------------------
# durable checkpoint stores: the disabled path (default in-memory store,
# single generation, no DLQ -- the pre-durability supervised pipeline)
# against multi-generation memory, disk-backed frames, and an attached
# dead-letter queue on a poison-free stream.  durability/off is the
# <3 %-overhead guard: store and DLQ machinery must cost nothing when
# not asked for.


def _supervised_run(
    size: int, *, store_factory=None, dlq_factory=None
) -> Dict[str, object]:
    from ..runtime.durability import DeadLetterQueue  # noqa: F401 - registry import
    from ..runtime.pipeline import CollectSink
    from ..runtime.recovery import SupervisedPipeline

    operator = _dashboard_operator("Lazy Slicing")
    sink = CollectSink()
    pipeline = SupervisedPipeline(
        operator,
        sink,
        checkpoint_every=max(500, size // 8),
        batch_size=256,
        store=store_factory() if store_factory is not None else None,
        dlq=dlq_factory() if dlq_factory is not None else None,
    )
    elements = list(_inorder_records(size))
    started = time.perf_counter()
    stats = pipeline.run(elements)
    elapsed = time.perf_counter() - started
    return {
        "records": len(elements),
        "seconds": elapsed,
        "results_emitted": stats.results_emitted,
        "metrics": {"checkpoints_taken": float(stats.checkpoints_taken)},
    }


@scenario("durability/off", tags=("durability",), full_size=40_000, smoke_size=2_500)
def _durability_off(size: int) -> Dict[str, object]:
    return _supervised_run(size)


@scenario("durability/memory", tags=("durability",), full_size=40_000, smoke_size=2_500)
def _durability_memory(size: int) -> Dict[str, object]:
    from ..runtime.durability import InMemoryStore

    return _supervised_run(size, store_factory=lambda: InMemoryStore(keep=3))


@scenario("durability/disk", tags=("durability",), full_size=40_000, smoke_size=2_500)
def _durability_disk(size: int) -> Dict[str, object]:
    import shutil
    import tempfile

    from ..runtime.durability import DiskCheckpointStore

    tmpdir = tempfile.mkdtemp(prefix="repro-bench-ckpt-")
    try:
        return _supervised_run(
            size, store_factory=lambda: DiskCheckpointStore(tmpdir, keep=3)
        )
    finally:
        shutil.rmtree(tmpdir, ignore_errors=True)


@scenario("durability/dlq", tags=("durability",), full_size=40_000, smoke_size=2_500)
def _durability_dlq(size: int) -> Dict[str, object]:
    from ..runtime.durability import DeadLetterQueue

    return _supervised_run(size, dlq_factory=lambda: DeadLetterQueue(max_retries=2))


def _register_sharded() -> None:
    for parallelism in (1, 2, 4, 8):

        @scenario(
            f"shard/{parallelism}",
            tags=("shard", "parallel"),
            full_size=40_000,
            smoke_size=2_000,
        )
        def _run_sharded(size: int, _parallelism: int = parallelism) -> Dict[str, object]:
            from ..runtime.sharded import ShardedPipeline

            elements = _sharded_elements(size)
            pipeline = ShardedPipeline(
                _shard_factory, _parallelism, batch_size=256, queue_capacity=16
            )
            started = time.perf_counter()
            results = pipeline.run(list(elements))
            elapsed = time.perf_counter() - started
            records = sum(1 for e in elements if isinstance(e, Record))
            return {
                "records": records,
                "seconds": elapsed,
                "results_emitted": len(results),
                "counters": dict(pipeline.tracer.counters),
            }


_register_sharded()
