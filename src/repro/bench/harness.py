"""Benchmark runner: warmup/repeat/trim, aggregation, and result files.

A tracked benchmark run produces one schema-versioned JSON document::

    {
      "kind": "repro-bench",
      "schema_version": 1,
      "fingerprint": {...},              # see repro.bench.environment
      "config": {"smoke": ..., "repeats": ..., "warmup": ..., "trim": ...},
      "scenarios": {
        "<name>": {
          "size": 2500,
          "records": 2500,
          "seconds": [..per kept repeat..],
          "records_per_second": <median of kept repeats>,
          "best_records_per_second": <max over kept repeats>,
          "results_emitted": ...,
          "counters": {...},             # optional, from the last repeat
          "metrics": {...},              # optional scenario extras
        }, ...
      }
    }

Result files are written as ``BENCH_<n>.json`` at the repository root
(next free index), so successive runs line up chronologically and
``--compare`` can diff any two.
"""

from __future__ import annotations

import json
import os
import re
import statistics
from typing import Callable, Dict, List, Optional, Sequence

from .environment import fingerprint
from .scenarios import Scenario

__all__ = [
    "SCHEMA_VERSION",
    "RESULT_KIND",
    "run_scenarios",
    "next_bench_path",
    "write_result",
    "load_result",
    "repo_root",
]

SCHEMA_VERSION = 1
RESULT_KIND = "repro-bench"

_BENCH_NAME = re.compile(r"^BENCH_(\d+)\.json$")


def _aggregate_seconds(seconds: List[float], trim: int) -> List[float]:
    """Drop the ``trim`` slowest repeats (noise spikes), keep the rest."""
    if trim <= 0 or len(seconds) <= trim:
        return list(seconds)
    return sorted(seconds)[: len(seconds) - trim]


def run_scenarios(
    scenarios: Sequence[Scenario],
    *,
    smoke: bool = False,
    repeats: int = 3,
    warmup: int = 1,
    trim: int = 1,
    progress: Optional[Callable[[str], None]] = None,
) -> Dict[str, object]:
    """Run each scenario ``warmup + repeats`` times; build the result doc.

    Timing per repeat comes from the scenario itself (it times only the
    stream replay, not operator/stream construction).  The headline
    number, ``records_per_second``, is the median over the kept repeats
    -- stable enough for ``--compare`` against a previous run of the
    same machine to stay inside the noise threshold.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    if warmup < 0:
        raise ValueError(f"warmup must be >= 0, got {warmup}")
    results: Dict[str, object] = {}
    for scn in scenarios:
        size = scn.size(smoke)
        if progress is not None:
            progress(f"{scn.name} (n={size}) ...")
        for _ in range(warmup):
            scn.run(size)
        seconds: List[float] = []
        last_run: Dict[str, object] = {}
        for _ in range(repeats):
            last_run = scn.run(size)
            seconds.append(float(last_run["seconds"]))
        kept = _aggregate_seconds(seconds, trim)
        records = int(last_run["records"])
        median_seconds = statistics.median(kept)
        entry: Dict[str, object] = {
            "size": size,
            "records": records,
            "seconds": [round(s, 6) for s in kept],
            "records_per_second": round(records / median_seconds, 2)
            if median_seconds > 0
            else 0.0,
            "best_records_per_second": round(records / min(kept), 2)
            if min(kept) > 0
            else 0.0,
            "results_emitted": int(last_run.get("results_emitted", 0)),
        }
        if "counters" in last_run:
            entry["counters"] = {
                name: value
                for name, value in sorted(dict(last_run["counters"]).items())
            }
        if "metrics" in last_run:
            entry["metrics"] = dict(last_run["metrics"])
        results[scn.name] = entry
        if progress is not None:
            progress(
                f"  {entry['records_per_second']:>12,.0f} records/s "
                f"(median of {len(kept)})"
            )
    return {
        "kind": RESULT_KIND,
        "schema_version": SCHEMA_VERSION,
        "fingerprint": fingerprint(smoke=smoke),
        "config": {
            "smoke": smoke,
            "repeats": repeats,
            "warmup": warmup,
            "trim": trim,
        },
        "scenarios": results,
    }


def repo_root() -> str:
    """The repository root: three levels above this package (src layout)."""
    here = os.path.dirname(os.path.abspath(__file__))
    return os.path.dirname(os.path.dirname(os.path.dirname(here)))


def next_bench_path(directory: Optional[str] = None) -> str:
    """The next free ``BENCH_<n>.json`` path in ``directory``."""
    directory = directory if directory is not None else repo_root()
    taken = [-1]
    try:
        names = os.listdir(directory)
    except OSError:
        names = []
    for name in names:
        match = _BENCH_NAME.match(name)
        if match:
            taken.append(int(match.group(1)))
    return os.path.join(directory, f"BENCH_{max(taken) + 1}.json")


def write_result(result: Dict[str, object], path: Optional[str] = None) -> str:
    """Serialize a result document to ``path`` (default: next BENCH_<n>)."""
    path = path if path is not None else next_bench_path()
    with open(path, "w", encoding="utf-8") as handle:
        json.dump(result, handle, indent=2, sort_keys=False)
        handle.write("\n")
    return path


def load_result(path: str) -> Dict[str, object]:
    """Read a result file back, validating kind and schema version."""
    with open(path, "r", encoding="utf-8") as handle:
        document = json.load(handle)
    if not isinstance(document, dict) or document.get("kind") != RESULT_KIND:
        raise ValueError(f"{path}: not a {RESULT_KIND} result file")
    version = document.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ValueError(
            f"{path}: schema_version {version!r} is not supported "
            f"(this build reads version {SCHEMA_VERSION})"
        )
    return document
