"""Command-line entry point: ``python -m repro.bench``.

Typical uses::

    python -m repro.bench --smoke              # fast CI pass, BENCH_<n>.json
    python -m repro.bench -k ingest -k keyed   # only matching scenarios
    python -m repro.bench --list               # show the registry
    python -m repro.bench --smoke --compare BENCH_0.json
                                               # regress-check vs a baseline;
                                               # exits 1 on regression

``REPRO_BENCH_SMOKE=1`` in the environment implies ``--smoke`` so CI
wrappers don't need to thread flags through.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from .compare import DEFAULT_THRESHOLD, compare_results, format_report
from .harness import load_result, run_scenarios, write_result
from .scenarios import SCENARIOS, select


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Run the tracked benchmark registry and write BENCH_<n>.json.",
    )
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small sizes / fewer repeats; also enabled by REPRO_BENCH_SMOKE=1",
    )
    parser.add_argument(
        "--list", action="store_true", help="list registered scenarios and exit"
    )
    parser.add_argument(
        "-k",
        dest="patterns",
        action="append",
        default=[],
        metavar="SUBSTR",
        help="run only scenarios whose name contains SUBSTR (repeatable)",
    )
    parser.add_argument(
        "--repeats", type=int, default=None, help="measured repeats per scenario"
    )
    parser.add_argument(
        "--warmup", type=int, default=None, help="unmeasured warmup runs per scenario"
    )
    parser.add_argument(
        "--trim",
        type=int,
        default=1,
        help="drop the N slowest repeats before aggregating (default 1)",
    )
    parser.add_argument(
        "--out",
        metavar="PATH",
        default=None,
        help="result file path (default: next free BENCH_<n>.json at repo root)",
    )
    parser.add_argument(
        "--compare",
        metavar="PREV.json",
        default=None,
        help="after running, diff against a previous result; exit 1 on regression",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help=f"relative noise threshold for --compare (default {DEFAULT_THRESHOLD})",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)
    smoke = args.smoke or os.environ.get("REPRO_BENCH_SMOKE", "") not in ("", "0")

    if args.list:
        for scn in SCENARIOS.values():
            size = scn.size(smoke)
            tags = ", ".join(scn.tags)
            print(f"{scn.name:<28} n={size:<8} [{tags}]")
        return 0

    scenarios = select(args.patterns)
    if not scenarios:
        print(f"no scenarios match {args.patterns!r}", file=sys.stderr)
        return 2

    repeats = args.repeats if args.repeats is not None else 5
    warmup = args.warmup if args.warmup is not None else 1
    trim = min(args.trim, max(0, repeats - 1))

    previous = None
    if args.compare is not None:
        previous = load_result(args.compare)  # fail fast, before the run

    result = run_scenarios(
        scenarios,
        smoke=smoke,
        repeats=repeats,
        warmup=warmup,
        trim=trim,
        progress=print,
    )
    path = write_result(result, args.out)
    print(f"wrote {path}")

    if previous is not None:
        rows = compare_results(previous, result, threshold=args.threshold)
        print()
        print(
            format_report(
                rows, threshold=args.threshold, previous=previous, current=result
            )
        )
        if any(row.status == "regression" for row in rows):
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
