"""Window type interfaces (Sections 4.4 and 5.4.2 of the paper).

Window types are classified by the *context* needed to know where
windows start and end:

* **Context free (CF)** -- all edges are known a priori from the window
  parameters (tumbling, sliding).
* **Forward context free (FCF)** -- edges up to time *t* are known once
  all records up to *t* are processed (punctuation-based windows).
* **Forward context aware (FCA)** -- records *after* *t* may reveal
  edges *before* *t* (multi-measure windows).

Session windows are context aware but special: out-of-order records can
only *merge* sessions (or open new ones in gaps), never force a slice
split, so they avoid record retention (Figure 4).

The interface mirrors the paper's Section 5.4.2: context free windows
implement ``get_next_edge`` (for on-the-fly slicing) and
``trigger_windows`` (for watermark-driven emission).  Context aware
windows additionally receive ``notify_context`` callbacks through which
they add or remove window edges.
"""

from __future__ import annotations

import enum
from typing import Iterator, List, Optional, Tuple

from ..core.measures import MeasureKind
from ..core.types import Record

__all__ = [
    "ContextClass",
    "WindowType",
    "ContextFreeWindow",
    "ForwardContextFreeWindow",
    "ContextAwareWindow",
    "WindowEdges",
]


class ContextClass(enum.Enum):
    """Li et al.'s window context classification (Section 4.4)."""

    CONTEXT_FREE = "CF"
    FORWARD_CONTEXT_FREE = "FCF"
    FORWARD_CONTEXT_AWARE = "FCA"


class WindowEdges:
    """Callback object handed to context-aware windows.

    A context-aware window reports discovered or retracted window edges
    through this object; the slice manager then splits / merges slices
    to keep slice edges aligned with window edges (Section 5.3, Step 2).
    """

    def __init__(self) -> None:
        self.added: List[int] = []
        self.removed: List[int] = []

    def add_edge(self, ts: int) -> None:
        """Report a new window start/end timestamp."""
        self.added.append(ts)

    def remove_edge(self, ts: int) -> None:
        """Retract a previously reported window edge."""
        self.removed.append(ts)

    def __bool__(self) -> bool:
        return bool(self.added or self.removed)


class WindowType:
    """Common base of all window specifications.

    Attributes
    ----------
    context:
        CF / FCF / FCA classification driving the decision tree.
    measure_kind:
        The measure dimension this window is defined on (time or count).
    is_session:
        ``True`` only for session windows (the merge-only exception in
        the Figure 4 decision tree).
    """

    context: ContextClass = ContextClass.CONTEXT_FREE
    measure_kind: MeasureKind = MeasureKind.TIME
    is_session: bool = False

    def get_next_edge(self, ts: int) -> Optional[int]:
        """Return the next window edge strictly greater than ``ts``.

        Used by the stream slicer to cache the upcoming slice boundary.
        ``None`` means this window currently implies no upcoming edge
        (e.g. a session window with no open session).
        """
        raise NotImplementedError

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        """Yield ``(start, end)`` of windows ending in ``(prev_wm, curr_wm]``.

        Called by the window manager whenever the watermark advances.
        Intervals are half-open ``[start, end)`` in this window's measure.
        """
        raise NotImplementedError

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        """Yield all windows that contain the timestamp ``ts``.

        Required by the bucket-per-window baseline (WID); context free
        windows can compute the containing set directly.
        """
        raise NotImplementedError

    def is_edge(self, ts: int) -> bool:
        """Whether ``ts`` is a window edge of this window type.

        Used by the slice manager to decide if a slice boundary may be
        dropped when merging (session bridging must not remove
        boundaries other queries rely on).
        """
        return False

    def get_floor_edge(self, ts: int) -> Optional[int]:
        """The largest known window edge at or before ``ts`` (or None).

        Used to align gap slices with window edges.
        """
        return None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class ContextFreeWindow(WindowType):
    """Base class for windows whose edges are known a priori."""

    context = ContextClass.CONTEXT_FREE


class ForwardContextFreeWindow(WindowType):
    """Base class for FCF windows (edges revealed by the records up to them).

    Subclasses consume stream context through :meth:`notify_context`.
    """

    context = ContextClass.FORWARD_CONTEXT_FREE

    def notify_context(self, edges: WindowEdges, record: Record) -> None:
        """Inspect ``record`` and report any edges it reveals."""
        raise NotImplementedError


class ContextAwareWindow(WindowType):
    """Base class for FCA windows (future records reveal past edges)."""

    context = ContextClass.FORWARD_CONTEXT_AWARE

    def notify_context(self, edges: WindowEdges, record: Record) -> None:
        """Inspect ``record`` and report any edges it adds or removes."""
        raise NotImplementedError
