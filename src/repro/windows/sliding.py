"""Sliding windows -- context free (Figure 1)."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..core.measures import MeasureKind
from .base import ContextFreeWindow

__all__ = ["SlidingWindow"]


class SlidingWindow(ContextFreeWindow):
    """Windows of ``length`` starting every ``slide`` measure units.

    Windows are ``[offset + k*slide, offset + k*slide + length)`` for all
    integers ``k >= 0``.  Consecutive windows overlap when
    ``slide < length``; a record then belongs to up to
    ``ceil(length / slide)`` windows, which is exactly the redundancy
    that slicing removes.
    """

    def __init__(
        self,
        length: int,
        slide: int,
        offset: int = 0,
        measure_kind: MeasureKind = MeasureKind.TIME,
    ) -> None:
        if length <= 0:
            raise ValueError(f"window length must be positive, got {length}")
        if slide <= 0:
            raise ValueError(f"slide step must be positive, got {slide}")
        self.length = length
        self.slide = slide
        self.offset = offset
        self.measure_kind = measure_kind

    def get_next_edge(self, ts: int) -> Optional[int]:
        """Smallest window start-or-end strictly greater than ``ts``.

        Starts fall on ``offset + k*slide``; ends on
        ``offset + k*slide + length``.  When ``length`` is a multiple of
        ``slide`` the two families coincide.
        """
        relative = ts - self.offset
        next_start = self.offset + (relative // self.slide + 1) * self.slide
        relative_end = ts - self.offset - self.length
        next_end = (
            self.offset + self.length + (relative_end // self.slide + 1) * self.slide
        )
        # Ends before the first window's end are not edges.
        if next_end < self.offset + self.length:
            next_end = self.offset + self.length
        return min(next_start, next_end)

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        """Windows ending in ``(prev_wm, curr_wm]`` (start >= offset)."""
        first_end = self.offset + self.length
        # Smallest window end > prev_wm:
        if prev_wm < first_end:
            end = first_end
        else:
            relative = prev_wm - first_end
            end = first_end + (relative // self.slide + 1) * self.slide
        while end <= curr_wm:
            yield (end - self.length, end)
            end += self.slide

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        """All windows containing ``ts`` (used by the buckets baseline)."""
        relative = ts - self.offset
        last_start = self.offset + (relative // self.slide) * self.slide
        start = last_start
        while start > ts - self.length and start >= self.offset:
            yield (start, start + self.length)
            start -= self.slide

    def is_edge(self, ts: int) -> bool:
        """Whether ``ts`` is a window start or end."""
        relative = ts - self.offset
        if relative % self.slide == 0:
            return True
        return ts >= self.offset + self.length and (relative - self.length) % self.slide == 0

    def get_floor_edge(self, ts: int) -> Optional[int]:
        """Largest window start-or-end at or before ``ts``."""
        relative = ts - self.offset
        floor_start = self.offset + (relative // self.slide) * self.slide
        if ts < self.offset + self.length:
            return floor_start
        relative_end = ts - self.offset - self.length
        floor_end = self.offset + self.length + (relative_end // self.slide) * self.slide
        return max(floor_start, floor_end)

    def concurrent_windows(self) -> int:
        """Number of windows open at any instant (steady state)."""
        return -(-self.length // self.slide)  # ceil division

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SlidingWindow(length={self.length}, slide={self.slide}, "
            f"offset={self.offset}, measure={self.measure_kind.value})"
        )
