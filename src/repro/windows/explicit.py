"""Explicit-edge windows: deterministic user-defined window sequences.

Cutty's headline feature -- user-defined windows -- frequently boils
down to "windows between a known, aperiodic sequence of boundaries":
calendar months, trading sessions, billing periods, shift schedules.
:class:`ExplicitEdgesWindow` captures that family as a reusable
context-free window type: give it the boundary timestamps and it slots
into general slicing, Pairs, and Cutty alike.

For unbounded streams the edge list can be extended on the fly with
:meth:`extend_edges` (e.g. append next month's boundary as time
advances); edges must stay sorted and only grow forward.
"""

from __future__ import annotations

import bisect
from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.measures import MeasureKind
from .base import ContextFreeWindow

__all__ = ["ExplicitEdgesWindow"]


class ExplicitEdgesWindow(ContextFreeWindow):
    """Consecutive windows between an explicit sorted boundary sequence.

    Windows are ``[edges[i], edges[i+1])``.  Timestamps outside the
    boundary range belong to no window.
    """

    def __init__(
        self,
        edges: Sequence[int],
        measure_kind: MeasureKind = MeasureKind.TIME,
    ) -> None:
        boundary_list = list(edges)
        if len(boundary_list) < 2:
            raise ValueError("need at least two edges to form a window")
        if any(b <= a for a, b in zip(boundary_list, boundary_list[1:])):
            raise ValueError("edges must be strictly increasing")
        self._edges: List[int] = boundary_list
        self.measure_kind = measure_kind

    @property
    def edges(self) -> List[int]:
        """The boundary timestamps (sorted copy)."""
        return list(self._edges)

    def extend_edges(self, more: Iterable[int]) -> None:
        """Append further boundaries (must continue the increasing order)."""
        for edge in more:
            if edge <= self._edges[-1]:
                raise ValueError(
                    f"edge {edge} does not extend past {self._edges[-1]}"
                )
            self._edges.append(edge)

    # ------------------------------------------------------------------

    def get_next_edge(self, ts: int) -> Optional[int]:
        """Smallest boundary strictly greater than ``ts``."""
        position = bisect.bisect_right(self._edges, ts)
        if position < len(self._edges):
            return self._edges[position]
        return None

    def get_floor_edge(self, ts: int) -> Optional[int]:
        """Largest boundary at or before ``ts``."""
        position = bisect.bisect_right(self._edges, ts)
        return self._edges[position - 1] if position > 0 else None

    def is_edge(self, ts: int) -> bool:
        """Whether ``ts`` is one of the boundaries."""
        position = bisect.bisect_left(self._edges, ts)
        return position < len(self._edges) and self._edges[position] == ts

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        """Windows ending in ``(prev_wm, curr_wm]``."""
        position = max(1, bisect.bisect_right(self._edges, prev_wm))
        while position < len(self._edges) and self._edges[position] <= curr_wm:
            yield (self._edges[position - 1], self._edges[position])
            position += 1

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        """The single window containing ``ts`` (none outside the range)."""
        position = bisect.bisect_right(self._edges, ts)
        if 0 < position < len(self._edges):
            yield (self._edges[position - 1], self._edges[position])

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ExplicitEdgesWindow({len(self._edges)} edges, "
            f"[{self._edges[0]}..{self._edges[-1]}])"
        )
