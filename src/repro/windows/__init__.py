"""Window type implementations (Sections 4.4 and 5.4.2).

Context free: :class:`TumblingWindow`, :class:`SlidingWindow`,
:class:`CountTumblingWindow`, :class:`CountSlidingWindow`,
:class:`ExplicitEdgesWindow` (user-defined boundary sequences).
Forward context free: :class:`PunctuationWindow`.
Context aware: :class:`SessionWindow` (merge-only),
:class:`LastNEveryWindow` (multi-measure FCA).
"""

from .base import (
    ContextAwareWindow,
    ContextClass,
    ContextFreeWindow,
    ForwardContextFreeWindow,
    WindowEdges,
    WindowType,
)
from .count import CountSlidingWindow, CountTumblingWindow
from .explicit import ExplicitEdgesWindow
from .multimeasure import LastNEveryWindow
from .punctuation import PunctuationWindow
from .session import SessionWindow
from .sliding import SlidingWindow
from .tumbling import TumblingWindow

__all__ = [
    "WindowType",
    "ContextClass",
    "ContextFreeWindow",
    "ForwardContextFreeWindow",
    "ContextAwareWindow",
    "WindowEdges",
    "TumblingWindow",
    "SlidingWindow",
    "CountTumblingWindow",
    "CountSlidingWindow",
    "ExplicitEdgesWindow",
    "SessionWindow",
    "PunctuationWindow",
    "LastNEveryWindow",
]
