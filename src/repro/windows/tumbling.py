"""Tumbling (fixed) windows -- context free (Figure 1)."""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..core.measures import MeasureKind
from .base import ContextFreeWindow

__all__ = ["TumblingWindow"]


class TumblingWindow(ContextFreeWindow):
    """Gap-free windows of equal ``length`` starting at ``offset``.

    Windows are ``[offset + k*length, offset + (k+1)*length)`` for every
    integer ``k >= 0``.  Works on any measure; pass
    ``measure_kind=MeasureKind.COUNT`` for a count-based tumbling window
    (equivalently use :class:`repro.windows.count.CountTumblingWindow`).
    """

    def __init__(
        self,
        length: int,
        offset: int = 0,
        measure_kind: MeasureKind = MeasureKind.TIME,
    ) -> None:
        if length <= 0:
            raise ValueError(f"window length must be positive, got {length}")
        self.length = length
        self.offset = offset
        self.measure_kind = measure_kind

    def get_next_edge(self, ts: int) -> Optional[int]:
        """Smallest window edge strictly greater than ``ts``."""
        relative = ts - self.offset
        return self.offset + (relative // self.length + 1) * self.length

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        """Windows ending in ``(prev_wm, curr_wm]``."""
        # The first window end > prev_wm:
        relative = prev_wm - self.offset
        end = self.offset + (relative // self.length + 1) * self.length
        while end <= curr_wm:
            start = end - self.length
            if end > self.offset:  # never emit windows before the origin
                yield (start, end)
            end += self.length

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        """The single tumbling window containing ``ts``."""
        relative = ts - self.offset
        start = self.offset + (relative // self.length) * self.length
        yield (start, start + self.length)

    def is_edge(self, ts: int) -> bool:
        """Whether ``ts`` falls on a window boundary."""
        return (ts - self.offset) % self.length == 0

    def get_floor_edge(self, ts: int) -> Optional[int]:
        """Largest window edge at or before ``ts``."""
        relative = ts - self.offset
        return self.offset + (relative // self.length) * self.length

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"TumblingWindow(length={self.length}, offset={self.offset}, "
            f"measure={self.measure_kind.value})"
        )
