"""Session windows -- context aware, but merge-only (Figure 1, Section 5.1).

A session covers a period of activity followed by a period of at least
``gap`` inactivity.  Sessions are context aware (a record can extend,
bridge, or open sessions retroactively) but they are the exception in
the Figure 4 decision tree: out-of-order records only ever *merge*
session slices or open new ones in gaps -- they never force a split --
so slicing sessions does not require storing raw records.
"""

from __future__ import annotations

from typing import Iterator, Optional, Tuple

from ..core.measures import MeasureKind
from ..core.types import Record
from .base import ContextAwareWindow, WindowEdges

__all__ = ["SessionWindow"]


class SessionWindow(ContextAwareWindow):
    """Event-time session windows with inactivity ``gap``.

    A session window's extent is ``[first_ts, last_ts + gap)`` where
    ``first_ts``/``last_ts`` are the first and last record of the
    activity period.  The actual session extents are derived from the
    slice store by the window manager (session slices carry the activity
    interval); this class holds the parameters and the in-order slicing
    hook.
    """

    is_session = True
    measure_kind = MeasureKind.TIME

    def __init__(self, gap: int) -> None:
        if gap <= 0:
            raise ValueError(f"session gap must be positive, got {gap}")
        self.gap = gap
        self._last_inorder_ts: Optional[int] = None

    def observe(self, ts: int) -> None:
        """Track the newest in-order record (drives the tentative edge)."""
        if self._last_inorder_ts is None or ts > self._last_inorder_ts:
            self._last_inorder_ts = ts

    def get_next_edge(self, ts: int) -> Optional[int]:
        """Tentative session end: ``last_record_ts + gap``.

        The edge is tentative -- a record arriving before it moves the
        edge further out.  With no open session there is no edge.
        """
        if self._last_inorder_ts is None:
            return None
        edge = self._last_inorder_ts + self.gap
        return edge if edge > ts else None

    def notify_context(self, edges: WindowEdges, record: Record) -> None:
        """Report the moved session end when a record extends the session."""
        previous = self._last_inorder_ts
        self.observe(record.ts)
        if previous is not None and record.ts > previous:
            edges.remove_edge(previous + self.gap)
        edges.add_edge(record.ts + self.gap)

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        """Sessions are derived from slice state; nothing is known a priori."""
        return iter(())

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        raise NotImplementedError(
            "session windows are data-driven; bucket baselines use merging assigners"
        )

    def reset(self) -> None:
        """Forget the in-order context (used when operators restart)."""
        self._last_inorder_ts = None

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SessionWindow(gap={self.gap})"
