"""Count-based tumbling and sliding windows (Section 4.3).

These are ordinary context-free windows, but defined on the tuple-count
measure.  Their edges are fixed *counts*; what makes them expensive on
out-of-order streams is that a late record shifts the count of every
record behind it, so window contents change retroactively (handled by
the slice manager's shift logic, Figure 6).
"""

from __future__ import annotations

from ..core.measures import MeasureKind
from .sliding import SlidingWindow
from .tumbling import TumblingWindow

__all__ = ["CountTumblingWindow", "CountSlidingWindow"]


class CountTumblingWindow(TumblingWindow):
    """Tumbling window over tuple counts: every ``length`` records."""

    def __init__(self, length: int, offset: int = 0) -> None:
        super().__init__(length, offset, measure_kind=MeasureKind.COUNT)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"CountTumblingWindow(length={self.length}, offset={self.offset})"


class CountSlidingWindow(SlidingWindow):
    """Sliding window over tuple counts: ``length`` records every ``slide``."""

    def __init__(self, length: int, slide: int, offset: int = 0) -> None:
        super().__init__(length, slide, offset, measure_kind=MeasureKind.COUNT)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CountSlidingWindow(length={self.length}, slide={self.slide}, "
            f"offset={self.offset})"
        )
