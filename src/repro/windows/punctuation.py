"""Punctuation-based windows -- forward context free (Section 4.4).

Window punctuations embedded in the stream mark window boundaries.
Once every record (and punctuation) up to a timestamp *t* has been
processed, all window edges before *t* are known -- the defining
property of FCF window types.

The model implemented here is the common "punctuations delimit
data-driven tumbling windows" semantics: every punctuation at timestamp
``p`` ends the window that opened at the previous punctuation (or at
``origin`` for the first one) and opens the next window.
"""

from __future__ import annotations

import bisect
from typing import Iterator, List, Optional, Tuple

from ..core.measures import MeasureKind
from ..core.types import Punctuation, Record
from .base import ForwardContextFreeWindow, WindowEdges

__all__ = ["PunctuationWindow"]


class PunctuationWindow(ForwardContextFreeWindow):
    """Windows delimited by :class:`~repro.core.types.Punctuation` marks."""

    measure_kind = MeasureKind.TIME

    def __init__(self, origin: int = 0) -> None:
        self.origin = origin
        #: Sorted punctuation timestamps (window boundaries) seen so far.
        self._edges: List[int] = []

    def on_punctuation(self, edges: WindowEdges, punctuation: Punctuation) -> None:
        """Register a punctuation; reports the new edge to the slicer."""
        ts = punctuation.ts
        position = bisect.bisect_left(self._edges, ts)
        if position < len(self._edges) and self._edges[position] == ts:
            return  # duplicate punctuation: edge already known
        self._edges.insert(position, ts)
        edges.add_edge(ts)

    def notify_context(self, edges: WindowEdges, record: Record) -> None:
        """Plain records carry no punctuation context."""

    def get_next_edge(self, ts: int) -> Optional[int]:
        """The next already-known punctuation edge after ``ts``, if any."""
        position = bisect.bisect_right(self._edges, ts)
        if position < len(self._edges):
            return self._edges[position]
        return None

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        """Punctuation-delimited windows ending in ``(prev_wm, curr_wm]``."""
        previous = self.origin
        for edge in self._edges:
            if prev_wm < edge <= curr_wm and previous < edge:
                yield (previous, edge)
            previous = max(previous, edge)

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        """The punctuation window containing ``ts`` (if closed already)."""
        position = bisect.bisect_right(self._edges, ts)
        start = self._edges[position - 1] if position > 0 else self.origin
        if position < len(self._edges):
            yield (start, self._edges[position])

    def is_edge(self, ts: int) -> bool:
        """Whether a punctuation was registered at ``ts``."""
        position = bisect.bisect_left(self._edges, ts)
        return position < len(self._edges) and self._edges[position] == ts

    def get_floor_edge(self, ts: int) -> Optional[int]:
        """Largest punctuation edge at or before ``ts``."""
        position = bisect.bisect_right(self._edges, ts)
        return self._edges[position - 1] if position > 0 else None

    def known_edges(self) -> List[int]:
        """All punctuation edges registered so far (sorted copy)."""
        return list(self._edges)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"PunctuationWindow(origin={self.origin}, edges={len(self._edges)})"
