"""Multi-measure windows -- forward context aware (Section 4.4).

The paper's FCA example: *"output the last n tuples (count measure)
every e seconds (time measure)"*.  The window *end* is a context-free
time edge, but the window *start* is ``n`` tuples back -- a count
position that is only known once all records up to the edge have been
processed (and that moves when out-of-order records arrive).  Such
windows force the slicer to keep raw records even on in-order streams
(Figure 4) because slice splits at record-count positions require
recomputing aggregates from the stored records.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple

from ..core.measures import MeasureKind
from ..core.types import Record
from .base import ContextAwareWindow, WindowEdges

__all__ = ["LastNEveryWindow"]


class LastNEveryWindow(ContextAwareWindow):
    """Every ``every`` time units, aggregate the last ``count`` records.

    Triggering happens on the context-free time edges ``k * every``.
    The emitted window covers the count interval
    ``[count_at_edge - count, count_at_edge)``; the window manager
    resolves the count positions against the slice store (splitting a
    slice when the start falls mid-slice).
    """

    #: Window ends live on the time measure; contents on the count measure.
    measure_kind = MeasureKind.COUNT

    def __init__(self, count: int, every: int, offset: int = 0) -> None:
        if count <= 0:
            raise ValueError(f"record count must be positive, got {count}")
        if every <= 0:
            raise ValueError(f"trigger period must be positive, got {every}")
        self.count = count
        self.every = every
        self.offset = offset
        #: time-edge -> cumulative record count at that edge, filled in as
        #: forward context becomes available.
        self._counts_at_edge: Dict[int, int] = {}

    def get_next_edge(self, ts: int) -> Optional[int]:
        """Next trigger timestamp (time measure) after ``ts``."""
        relative = ts - self.offset
        return self.offset + (relative // self.every + 1) * self.every

    def time_edges_between(self, prev_wm: int, curr_wm: int) -> Iterator[int]:
        """Trigger timestamps in ``(prev_wm, curr_wm]``."""
        edge = self.get_next_edge(prev_wm)
        while edge is not None and edge <= curr_wm:
            if edge > self.offset:
                yield edge
            edge += self.every

    def record_edge_count(self, edge_ts: int, cumulative_count: int) -> None:
        """Store the forward context: record count at a time edge.

        Out-of-order records before ``edge_ts`` later *increase* this
        count; the window manager refreshes it before triggering.
        """
        self._counts_at_edge[edge_ts] = cumulative_count

    def count_at_edge(self, edge_ts: int) -> Optional[int]:
        """Cumulative record count at ``edge_ts`` (None if not yet known)."""
        return self._counts_at_edge.get(edge_ts)

    def window_for_edge(self, edge_ts: int) -> Optional[Tuple[int, int]]:
        """The count interval emitted at ``edge_ts``: ``[c - n, c)``."""
        cumulative = self._counts_at_edge.get(edge_ts)
        if cumulative is None:
            return None
        return (max(0, cumulative - self.count), cumulative)

    def is_edge(self, ts: int) -> bool:
        """Whether ``ts`` is a trigger (time) edge."""
        return (ts - self.offset) % self.every == 0

    def get_floor_edge(self, ts: int) -> Optional[int]:
        """Largest trigger edge at or before ``ts``."""
        relative = ts - self.offset
        return self.offset + (relative // self.every) * self.every

    def notify_context(self, edges: WindowEdges, record: Record) -> None:
        """A record after an un-resolved time edge pins that edge's count.

        The slice manager supplies the cumulative-count bookkeeping; the
        window only needs to declare which *count* edges now exist so
        slices can be split there.  Edge declaration happens through
        :meth:`record_edge_count` from the operator, so nothing is
        reported here.
        """

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        """Count intervals for all resolved time edges in the range."""
        for edge in self.time_edges_between(prev_wm, curr_wm):
            window = self.window_for_edge(edge)
            if window is not None:
                yield window

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        raise NotImplementedError(
            "multi-measure windows have no a-priori containing set (FCA)"
        )

    def reset(self) -> None:
        """Forget all accumulated forward context."""
        self._counts_at_edge.clear()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"LastNEveryWindow(count={self.count}, every={self.every})"
