"""Experiment harness: technique registry and result tables.

The benchmark suite regenerates every table and figure of the paper's
Section 6.  This module provides the shared plumbing: a registry of the
compared techniques (operator factories behind the common interface), a
plain-text result table matching the paper's "rows/series" reporting
style, and workload-scale configuration.

Scale: the paper replays tens of millions of records on a JVM; the
default scale here is laptop-Python sized.  Set the environment
variable ``REPRO_BENCH_SCALE`` (float, default 1.0) to grow or shrink
every workload proportionally.
"""

from __future__ import annotations

import os
from typing import Callable, Dict, List, Sequence

from ..baselines import (
    AggregateBucketsOperator,
    AggregateTreeOperator,
    CuttyOperator,
    PairsOperator,
    TupleBucketsOperator,
    TupleBufferOperator,
)
from ..core.operator_base import WindowOperator
from ..core.operator_ import GeneralSlicingOperator

__all__ = [
    "bench_scale",
    "scaled",
    "TECHNIQUES",
    "INORDER_ONLY_TECHNIQUES",
    "make_operator",
    "ResultTable",
]


def bench_scale() -> float:
    """Global workload scale factor from ``REPRO_BENCH_SCALE``."""
    try:
        return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    except ValueError:
        return 1.0


def scaled(value: int, minimum: int = 1) -> int:
    """Scale a workload size by the global factor."""
    return max(minimum, int(value * bench_scale()))


def _lazy(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    return GeneralSlicingOperator(
        stream_in_order=stream_in_order, eager=False, allowed_lateness=allowed_lateness
    )


def _eager(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    return GeneralSlicingOperator(
        stream_in_order=stream_in_order, eager=True, allowed_lateness=allowed_lateness
    )


def _tuple_buffer(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    return TupleBufferOperator(
        stream_in_order=stream_in_order, allowed_lateness=allowed_lateness
    )


def _aggregate_tree(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    return AggregateTreeOperator(
        stream_in_order=stream_in_order, allowed_lateness=allowed_lateness
    )


def _aggregate_buckets(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    return AggregateBucketsOperator(
        stream_in_order=stream_in_order, allowed_lateness=allowed_lateness
    )


def _tuple_buckets(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    return TupleBucketsOperator(
        stream_in_order=stream_in_order, allowed_lateness=allowed_lateness
    )


def _pairs(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    if not stream_in_order:
        raise ValueError("Pairs is in-order only")
    return PairsOperator()


def _cutty(*, stream_in_order: bool, allowed_lateness: int) -> WindowOperator:
    if not stream_in_order:
        raise ValueError("Cutty is in-order only")
    return CuttyOperator()


#: Technique name -> factory, matching the paper's figure legends.
TECHNIQUES: Dict[str, Callable[..., WindowOperator]] = {
    "Lazy Slicing": _lazy,
    "Eager Slicing": _eager,
    "Tuple Buffer": _tuple_buffer,
    "Aggregate Tree": _aggregate_tree,
    "Buckets": _aggregate_buckets,
    "Tuple Buckets": _tuple_buckets,
    "Pairs": _pairs,
    "Cutty": _cutty,
}

#: Techniques restricted to in-order streams (skipped in ooo figures).
INORDER_ONLY_TECHNIQUES = frozenset({"Pairs", "Cutty"})


def make_operator(
    name: str, *, stream_in_order: bool, allowed_lateness: int = 0
) -> WindowOperator:
    """Instantiate a registered technique by its figure-legend name."""
    try:
        factory = TECHNIQUES[name]
    except KeyError:
        raise KeyError(
            f"unknown technique {name!r}; available: {sorted(TECHNIQUES)}"
        ) from None
    return factory(stream_in_order=stream_in_order, allowed_lateness=allowed_lateness)


class ResultTable:
    """Column-oriented result accumulation with paper-style printing."""

    def __init__(self, title: str, columns: Sequence[str]) -> None:
        self.title = title
        self.columns = list(columns)
        self.rows: List[Dict[str, object]] = []

    def add(self, **values: object) -> None:
        missing = [c for c in self.columns if c not in values]
        if missing:
            raise ValueError(f"row missing columns: {missing}")
        self.rows.append({column: values[column] for column in self.columns})

    def column(self, name: str) -> List[object]:
        return [row[name] for row in self.rows]

    def series(self, key_column: str, value_column: str) -> Dict[object, List[object]]:
        """Group ``value_column`` values by distinct ``key_column`` entries."""
        grouped: Dict[object, List[object]] = {}
        for row in self.rows:
            grouped.setdefault(row[key_column], []).append(row[value_column])
        return grouped

    @staticmethod
    def _format(value: object) -> str:
        if isinstance(value, float):
            if value >= 1000:
                return f"{value:,.0f}"
            return f"{value:.4g}"
        return str(value)

    def render(self) -> str:
        widths = {
            column: max(
                len(column), *(len(self._format(row[column])) for row in self.rows)
            )
            if self.rows
            else len(column)
            for column in self.columns
        }
        header = "  ".join(column.ljust(widths[column]) for column in self.columns)
        rule = "-" * len(header)
        lines = [self.title, rule, header, rule]
        for row in self.rows:
            lines.append(
                "  ".join(
                    self._format(row[column]).ljust(widths[column])
                    for column in self.columns
                )
            )
        lines.append(rule)
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - convenience
        return self.render()
