"""Command-line experiment runner: regenerate paper tables and figures.

Usage::

    python -m repro.experiments                # every experiment
    python -m repro.experiments fig8 fig11     # a selection
    REPRO_BENCH_SCALE=4 python -m repro.experiments fig9

Each experiment prints its result table; the benchmark suite
(`pytest benchmarks/ --benchmark-only`) additionally asserts the
paper's qualitative shapes.
"""

from __future__ import annotations

import sys
import time

from . import (
    fig8_inorder_throughput,
    fig9_ooo_throughput,
    fig10_memory,
    fig11_latency,
    fig12_stream_order,
    fig13_aggregations,
    fig14_holistic,
    fig15_split_cost,
    fig16_measures,
    fig17_parallel,
    recovery_latency,
    table1_memory_models,
)

EXPERIMENTS = {
    "table1": lambda: [table1_memory_models()],
    "fig8": lambda: [fig8_inorder_throughput()],
    "fig9": lambda: [
        fig9_ooo_throughput(dataset="football"),
        fig9_ooo_throughput(dataset="machine"),
    ],
    "fig10": lambda: [fig10_memory()],
    "fig11": lambda: [fig11_latency()],
    "fig12": lambda: [fig12_stream_order()],
    "fig13": lambda: [fig13_aggregations()],
    "fig14": lambda: [fig14_holistic()],
    "fig15": lambda: [fig15_split_cost()],
    "fig16": lambda: [fig16_measures()],
    "fig17": lambda: [fig17_parallel()],
    "recovery": lambda: [recovery_latency()],
}


def main(argv: list[str]) -> int:
    """Run the selected experiments (all when ``argv`` is empty)."""
    names = argv or list(EXPERIMENTS)
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiments: {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    for name in names:
        begin = time.perf_counter()
        tables = EXPERIMENTS[name]()
        elapsed = time.perf_counter() - begin
        for table in tables:
            print(table.render())
            print()
        print(f"[{name} completed in {elapsed:.1f}s]\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
