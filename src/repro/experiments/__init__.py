"""Experiment harness regenerating every Section 6 table and figure.

Quick use::

    from repro.experiments import fig8_inorder_throughput
    print(fig8_inorder_throughput().render())

Workload sizes scale with the ``REPRO_BENCH_SCALE`` environment
variable.  The per-experiment index lives in DESIGN.md; measured-vs-
paper comparisons in EXPERIMENTS.md.
"""

from .figures import (
    fig8_inorder_throughput,
    fig9_ooo_throughput,
    fig10_memory,
    fig11_latency,
    fig12_stream_order,
    fig13_aggregations,
    fig14_holistic,
    fig15_split_cost,
    fig16_measures,
    fig17_parallel,
    recovery_latency,
    table1_memory_models,
)
from .harness import (
    INORDER_ONLY_TECHNIQUES,
    ResultTable,
    TECHNIQUES,
    bench_scale,
    make_operator,
    scaled,
)

__all__ = [
    "fig8_inorder_throughput",
    "fig9_ooo_throughput",
    "fig10_memory",
    "fig11_latency",
    "fig12_stream_order",
    "fig13_aggregations",
    "fig14_holistic",
    "fig15_split_cost",
    "fig16_measures",
    "fig17_parallel",
    "table1_memory_models",
    "recovery_latency",
    "ResultTable",
    "TECHNIQUES",
    "INORDER_ONLY_TECHNIQUES",
    "make_operator",
    "bench_scale",
    "scaled",
]
