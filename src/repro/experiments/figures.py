"""Per-figure experiment definitions (Section 6 of the paper).

Every public ``fig*``/``table1`` function regenerates one table or
figure of the paper's evaluation as a :class:`ResultTable` whose rows
are the same series the paper plots.  Absolute numbers differ (pure
Python substrate vs the authors' Flink/JVM testbed); the *shapes* --
who wins, by roughly what factor, where crossovers fall -- are asserted
by the benchmark suite.

All workload sizes honour ``REPRO_BENCH_SCALE`` (see
:mod:`repro.experiments.harness`).
"""

from __future__ import annotations

import time
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..aggregations import (
    AggregateFunction,
    Average,
    Count,
    GeometricMean,
    M4,
    ArgMax,
    ArgMin,
    Max,
    MaxCount,
    Median,
    Min,
    MinCount,
    Percentile,
    PopulationStdDev,
    Sum,
    SumWithoutInvert,
)
from ..core.operator_base import WindowOperator
from ..core.operator_ import GeneralSlicingOperator
from ..core.slice_ import Slice
from ..core.types import Record, StreamElement
from ..data.football import football_keyed_stream, football_stream
from ..data.machine import machine_stream
from ..data.workloads import SECOND_MS, constrained_stream, dashboard_windows
from ..runtime.memory import deep_sizeof, memory_model
from ..runtime.metrics import LatencyHarness, measure_throughput
from ..runtime.partition import run_parallel
from ..windows.count import CountTumblingWindow
from ..windows.session import SessionWindow
from ..windows.tumbling import TumblingWindow
from .harness import (
    INORDER_ONLY_TECHNIQUES,
    ResultTable,
    make_operator,
    scaled,
)

__all__ = [
    "fig8_inorder_throughput",
    "fig9_ooo_throughput",
    "fig10_memory",
    "fig11_latency",
    "fig12_stream_order",
    "fig13_aggregations",
    "fig14_holistic",
    "fig15_split_cost",
    "fig16_measures",
    "fig17_parallel",
    "table1_memory_models",
    "recovery_latency",
]

#: Default technique sets per figure (paper legends).
FIG8_TECHNIQUES = (
    "Lazy Slicing",
    "Eager Slicing",
    "Pairs",
    "Cutty",
    "Buckets",
    "Tuple Buffer",
    "Aggregate Tree",
)
FIG9_TECHNIQUES = (
    "Lazy Slicing",
    "Eager Slicing",
    "Buckets",
    "Tuple Buffer",
    "Aggregate Tree",
)


def _add_dashboard_queries(
    operator: WindowOperator,
    concurrent_windows: int,
    aggregation: AggregateFunction,
    *,
    session_gap: Optional[int] = None,
) -> None:
    for window in dashboard_windows(concurrent_windows):
        operator.add_query(window, aggregation)
    if session_gap is not None:
        operator.add_query(SessionWindow(session_gap), aggregation)


# ----------------------------------------------------------------------
# Figure 8: in-order throughput over concurrent windows (CF tumbling)


def fig8_inorder_throughput(
    *,
    windows_list: Sequence[int] = (1, 4, 16, 64, 256),
    num_records: Optional[int] = None,
    techniques: Sequence[str] = FIG8_TECHNIQUES,
) -> ResultTable:
    """In-order processing with context-free windows (Figure 8)."""
    num_records = num_records if num_records is not None else scaled(12_000)
    stream = football_stream(num_records)
    table = ResultTable(
        "Figure 8: in-order throughput (records/s) vs concurrent windows",
        ["technique", "windows", "throughput"],
    )
    for concurrent in windows_list:
        for name in techniques:
            operator = make_operator(name, stream_in_order=True)
            _add_dashboard_queries(operator, concurrent, Sum())
            outcome = measure_throughput(operator, stream)
            table.add(
                technique=name, windows=concurrent, throughput=outcome.records_per_second
            )
    return table


# ----------------------------------------------------------------------
# Figure 9: constrained throughput (20 % out-of-order + session window)


def fig9_ooo_throughput(
    *,
    windows_list: Sequence[int] = (1, 4, 16, 64, 256),
    num_records: Optional[int] = None,
    techniques: Sequence[str] = FIG9_TECHNIQUES,
    dataset: str = "football",
    ooo_fraction: float = 0.2,
    max_delay: int = 2 * SECOND_MS,
) -> ResultTable:
    """Throughput under constraints (Figure 9): ooo records + sessions."""
    num_records = num_records if num_records is not None else scaled(8_000)
    if dataset == "football":
        records = football_stream(num_records)
    elif dataset == "machine":
        records = machine_stream(num_records)
    else:
        raise ValueError(f"unknown dataset {dataset!r}")
    stream = constrained_stream(records, fraction=ooo_fraction, max_delay=max_delay)
    table = ResultTable(
        f"Figure 9 ({dataset}): throughput with 20% ooo + session windows",
        ["technique", "windows", "throughput"],
    )
    for concurrent in windows_list:
        for name in techniques:
            if name in INORDER_ONLY_TECHNIQUES:
                continue
            operator = make_operator(
                name, stream_in_order=False, allowed_lateness=2 * max_delay
            )
            _add_dashboard_queries(
                operator, concurrent, Sum(), session_gap=SECOND_MS
            )
            outcome = measure_throughput(operator, stream)
            table.add(
                technique=name, windows=concurrent, throughput=outcome.records_per_second
            )
    return table


# ----------------------------------------------------------------------
# Figure 10: memory consumption


def _fill_time_operator(name: str, num_slices: int, num_tuples: int, span: int):
    """Build an operator holding ``num_slices`` slices over ``num_tuples``."""
    length = max(1, span // num_slices)
    operator = make_operator(name, stream_in_order=False, allowed_lateness=span)
    operator.add_query(TumblingWindow(length), Sum())
    step = max(1, span // num_tuples)
    for index in range(num_tuples):
        operator.process(Record(index * step, float(index % 97)))
    return operator


def _fill_count_operator(name: str, num_slices: int, num_tuples: int, span: int):
    length = max(1, num_tuples // num_slices)
    operator = make_operator(name, stream_in_order=False, allowed_lateness=span)
    operator.add_query(CountTumblingWindow(length), Sum())
    step = max(1, span // num_tuples)
    for index in range(num_tuples):
        operator.process(Record(index * step, float(index % 97)))
    return operator


def fig10_memory(
    *,
    slices_list: Sequence[int] = (50, 100, 500, 1000),
    tuples_list: Sequence[int] = (1_000, 5_000, 20_000, 50_000),
    fixed_tuples: Optional[int] = None,
    fixed_slices: int = 500,
    techniques: Sequence[str] = ("Lazy Slicing", "Buckets", "Tuple Buffer", "Aggregate Tree"),
) -> ResultTable:
    """Memory footprints with unordered streams (Figures 10a-10d).

    Four sub-experiments: vary slices with tuples fixed (10a time-based,
    10c count-based) and vary tuples with slices fixed (10b, 10d).
    """
    fixed_tuples = fixed_tuples if fixed_tuples is not None else scaled(20_000)
    span = 10_000_000  # large allowed lateness: nothing is evicted
    table = ResultTable(
        "Figure 10: memory (bytes) of aggregation techniques",
        ["panel", "measure", "technique", "slices", "tuples", "bytes"],
    )
    def technique_for(name: str, measure: str) -> str:
        # Count-based windows on unordered streams force buckets to keep
        # individual records (Table 1 row 4: tuple buckets).
        if measure == "count" and name == "Buckets":
            return "Tuple Buckets"
        return name

    for panel, measure, fill in (
        ("10a", "time", _fill_time_operator),
        ("10c", "count", _fill_count_operator),
    ):
        for num_slices in slices_list:
            for name in techniques:
                operator = fill(technique_for(name, measure), num_slices, fixed_tuples, span)
                footprint = sum(deep_sizeof(obj) for obj in operator.state_objects())
                table.add(
                    panel=panel,
                    measure=measure,
                    technique=name,
                    slices=num_slices,
                    tuples=fixed_tuples,
                    bytes=footprint,
                )
    for panel, measure, fill in (
        ("10b", "time", _fill_time_operator),
        ("10d", "count", _fill_count_operator),
    ):
        for num_tuples in tuples_list:
            for name in techniques:
                operator = fill(technique_for(name, measure), fixed_slices, num_tuples, span)
                footprint = sum(deep_sizeof(obj) for obj in operator.state_objects())
                table.add(
                    panel=panel,
                    measure=measure,
                    technique=name,
                    slices=fixed_slices,
                    tuples=num_tuples,
                    bytes=footprint,
                )
    return table


# ----------------------------------------------------------------------
# Figure 11: output latency of aggregate stores


def fig11_latency(
    *,
    entries_list: Sequence[int] = (100, 1_000, 10_000),
    aggregations: Sequence[str] = ("sum", "median"),
    iterations: int = 200,
) -> ResultTable:
    """Output latency for final window aggregation (Figures 11a/11c).

    ``entries`` is the number of stored items a window spans: slices for
    slicing techniques, records for tuple buffer / aggregate tree, and a
    single precomputed bucket for buckets.
    """
    from ..core.aggregate_store import EagerAggregateStore, LazyAggregateStore
    from ..core.flatfat import FlatFAT

    harness = LatencyHarness(warmup=20, iterations=iterations)
    table = ResultTable(
        "Figure 11: output latency (ns) per technique",
        ["aggregation", "technique", "entries", "latency_ns"],
    )
    for agg_name in aggregations:
        for entries in entries_list:
            function = Sum() if agg_name == "sum" else Median()
            values = [float(i % 101) for i in range(entries)]
            lifted = [function.lift(v) for v in values]

            lazy = LazyAggregateStore([function])
            eager = EagerAggregateStore([function])
            for index, value in enumerate(values):
                slice_ = Slice(index * 10, (index + 1) * 10, 1, store_records=False)
                slice_.aggs[0] = function.lift(value)
                slice_.record_count = 1
                slice_.first_ts = slice_.last_ts = index * 10
                lazy.append_slice(slice_)
                slice2 = Slice(index * 10, (index + 1) * 10, 1, store_records=False)
                slice2.aggs[0] = function.lift(value)
                slice2.record_count = 1
                slice2.first_ts = slice2.last_ts = index * 10
                eager.append_slice(slice2)

            record_tree = FlatFAT(function.combine, lifted)

            def lazy_query():
                partial = lazy.query_slices(0, entries, 0)
                return function.lower(partial)

            def eager_query():
                partial = eager.query_slices(0, entries, 0)
                return function.lower(partial)

            def buffer_query():
                partial = None
                for piece in lifted:
                    partial = piece if partial is None else function.combine(partial, piece)
                return function.lower(partial)

            def tree_query():
                return function.lower(record_tree.query(0, entries))

            precomputed = {0: buffer_query()}

            def bucket_query():
                return precomputed[0]

            cases = {
                "Lazy Slicing": lazy_query,
                "Eager Slicing": eager_query,
                "Tuple Buffer": buffer_query,
                "Aggregate Tree": tree_query,
                "Buckets": bucket_query,
            }
            for name, operation in cases.items():
                stats = harness.measure(operation)
                table.add(
                    aggregation=agg_name,
                    technique=name,
                    entries=entries,
                    latency_ns=stats.p50,
                )
    return table


# ----------------------------------------------------------------------
# Figure 12: stream order (fraction and delay of ooo records)


def fig12_stream_order(
    *,
    fractions: Sequence[float] = (0.0, 0.2, 0.5, 0.8),
    delay_ranges: Sequence[Tuple[int, int]] = (
        (0, 100),
        (0, 500),
        (0, 2_000),
        (1_000, 4_000),
    ),
    num_records: Optional[int] = None,
    techniques: Sequence[str] = FIG9_TECHNIQUES,
    concurrent_windows: int = 20,
) -> ResultTable:
    """Impact of out-of-order fraction (12a) and delay (12b) on throughput."""
    num_records = num_records if num_records is not None else scaled(8_000)
    records = football_stream(num_records)
    table = ResultTable(
        "Figure 12: throughput vs stream disorder",
        ["panel", "technique", "fraction", "delay_lo", "delay_hi", "throughput"],
    )
    for fraction in fractions:
        stream = constrained_stream(records, fraction=fraction, max_delay=2 * SECOND_MS)
        for name in techniques:
            if name in INORDER_ONLY_TECHNIQUES:
                continue
            operator = make_operator(
                name, stream_in_order=False, allowed_lateness=4 * SECOND_MS
            )
            _add_dashboard_queries(operator, concurrent_windows, Sum(), session_gap=SECOND_MS)
            outcome = measure_throughput(operator, stream)
            table.add(
                panel="12a",
                technique=name,
                fraction=fraction,
                delay_lo=0,
                delay_hi=2 * SECOND_MS,
                throughput=outcome.records_per_second,
            )
    for delay_lo, delay_hi in delay_ranges:
        stream = constrained_stream(
            records, fraction=0.2, max_delay=delay_hi, min_delay=delay_lo
        )
        for name in techniques:
            if name in INORDER_ONLY_TECHNIQUES:
                continue
            operator = make_operator(
                name, stream_in_order=False, allowed_lateness=2 * delay_hi
            )
            _add_dashboard_queries(operator, concurrent_windows, Sum(), session_gap=SECOND_MS)
            outcome = measure_throughput(operator, stream)
            table.add(
                panel="12b",
                technique=name,
                fraction=0.2,
                delay_lo=delay_lo,
                delay_hi=delay_hi,
                throughput=outcome.records_per_second,
            )
    return table


# ----------------------------------------------------------------------
# Figure 13: aggregation functions, time- vs count-based windows


def _fig13_aggregations() -> Dict[str, Callable[[], AggregateFunction]]:
    return {
        "sum": Sum,
        "sum w/o invert": SumWithoutInvert,
        "count": Count,
        "avg": Average,
        "min": Min,
        "max": Max,
        "mincount": MinCount,
        "maxcount": MaxCount,
        "geomean": GeometricMean,
        "stddev": PopulationStdDev,
        "argmin": ArgMin,
        "argmax": ArgMax,
        "median": Median,
        "90-percentile": lambda: Percentile(0.9),
    }


def fig13_aggregations(
    *,
    num_records: Optional[int] = None,
    concurrent_windows: int = 20,
    aggregations: Optional[Sequence[str]] = None,
) -> ResultTable:
    """Throughput per aggregation function (Figure 13).

    Runs general (lazy) slicing on time-based and count-based windows
    with the Section 6.2.2 disorder knobs, showing the invertibility
    effect on count windows and the holistic slowdown.
    """
    num_records = num_records if num_records is not None else scaled(4_000)
    catalogue = _fig13_aggregations()
    names = list(aggregations) if aggregations is not None else list(catalogue)
    records = football_stream(num_records)
    # Positive values required by geomean; shift the value domain.
    records = [Record(r.ts, r.value + 1.0, r.key) for r in records]
    stream = constrained_stream(records, fraction=0.2, max_delay=2 * SECOND_MS)
    table = ResultTable(
        "Figure 13: throughput per aggregation (time vs count windows)",
        ["aggregation", "measure", "throughput"],
    )
    # Count-window lengths mirror the time workload's extent: a "1-20 s"
    # window at the stream rate spans hundreds to thousands of records.
    count_length = max(100, num_records // 12)
    for name in names:
        factory = catalogue[name]
        for measure in ("time", "count"):
            function = factory()
            if name in ("argmin", "argmax"):
                adapted = [Record(r.ts, (r.value, r.ts), r.key) for r in records]
                adapted_stream = constrained_stream(
                    adapted, fraction=0.2, max_delay=2 * SECOND_MS
                )
                run_stream: List[StreamElement] = adapted_stream
            else:
                run_stream = stream
            operator = GeneralSlicingOperator(
                stream_in_order=False, allowed_lateness=4 * SECOND_MS
            )
            if measure == "time":
                for window in dashboard_windows(concurrent_windows):
                    operator.add_query(window, function)
            else:
                for index in range(concurrent_windows):
                    operator.add_query(
                        CountTumblingWindow(count_length * (1 + index % 4)), function
                    )
            outcome = measure_throughput(operator, run_stream)
            table.add(
                aggregation=name, measure=measure, throughput=outcome.records_per_second
            )
    return table


# ----------------------------------------------------------------------
# Figure 14: holistic aggregation across datasets/techniques


def fig14_holistic(
    *,
    num_records: Optional[int] = None,
    concurrent_windows: int = 20,
    techniques: Sequence[str] = ("Lazy Slicing", "Tuple Buffer", "Tuple Buckets"),
) -> ResultTable:
    """Holistic (median) throughput: slicing vs alternatives (Figure 14).

    The machine dataset (37 distinct values) benefits from run-length
    encoding inside slices; the football dataset (~84k distinct values)
    does not -- the paper's cardinality effect.
    """
    num_records = num_records if num_records is not None else scaled(4_000)
    table = ResultTable(
        "Figure 14: holistic aggregation throughput",
        ["dataset", "technique", "throughput"],
    )
    for dataset, records in (
        ("football", football_stream(num_records)),
        ("machine", machine_stream(num_records)),
    ):
        stream = constrained_stream(records, fraction=0.2, max_delay=2 * SECOND_MS)
        for name in techniques:
            operator = make_operator(
                name, stream_in_order=False, allowed_lateness=4 * SECOND_MS
            )
            _add_dashboard_queries(operator, concurrent_windows, Median())
            outcome = measure_throughput(operator, stream)
            table.add(
                dataset=dataset, technique=name, throughput=outcome.records_per_second
            )
    return table


# ----------------------------------------------------------------------
# Figure 15: split recomputation cost


def fig15_split_cost(
    *,
    sizes: Sequence[int] = (100, 1_000, 5_000, 20_000),
    aggregations: Sequence[str] = ("sum", "median"),
    repetitions: int = 20,
) -> ResultTable:
    """Processing time for recomputing aggregates after splits (Figure 15)."""
    table = ResultTable(
        "Figure 15: split recomputation time (us) vs tuples per slice",
        ["aggregation", "tuples", "time_us"],
    )
    for agg_name in aggregations:
        for size in sizes:
            function = Sum() if agg_name == "sum" else Median()
            total_ns = 0
            for repetition in range(repetitions):
                slice_ = Slice(0, size, 1, store_records=True)
                for index in range(size):
                    slice_.add_inorder(Record(index, float(index % 53)), [function])
                begin = time.perf_counter_ns()
                slice_.split_at(size // 2, [function])
                total_ns += time.perf_counter_ns() - begin
            table.add(
                aggregation=agg_name,
                tuples=size,
                time_us=total_ns / repetitions / 1_000,
            )
    return table


# ----------------------------------------------------------------------
# Figure 16: windowing measures


def fig16_measures(
    *,
    windows_list: Sequence[int] = (4, 16, 64, 256),
    num_records: Optional[int] = None,
) -> ResultTable:
    """Time- vs count-based measures over concurrent windows (Figure 16)."""
    num_records = num_records if num_records is not None else scaled(6_000)
    records = football_stream(num_records)
    stream = constrained_stream(records, fraction=0.2, max_delay=2 * SECOND_MS)
    table = ResultTable(
        "Figure 16: throughput per windowing measure",
        ["series", "windows", "throughput"],
    )
    for concurrent in windows_list:
        # Time-based general slicing.
        operator = GeneralSlicingOperator(
            stream_in_order=False, allowed_lateness=4 * SECOND_MS
        )
        _add_dashboard_queries(operator, concurrent, Sum())
        table.add(
            series="slicing (time)",
            windows=concurrent,
            throughput=measure_throughput(operator, stream).records_per_second,
        )
        # Count-based general slicing.
        operator = GeneralSlicingOperator(
            stream_in_order=False, allowed_lateness=4 * SECOND_MS
        )
        count_length = max(100, num_records // 12)
        for index in range(concurrent):
            operator.add_query(CountTumblingWindow(count_length * (1 + index % 4)), Sum())
        table.add(
            series="slicing (count)",
            windows=concurrent,
            throughput=measure_throughput(operator, stream).records_per_second,
        )
        # Tuple buffer on count windows (the fastest alternative, Sec 6.3.4).
        operator = make_operator(
            "Tuple Buffer", stream_in_order=False, allowed_lateness=4 * SECOND_MS
        )
        for index in range(concurrent):
            operator.add_query(CountTumblingWindow(count_length * (1 + index % 4)), Sum())
        table.add(
            series="tuple buffer (count)",
            windows=concurrent,
            throughput=measure_throughput(operator, stream).records_per_second,
        )
    return table


# ----------------------------------------------------------------------
# Figure 17: parallel stream slicing


def _parallel_slicing_factory() -> WindowOperator:
    operator = GeneralSlicingOperator(stream_in_order=True)
    aggregation = M4()
    for window in dashboard_windows(80):
        operator.add_query(window, aggregation)
    return operator


def _parallel_buckets_factory() -> WindowOperator:
    from ..baselines import AggregateBucketsOperator

    operator = AggregateBucketsOperator(stream_in_order=True)
    aggregation = M4()
    for window in dashboard_windows(80):
        operator.add_query(window, aggregation)
    return operator


def fig17_parallel(
    *,
    parallelism_list: Sequence[int] = (1, 2, 4),
    num_records: Optional[int] = None,
    num_keys: int = 64,
    techniques: Sequence[str] = ("Lazy Slicing", "Buckets"),
) -> ResultTable:
    """Key-partitioned scalability, M4 dashboard workload (Figure 17)."""
    num_records = num_records if num_records is not None else scaled(24_000)
    stream = football_keyed_stream(num_records, num_keys)
    factories = {
        "Lazy Slicing": _parallel_slicing_factory,
        "Buckets": _parallel_buckets_factory,
    }
    table = ResultTable(
        "Figure 17: parallel throughput and CPU utilization",
        ["technique", "parallelism", "throughput", "cpu_percent"],
    )
    for name in techniques:
        factory = factories[name]
        for parallelism in parallelism_list:
            outcome = run_parallel(factory, stream, parallelism)
            table.add(
                technique=name,
                parallelism=parallelism,
                throughput=outcome.records_per_second,
                cpu_percent=outcome.cpu_utilization,
            )
    return table


# ----------------------------------------------------------------------
# Table 1: memory models vs measurements


def table1_memory_models(
    *,
    num_tuples: int = 10_000,
    num_slices: int = 100,
    num_windows: int = 100,
) -> ResultTable:
    """Evaluate the Table 1 analytic memory models (sanity-check rows)."""
    table = ResultTable(
        "Table 1: analytic memory-usage models (bytes)",
        ["row", "technique", "model_bytes"],
    )
    from ..runtime.memory import TABLE1_ROWS

    for row, technique in TABLE1_ROWS.items():
        table.add(
            row=row,
            technique=technique,
            model_bytes=memory_model(
                row,
                num_tuples=num_tuples,
                num_slices=num_slices,
                num_windows=num_windows,
            ),
        )
    return table


# ----------------------------------------------------------------------
# Recovery: checkpoint-and-replay latency vs checkpoint interval
# (beyond the paper -- the substrate's fault-tolerance story; Flink
# provides this for free in the authors' setup)


def recovery_latency(
    intervals: Sequence[int] = (100, 500, 2_000, 8_000),
    *,
    crashes: int = 3,
    seed: int = 7,
    batch_size: int = 64,
) -> ResultTable:
    """Recovery latency and replay volume vs checkpoint interval.

    A supervised pipeline replays a fixed stream with ``crashes``
    seeded crash points (identical across rows); the checkpoint
    interval trades snapshot overhead (checkpoints taken) against
    recovery cost (records replayed, time to restore).
    """
    from ..runtime.faults import FaultInjectingOperator, FaultPlan
    from ..runtime.pipeline import CountingSink
    from ..runtime.recovery import RestartPolicy, SupervisedPipeline

    num_records = scaled(20_000)
    stream: List[StreamElement] = [
        Record(ts, float(ts % 11)) for ts in range(num_records)
    ]
    plan = FaultPlan(seed, num_records, crashes=crashes)

    def build() -> WindowOperator:
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(100), Sum())
        operator.add_query(SessionWindow(40), Average())
        return operator

    table = ResultTable(
        "Recovery latency vs checkpoint interval "
        f"({num_records} records, {crashes} injected crashes)",
        [
            "interval",
            "checkpoints",
            "restarts",
            "replayed_records",
            "deduped_results",
            "mean_recovery_ms",
            "wall_seconds",
        ],
    )
    for interval in intervals:
        sink = CountingSink()
        pipeline = SupervisedPipeline(
            FaultInjectingOperator(build(), plan=plan),
            sink,
            checkpoint_every=interval,
            batch_size=batch_size,
            restart_policy=RestartPolicy(max_restarts=crashes + 2),
            sleep=lambda _seconds: None,
        )
        begin = time.perf_counter()
        stats = pipeline.run(stream)
        wall = time.perf_counter() - begin
        table.add(
            interval=interval,
            checkpoints=stats.checkpoints_taken,
            restarts=stats.restarts,
            replayed_records=stats.replayed_records,
            deduped_results=stats.deduped_results,
            mean_recovery_ms=stats.mean_recovery_seconds * 1_000.0,
            wall_seconds=wall,
        )
    return table
