"""Runtime substrate: pipeline, sources, disorder, metrics, memory,
key-partitioned parallelism, and fault tolerance.

This package replaces the paper's Apache Flink runtime with a pure
Python tuple-at-a-time substrate (see DESIGN.md, substitutions table).
Fault tolerance -- Flink's checkpoint/restart/exactly-once story -- is
provided by :mod:`repro.runtime.checkpoint` (versioned snapshots),
:mod:`repro.runtime.faults` (deterministic fault injection), and
:mod:`repro.runtime.recovery` (the supervised pipeline); see
docs/fault_tolerance.md.
"""

from .checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_MAGIC,
    CheckpointError,
    CheckpointFormatError,
    CheckpointingOperator,
    SnapshotError,
    restore,
    snapshot,
)
from .disorder import disorder_fraction, inject_disorder, with_watermarks
from .durability import (
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    CheckpointCorruptError,
    CheckpointStore,
    DeadLetterOverflow,
    DeadLetterQueue,
    DiskCheckpointStore,
    InMemoryStore,
    PoisonRecord,
    StoredCheckpoint,
)
from .faults import (
    FaultInjectingOperator,
    FaultPlan,
    FaultySource,
    FaultyStore,
    InjectedCrash,
    InjectedFault,
    InjectedOperatorError,
    SourceHiccup,
    TransientStoreError,
    stall_watermarks,
)
from .memory import TABLE1_ROWS, deep_sizeof, memory_model
from .metrics import (
    LatencyHarness,
    LatencyStats,
    RecoveryStats,
    SpanStats,
    ThroughputResult,
    Tracer,
    measure_throughput,
)
from .keyed import KeyedWindowOperator
from .partition import (
    ParallelResult,
    PartitionedExecutor,
    hash_partition,
    run_parallel,
    stable_hash,
)
from .pipeline import CollectSink, CountingSink, FilterOperator, MapOperator, Pipeline
from .recovery import (
    Checkpoint,
    MemoryGuard,
    MemoryPressure,
    PipelineFailed,
    RecoveryError,
    RestartPolicy,
    SupervisedPipeline,
)
from .sharded import ShardedPipeline, alignment_key, run_keyed_reference
from .sources import (
    GeneratorSource,
    ListSource,
    ReplayableSource,
    batched,
    paced_replay,
)

__all__ = [
    "inject_disorder",
    "with_watermarks",
    "disorder_fraction",
    "deep_sizeof",
    "memory_model",
    "TABLE1_ROWS",
    "measure_throughput",
    "Tracer",
    "SpanStats",
    "ThroughputResult",
    "LatencyHarness",
    "LatencyStats",
    "RecoveryStats",
    "hash_partition",
    "stable_hash",
    "PartitionedExecutor",
    "run_parallel",
    "ParallelResult",
    "KeyedWindowOperator",
    "ShardedPipeline",
    "alignment_key",
    "run_keyed_reference",
    "snapshot",
    "restore",
    "CheckpointingOperator",
    "CheckpointError",
    "CheckpointFormatError",
    "SnapshotError",
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointStore",
    "InMemoryStore",
    "DiskCheckpointStore",
    "StoredCheckpoint",
    "CheckpointCorruptError",
    "STORE_MAGIC",
    "STORE_FORMAT_VERSION",
    "DeadLetterQueue",
    "DeadLetterOverflow",
    "PoisonRecord",
    "FaultPlan",
    "FaultInjectingOperator",
    "FaultySource",
    "InjectedFault",
    "InjectedCrash",
    "InjectedOperatorError",
    "SourceHiccup",
    "FaultyStore",
    "TransientStoreError",
    "stall_watermarks",
    "SupervisedPipeline",
    "RestartPolicy",
    "MemoryGuard",
    "MemoryPressure",
    "Checkpoint",
    "PipelineFailed",
    "RecoveryError",
    "Pipeline",
    "MapOperator",
    "FilterOperator",
    "CollectSink",
    "CountingSink",
    "ListSource",
    "GeneratorSource",
    "ReplayableSource",
    "batched",
    "paced_replay",
]
