"""Runtime substrate: pipeline, sources, disorder, metrics, memory,
and key-partitioned parallelism.

This package replaces the paper's Apache Flink runtime with a pure
Python tuple-at-a-time substrate (see DESIGN.md, substitutions table).
"""

from .checkpoint import CheckpointingOperator, restore, snapshot
from .disorder import disorder_fraction, inject_disorder, with_watermarks
from .memory import TABLE1_ROWS, deep_sizeof, memory_model
from .metrics import LatencyHarness, LatencyStats, ThroughputResult, measure_throughput
from .keyed import KeyedWindowOperator
from .partition import ParallelResult, PartitionedExecutor, hash_partition, run_parallel
from .pipeline import CollectSink, CountingSink, FilterOperator, MapOperator, Pipeline
from .sources import GeneratorSource, ListSource, batched, paced_replay

__all__ = [
    "inject_disorder",
    "with_watermarks",
    "disorder_fraction",
    "deep_sizeof",
    "memory_model",
    "TABLE1_ROWS",
    "measure_throughput",
    "ThroughputResult",
    "LatencyHarness",
    "LatencyStats",
    "hash_partition",
    "PartitionedExecutor",
    "run_parallel",
    "ParallelResult",
    "KeyedWindowOperator",
    "snapshot",
    "restore",
    "CheckpointingOperator",
    "Pipeline",
    "MapOperator",
    "FilterOperator",
    "CollectSink",
    "CountingSink",
    "ListSource",
    "GeneratorSource",
    "batched",
    "paced_replay",
]
