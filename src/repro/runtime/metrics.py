"""Throughput and latency measurement harnesses (Section 6.1, Metrics).

* :func:`measure_throughput` follows the Yahoo Streaming Benchmark
  methodology: replay a pre-materialized stream through the operator
  and report sustained records/second (windowing is the bottleneck;
  results are drained into a no-op sink).
* :class:`LatencyHarness` mirrors the JMH setup: warmup iterations,
  then repeated steady-state invocations timed with a nanosecond
  monotonic clock, reporting percentile statistics.
"""

from __future__ import annotations

import gc
import math
import statistics
import time
from typing import Any, Callable, Dict, List, Sequence

from ..core.operator_base import WindowOperator
from ..core.tracing import SpanStats, Tracer
from ..core.types import StreamElement

__all__ = [
    "ThroughputResult",
    "measure_throughput",
    "LatencyHarness",
    "LatencyStats",
    "RecoveryStats",
    # Observability (re-exported; defined in repro.core.tracing so the
    # core package stays free of runtime imports).
    "Tracer",
    "SpanStats",
]


class ThroughputResult:
    """Outcome of a throughput run."""

    __slots__ = ("records", "seconds", "results_emitted")

    def __init__(self, records: int, seconds: float, results_emitted: int) -> None:
        self.records = records
        self.seconds = seconds
        self.results_emitted = results_emitted

    @property
    def records_per_second(self) -> float:
        """Sustained rate; 0.0 for zero-length measurements (no records
        or no measurable elapsed time) instead of a meaningless ``inf``."""
        if self.records <= 0 or self.seconds <= 0:
            return 0.0
        return self.records / self.seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ThroughputResult({self.records_per_second:,.0f} records/s over "
            f"{self.records} records, {self.results_emitted} windows)"
        )


def measure_throughput(
    operator: WindowOperator,
    elements: Sequence[StreamElement],
    *,
    record_count: int | None = None,
    disable_gc: bool = True,
    batch_size: int | None = None,
) -> ThroughputResult:
    """Replay ``elements`` through ``operator`` and measure records/second.

    ``elements`` must be pre-materialized (a list) so generation cost
    stays outside the measurement, matching the paper's setup where
    windowing is the bottleneck.  ``batch_size`` exercises the batched
    ingestion path: elements are pre-chunked outside the measured region
    and replayed through :meth:`WindowOperator.process_batch`; ``None``
    keeps the tuple-at-a-time path.
    """
    from ..core.types import Record

    if batch_size is not None and batch_size < 1:
        raise ValueError(f"batch_size must be >= 1, got {batch_size}")
    if record_count is None:
        record_count = sum(1 for e in elements if isinstance(e, Record))
    batches: list | None = None
    if batch_size is not None:
        elements = list(elements)
        batches = [
            elements[i : i + batch_size] for i in range(0, len(elements), batch_size)
        ]
    emitted = 0
    was_enabled = gc.isenabled()
    if disable_gc:
        gc.collect()
        gc.disable()
    try:
        if batches is not None:
            process_batch = operator.process_batch
            start = time.perf_counter()
            for batch in batches:
                out = process_batch(batch)
                if out:
                    emitted += len(out)
            elapsed = time.perf_counter() - start
        else:
            process = operator.process
            start = time.perf_counter()
            for element in elements:
                out = process(element)
                if out:
                    emitted += len(out)
            elapsed = time.perf_counter() - start
    finally:
        if disable_gc:
            if was_enabled:
                gc.enable()
            # Collect the garbage accumulated while the collector was
            # off, so back-to-back measurements don't inherit it (even
            # when gc was already disabled by the caller).
            gc.collect()
    return ThroughputResult(record_count, elapsed, emitted)


class RecoveryStats:
    """Counters for supervised (checkpoint-and-replay) execution.

    Filled in by :class:`repro.runtime.recovery.SupervisedPipeline`:
    how often the pipeline restarted, how much of the stream had to be
    replayed, how many re-emitted results the exactly-once dedup
    suppressed, and how long each recovery took (restore + rewind, not
    counting the replay itself, which is ordinary processing).
    """

    __slots__ = (
        "restarts",
        "source_retries",
        "checkpoints_taken",
        "replayed_elements",
        "replayed_records",
        "deduped_results",
        "results_emitted",
        "late_records",
        "shed_records",
        "quarantined_records",
        "store_fallbacks",
        "resumed_from_cursor",
        "recovery_seconds",
    )

    def __init__(self) -> None:
        self.restarts = 0
        self.source_retries = 0
        self.checkpoints_taken = 0
        self.replayed_elements = 0
        self.replayed_records = 0
        self.deduped_results = 0
        self.results_emitted = 0
        self.late_records = 0
        self.shed_records = 0
        # Poison records the DeadLetterQueue pulled out of the stream.
        self.quarantined_records = 0
        # Corrupt newer generations skipped on restore (durable stores).
        self.store_fallbacks = 0
        # Cursor a resume=True run continued from; None for fresh runs.
        self.resumed_from_cursor: int | None = None
        self.recovery_seconds: List[float] = []

    def record_recovery(self, seconds: float, elements: int, records: int) -> None:
        """Account one restore-and-rewind cycle."""
        self.restarts += 1
        self.recovery_seconds.append(seconds)
        self.replayed_elements += elements
        self.replayed_records += records

    @property
    def total_recovery_seconds(self) -> float:
        return sum(self.recovery_seconds)

    @property
    def mean_recovery_seconds(self) -> float:
        if not self.recovery_seconds:
            return 0.0
        return statistics.fmean(self.recovery_seconds)

    @property
    def max_recovery_seconds(self) -> float:
        if not self.recovery_seconds:
            return 0.0
        return max(self.recovery_seconds)

    def summary(self) -> Dict[str, float]:
        """Flat dict for result tables and logs."""
        return {
            "restarts": self.restarts,
            "source_retries": self.source_retries,
            "checkpoints_taken": self.checkpoints_taken,
            "replayed_elements": self.replayed_elements,
            "replayed_records": self.replayed_records,
            "deduped_results": self.deduped_results,
            "results_emitted": self.results_emitted,
            "late_records": self.late_records,
            "shed_records": self.shed_records,
            "quarantined_records": self.quarantined_records,
            "store_fallbacks": self.store_fallbacks,
            "mean_recovery_seconds": self.mean_recovery_seconds,
            "total_recovery_seconds": self.total_recovery_seconds,
        }

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"RecoveryStats(restarts={self.restarts}, "
            f"checkpoints={self.checkpoints_taken}, "
            f"replayed={self.replayed_records} records, "
            f"deduped={self.deduped_results}, "
            f"recovery={self.total_recovery_seconds * 1000:.1f}ms)"
        )


class LatencyStats:
    """Percentile summary of a latency measurement (nanoseconds)."""

    __slots__ = ("samples",)

    def __init__(self, samples: List[int]) -> None:
        if not samples:
            raise ValueError("no latency samples collected")
        self.samples = sorted(samples)

    def percentile(self, q: float) -> int:
        """Nearest-rank percentile of the samples (q in [0, 1]).

        Nearest-rank: the smallest sample such that at least ``q * n``
        samples are at or below it, i.e. rank ``ceil(q * n)`` (1-based).
        The previous ``int(q * n)`` truncation was off by one rank --
        for q=0.99, n=100 it returned the maximum sample (rank 100)
        instead of rank 99.
        """
        rank = math.ceil(q * len(self.samples))
        index = min(len(self.samples) - 1, max(0, rank - 1))
        return self.samples[index]

    @property
    def p50(self) -> int:
        return self.percentile(0.50)

    @property
    def p99(self) -> int:
        return self.percentile(0.99)

    @property
    def p100(self) -> int:
        return self.percentile(1.0)

    @property
    def mean(self) -> float:
        return statistics.fmean(self.samples)

    @property
    def minimum(self) -> int:
        return self.samples[0]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"LatencyStats(p50={self.p50}ns, p99={self.p99}ns, "
            f"mean={self.mean:.0f}ns, n={len(self.samples)})"
        )


class LatencyHarness:
    """JMH-style steady-state latency measurement.

    Example::

        harness = LatencyHarness(warmup=100, iterations=1000)
        stats = harness.measure(lambda: store.query_time(0, 1000, 0))
    """

    def __init__(self, warmup: int = 50, iterations: int = 500) -> None:
        if warmup < 0 or iterations <= 0:
            raise ValueError("warmup must be >= 0 and iterations > 0")
        self.warmup = warmup
        self.iterations = iterations

    def measure(self, operation: Callable[[], Any]) -> LatencyStats:
        """Warm up, then time ``iterations`` steady-state invocations."""
        for _ in range(self.warmup):
            operation()
        samples: List[int] = []
        clock = time.perf_counter_ns
        for _ in range(self.iterations):
            begin = clock()
            operation()
            samples.append(clock() - begin)
        return LatencyStats(samples)

    def compare(self, operations: Dict[str, Callable[[], Any]]) -> Dict[str, LatencyStats]:
        """Measure several labelled operations with identical settings."""
        return {name: self.measure(op) for name, op in operations.items()}
