"""Memory accounting: deep object sizing and the Table 1 cost models.

The paper measures memory with Nashorn's ``ObjectSizeCalculator``; the
Python equivalent here is :func:`deep_sizeof`, a recursive
``sys.getsizeof`` walk with cycle detection and ``__slots__`` support.

:func:`memory_model` evaluates the analytical formulas of Table 1 so
the benchmarks can compare measured footprints against the paper's
models (same growth shapes, Python constants).
"""

from __future__ import annotations

import sys
from typing import Any, Dict, Set

__all__ = ["deep_sizeof", "memory_model", "TABLE1_ROWS"]

_ATOMIC = (type(None), bool, int, float, complex, str, bytes, bytearray, range)


def deep_sizeof(obj: Any, _seen: Set[int] | None = None) -> int:
    """Deep retained size of ``obj`` in bytes.

    Follows containers, object ``__dict__``/``__slots__`` attributes,
    and shared references exactly once (like a retained-heap measure).
    Atomic immutables are counted per reference site visit once.
    """
    seen = _seen if _seen is not None else set()
    identity = id(obj)
    if identity in seen:
        return 0
    seen.add(identity)
    size = sys.getsizeof(obj)
    if isinstance(obj, _ATOMIC):
        return size
    if isinstance(obj, dict):
        for key, value in obj.items():
            size += deep_sizeof(key, seen)
            size += deep_sizeof(value, seen)
        return size
    if isinstance(obj, (list, tuple, set, frozenset)):
        for item in obj:
            size += deep_sizeof(item, seen)
        return size
    attributes = getattr(obj, "__dict__", None)
    if attributes is not None:
        size += deep_sizeof(attributes, seen)
    slots = getattr(type(obj), "__slots__", None)
    if slots is not None:
        for name in slots:
            try:
                size += deep_sizeof(getattr(obj, name), seen)
            except AttributeError:
                continue
    return size


#: The memory-model identifiers of Table 1 (row number -> technique).
TABLE1_ROWS: Dict[int, str] = {
    1: "tuple buffer",
    2: "aggregate tree",
    3: "aggregate buckets",
    4: "tuple buckets",
    5: "lazy slicing",
    6: "eager slicing",
    7: "lazy slicing on tuples",
    8: "eager slicing on tuples",
}


def memory_model(
    row: int,
    *,
    num_tuples: int,
    num_slices: int,
    num_windows: int,
    size_tuple: int = 64,
    size_aggregate: int = 32,
    size_bucket_overhead: int = 96,
    avg_tuples_per_window: float | None = None,
) -> float:
    """Evaluate the Table 1 memory-usage model for one technique.

    Parameters mirror the symbols of the table: ``num_tuples`` (|▲|),
    ``num_slices`` (|◖|), ``num_windows`` (|win|) in the allowed
    lateness, and the per-object sizes.  Row 4 additionally needs the
    average number of tuples per window (defaults to
    ``num_tuples / num_windows``).
    """
    if avg_tuples_per_window is None:
        avg_tuples_per_window = num_tuples / num_windows if num_windows else 0.0
    if row == 1:  # tuple buffer: |▲|·size(▲)
        return num_tuples * size_tuple
    if row == 2:  # aggregate tree: |▲|·size(▲) + (|▲|-1)·size(●)
        return num_tuples * size_tuple + max(num_tuples - 1, 0) * size_aggregate
    if row == 3:  # aggregate buckets: |win|·size(●) + |win|·size(bucket)
        return num_windows * (size_aggregate + size_bucket_overhead)
    if row == 4:  # tuple buckets: |win|·[avg(▲/win)·size(▲) + size(bucket)]
        return num_windows * (avg_tuples_per_window * size_tuple + size_bucket_overhead)
    if row == 5:  # lazy slicing: |◖|·size(◖)
        return num_slices * size_aggregate
    if row == 6:  # eager slicing: |◖|·size(◖) + (|◖|-1)·size(●)
        return num_slices * size_aggregate + max(num_slices - 1, 0) * size_aggregate
    if row == 7:  # lazy slicing on tuples: |▲|·size(▲) + |◖|·size(●)
        return num_tuples * size_tuple + num_slices * size_aggregate
    if row == 8:  # eager slicing on tuples
        return (
            num_tuples * size_tuple
            + num_slices * size_aggregate
            + max(num_slices - 1, 0) * size_aggregate
        )
    raise ValueError(f"unknown Table 1 row: {row}")
