"""A minimal tuple-at-a-time dataflow pipeline.

The paper's techniques are implemented on Apache Flink; this module is
the substrate substitute: a source feeds stream elements one at a time
through a chain of operators into sinks.  It is intentionally small --
the experiments measure the window operator, and the pipeline only has
to route elements and results the way a Flink task chain would.
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional

from ..core.operator_base import WindowOperator
from ..core.types import Record, StreamElement, WindowResult

__all__ = ["MapOperator", "FilterOperator", "Pipeline", "CollectSink", "CountingSink"]


class MapOperator:
    """Stateless per-record transformation (pass-through for non-records)."""

    def __init__(self, fn: Callable[[Record], Record]) -> None:
        self._fn = fn

    def apply(self, element: StreamElement) -> StreamElement:
        if isinstance(element, Record):
            return self._fn(element)
        return element


class FilterOperator:
    """Drop records failing a predicate (non-records always pass)."""

    def __init__(self, predicate: Callable[[Record], bool]) -> None:
        self._predicate = predicate

    def apply(self, element: StreamElement) -> Optional[StreamElement]:
        if isinstance(element, Record) and not self._predicate(element):
            return None
        return element


class CollectSink:
    """Collects every window result (tests and examples)."""

    def __init__(self) -> None:
        self.results: List[WindowResult] = []

    def emit(self, result: WindowResult) -> None:
        self.results.append(result)

    def __len__(self) -> int:
        return len(self.results)


class CountingSink:
    """Counts results without retaining them (throughput runs)."""

    def __init__(self) -> None:
        self.count = 0

    def emit(self, result: WindowResult) -> None:
        self.count += 1


class Pipeline:
    """source → [map/filter]* → window operator → sink.

    ``batch_size`` controls ingestion into the window operator: with the
    default of 1 every element is processed tuple-at-a-time (the
    original semantics); larger values buffer records and hand them to
    :meth:`WindowOperator.process_batch` in one call.  Watermarks and
    punctuations flush the buffer immediately, so emission timing and
    window results are identical on both paths.

    Example::

        pipeline = Pipeline(window_operator, sink, batch_size=64)
        pipeline.add_stage(MapOperator(lambda r: Record(r.ts, r.value * 2)))
        pipeline.run(source_elements)
    """

    def __init__(
        self, window_operator: WindowOperator, sink, *, batch_size: int = 1
    ) -> None:
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self.window_operator = window_operator
        self.sink = sink
        self.batch_size = batch_size
        self._stages: List = []
        self._batch: List[StreamElement] = []

    def add_stage(self, stage) -> "Pipeline":
        """Insert a map/filter stage upstream of the window operator."""
        self._stages.append(stage)
        return self

    def push(self, element: StreamElement) -> None:
        """Route one element through the chain."""
        current: Optional[StreamElement] = element
        for stage in self._stages:
            current = stage.apply(current)
            if current is None:
                return
        if self.batch_size <= 1:
            for result in self.window_operator.process(current):
                self.sink.emit(result)
            return
        self._batch.append(current)
        # Non-records (watermarks, punctuations) flush so emission
        # happens exactly when the tuple-at-a-time path would emit.
        if len(self._batch) >= self.batch_size or not isinstance(current, Record):
            self.flush()

    def flush(self) -> None:
        """Drain the ingestion buffer into the window operator.

        The buffer is cleared only after ``process_batch`` returns: if
        the operator raises mid-batch, the buffered elements survive so
        a supervisor can restore the operator and retry without losing
        the in-flight batch.
        """
        if not self._batch:
            return
        results = self.window_operator.process_batch(self._batch)
        self._batch = []
        for result in results:
            self.sink.emit(result)

    def run(self, elements: Iterable[StreamElement]) -> None:
        """Drain a whole stream through the pipeline."""
        push = self.push
        for element in elements:
            push(element)
        self.flush()

    def results(self) -> List[WindowResult]:
        """The sink's collected results (CollectSink only)."""
        if isinstance(self.sink, CollectSink):
            return self.sink.results
        raise TypeError("results() requires a CollectSink")
