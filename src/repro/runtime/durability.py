"""Durable checkpoint storage and poison-record quarantine.

Every checkpoint the supervised and sharded pipelines take used to live
only in supervisor memory: a process crash lost all recovery state, a
torn write or bit flip would have corrupted it silently, and a single
record whose UDF raises deterministically ("poison") killed the whole
run.  This module is the durability layer that closes those three gaps:

* :class:`CheckpointStore` -- the storage interface.  A store keeps the
  last ``keep`` checkpoint *generations* and hands back the newest one
  that still passes integrity checks, so a corrupt generation degrades
  to a longer replay instead of a dead pipeline.
* :class:`InMemoryStore` -- the previous behaviour (checkpoints in
  supervisor memory), now CRC-guarded and multi-generation.
* :class:`DiskCheckpointStore` -- crash-durable checkpoints.  Each
  generation is one CRC32-framed, version-headered file written
  atomically (temp file -> flush -> fsync -> rename -> fsync dir), plus
  a manifest and garbage collection of generations beyond ``keep``.
  Torn writes, truncation, and bit flips are detected on load
  (:class:`CheckpointCorruptError`) and skipped generation-by-generation
  until a good one is found.
* :class:`DeadLetterQueue` -- bounded-retry quarantine for poison
  records.  The supervisor retries a failing record a few times
  (transient faults heal), then isolates the culprit, quarantines it
  with its cause, cursor, and attempt count, and continues the run.

Tracing counters (attach a :class:`~repro.core.tracing.Tracer` via the
``tracer`` attribute): ``durability.saves`` / ``durability.bytes_written``
/ ``durability.loads`` / ``durability.corrupt_generations`` /
``durability.fallbacks`` / ``durability.gc_collected`` and
``dlq.retries`` / ``dlq.quarantined``.  See docs/fault_tolerance.md.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from typing import Callable, Dict, List, Optional

from ..core.tracing import Tracer
from ..core.types import Record
from .checkpoint import CheckpointError

__all__ = [
    "STORE_MAGIC",
    "STORE_FORMAT_VERSION",
    "CheckpointCorruptError",
    "DeadLetterOverflow",
    "StoredCheckpoint",
    "CheckpointStore",
    "InMemoryStore",
    "DiskCheckpointStore",
    "PoisonRecord",
    "DeadLetterQueue",
]

#: Leading bytes of every durable checkpoint frame ("RSLC on Disk").
STORE_MAGIC = b"RSLD"
#: Current frame layout, see :meth:`DiskCheckpointStore.save`.
STORE_FORMAT_VERSION = 1

#: magic + u16 version + u32 crc32 of everything after this header.
_FRAME_HEADER = struct.Struct(">4sHI")
#: generation, cursor, records_processed, meta length, payload length.
_FRAME_BODY = struct.Struct(">QQQII")


class CheckpointCorruptError(CheckpointError):
    """A stored checkpoint failed its integrity check (torn write, bit
    flip, truncation, or a frame this build cannot parse)."""


class DeadLetterOverflow(RuntimeError):
    """The dead-letter queue's capacity is exhausted; the failure that
    triggered the quarantine escalates to the normal restart path."""


class StoredCheckpoint:
    """One retained generation: the blob plus its recovery coordinates."""

    __slots__ = ("generation", "blob", "cursor", "records_processed", "meta")

    def __init__(
        self,
        generation: int,
        blob: bytes,
        cursor: int,
        records_processed: int,
        meta: Optional[dict] = None,
    ) -> None:
        self.generation = generation
        self.blob = blob
        self.cursor = cursor
        self.records_processed = records_processed
        self.meta = meta if meta is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"StoredCheckpoint(gen={self.generation}, cursor={self.cursor}, "
            f"records={self.records_processed}, {len(self.blob)} bytes)"
        )


def _encode_meta(meta: Optional[dict]) -> bytes:
    if not meta:
        return b""
    return json.dumps(meta, sort_keys=True, separators=(",", ":")).encode("utf-8")


def _decode_meta(raw: bytes) -> dict:
    if not raw:
        return {}
    return json.loads(raw.decode("utf-8"))


def _encode_frame(checkpoint: StoredCheckpoint) -> bytes:
    """CRC32-framed, version-headered wire form of one generation."""
    meta = _encode_meta(checkpoint.meta)
    body = (
        _FRAME_BODY.pack(
            checkpoint.generation,
            checkpoint.cursor,
            checkpoint.records_processed,
            len(meta),
            len(checkpoint.blob),
        )
        + meta
        + checkpoint.blob
    )
    return _FRAME_HEADER.pack(STORE_MAGIC, STORE_FORMAT_VERSION, zlib.crc32(body)) + body


def _decode_frame(frame: bytes, origin: str) -> StoredCheckpoint:
    """Parse and integrity-check one frame; raises
    :class:`CheckpointCorruptError` on any mismatch."""
    if len(frame) < _FRAME_HEADER.size:
        raise CheckpointCorruptError(f"{origin}: truncated before the frame header")
    magic, version, crc = _FRAME_HEADER.unpack_from(frame)
    if magic != STORE_MAGIC:
        raise CheckpointCorruptError(
            f"{origin}: missing the {STORE_MAGIC!r} frame magic"
        )
    if version != STORE_FORMAT_VERSION:
        raise CheckpointCorruptError(
            f"{origin}: frame format v{version} is not supported by this "
            f"build (expected v{STORE_FORMAT_VERSION})"
        )
    body = frame[_FRAME_HEADER.size :]
    if zlib.crc32(body) != crc:
        raise CheckpointCorruptError(
            f"{origin}: CRC32 mismatch (torn write or bit rot)"
        )
    if len(body) < _FRAME_BODY.size:
        raise CheckpointCorruptError(f"{origin}: truncated frame body")
    generation, cursor, records, meta_len, payload_len = _FRAME_BODY.unpack_from(body)
    expected = _FRAME_BODY.size + meta_len + payload_len
    if len(body) != expected:
        raise CheckpointCorruptError(
            f"{origin}: frame length {len(body)} != declared {expected}"
        )
    meta_raw = body[_FRAME_BODY.size : _FRAME_BODY.size + meta_len]
    blob = body[_FRAME_BODY.size + meta_len :]
    try:
        meta = _decode_meta(meta_raw)
    except ValueError as exc:
        raise CheckpointCorruptError(f"{origin}: unreadable metadata: {exc}") from exc
    return StoredCheckpoint(generation, blob, cursor, records, meta)


class CheckpointStore:
    """Interface for durable, generation-keeping checkpoint storage.

    A store retains the ``keep`` newest generations.  ``save`` returns
    the new generation number; ``load_latest`` returns the newest
    generation that passes integrity checks -- silently falling back
    (and counting ``durability.fallbacks``) past corrupt ones -- or
    ``None`` when nothing loadable is retained.

    ``corrupt`` and ``frame_size`` exist for the chaos suites: they let
    :class:`~repro.runtime.faults.FaultyStore` model torn writes and bit
    flips against any store implementation.
    """

    #: Optional tracer; assign one to receive ``durability.*`` counters.
    tracer: Optional[Tracer] = None

    def save(
        self,
        blob: bytes,
        *,
        cursor: int,
        records_processed: int,
        meta: Optional[dict] = None,
    ) -> int:
        raise NotImplementedError

    def load(self, generation: int) -> StoredCheckpoint:
        """Load one generation; :class:`CheckpointCorruptError` if it
        fails integrity checks, :class:`KeyError` if not retained."""
        raise NotImplementedError

    def generations(self) -> List[int]:
        """Retained generation numbers, oldest first."""
        raise NotImplementedError

    def corrupt(
        self,
        generation: int,
        *,
        truncate_to: Optional[int] = None,
        flip_bit: Optional[int] = None,
    ) -> None:
        """Damage a stored generation in place (chaos/test hook)."""
        raise NotImplementedError

    def frame_size(self, generation: int) -> int:
        """Stored size in bytes of one generation's frame."""
        raise NotImplementedError

    # ------------------------------------------------------------------
    # shared behaviour

    def _count(self, name: str, n: int = 1) -> None:
        if self.tracer is not None:
            self.tracer.count(name, n)

    def load_latest(
        self, *, min_generation: Optional[int] = None
    ) -> Optional[StoredCheckpoint]:
        """Newest generation that passes integrity checks.

        Falls back generation-by-generation past corrupt ones, counting
        each skip.  ``min_generation`` bounds the fallback (a supervisor
        uses it so a fresh run never restores a previous run's state).
        Returns ``None`` when no loadable generation remains.
        """
        candidates = [
            generation
            for generation in reversed(self.generations())
            if min_generation is None or generation >= min_generation
        ]
        for generation in candidates:
            try:
                checkpoint = self.load(generation)
            except CheckpointCorruptError:
                self._count("durability.corrupt_generations")
                self._count("durability.fallbacks")
                continue
            return checkpoint
        return None

    def oldest_cursor(self) -> Optional[int]:
        """Cursor of the oldest retained generation (corrupt or not).

        Supervisors trim their replay bookkeeping to this horizon: any
        fallback restores at or after it.  ``None`` when empty.
        """
        raise NotImplementedError


class InMemoryStore(CheckpointStore):
    """Checkpoints in supervisor memory (the pre-durability behaviour),
    upgraded to ``keep`` CRC-guarded generations.

    Frames use the same wire format as :class:`DiskCheckpointStore`, so
    the chaos suite's torn-write/bit-flip injection exercises identical
    corruption-detection paths against both stores.
    """

    def __init__(self, *, keep: int = 1, tracer: Optional[Tracer] = None) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.keep = keep
        self.tracer = tracer
        #: generation -> frame bytes (mutable for corrupt()).
        self._frames: Dict[int, bytearray] = {}
        #: generation -> cursor of the frame as saved (survives corruption).
        self._cursors: Dict[int, int] = {}
        self._next_generation = 0

    def save(self, blob, *, cursor, records_processed, meta=None) -> int:
        generation = self._next_generation
        self._next_generation += 1
        frame = _encode_frame(
            StoredCheckpoint(generation, bytes(blob), cursor, records_processed, meta)
        )
        self._frames[generation] = bytearray(frame)
        self._cursors[generation] = cursor
        self._count("durability.saves")
        self._count("durability.bytes_written", len(frame))
        while len(self._frames) > self.keep:
            oldest = min(self._frames)
            del self._frames[oldest]
            del self._cursors[oldest]
            self._count("durability.gc_collected")
        return generation

    def load(self, generation: int) -> StoredCheckpoint:
        frame = self._frames[generation]
        checkpoint = _decode_frame(bytes(frame), f"generation {generation}")
        if checkpoint.generation != generation:
            raise CheckpointCorruptError(
                f"generation {generation}: frame claims to be "
                f"generation {checkpoint.generation}"
            )
        self._count("durability.loads")
        return checkpoint

    def generations(self) -> List[int]:
        return sorted(self._frames)

    def oldest_cursor(self) -> Optional[int]:
        if not self._cursors:
            return None
        return self._cursors[min(self._cursors)]

    def corrupt(self, generation, *, truncate_to=None, flip_bit=None) -> None:
        frame = self._frames[generation]
        if truncate_to is not None:
            del frame[truncate_to:]
        if flip_bit is not None:
            frame[flip_bit // 8] ^= 1 << (flip_bit % 8)

    def frame_size(self, generation: int) -> int:
        return len(self._frames[generation])


class DiskCheckpointStore(CheckpointStore):
    """Crash-durable checkpoint storage: one atomically-written,
    CRC32-framed file per generation, a manifest, and GC.

    Layout under ``directory``::

        MANIFEST                     # {"version": 1, "generations": [...]}
        ckpt-00000000000000000042.rsld

    Writes go to ``<name>.tmp`` in the same directory, are flushed and
    ``fsync``-ed, then atomically renamed over the final name; the
    directory entry is fsync-ed as well (where the platform allows), so
    a crash at any point leaves either the previous state or the
    complete new file -- never a half-visible frame.  A crash *between*
    the temp write and the rename leaves only a ``.tmp`` stray, which
    the next garbage-collection sweep removes.

    Opening an existing directory resumes generation numbering from the
    retained files, so checkpoints survive the process -- a new
    supervisor can restore work a dead one left behind.
    """

    _SUFFIX = ".rsld"

    def __init__(
        self,
        directory,
        *,
        keep: int = 3,
        fsync: bool = True,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = os.fspath(directory)
        self.keep = keep
        self.fsync = fsync
        self.tracer = tracer
        os.makedirs(self.directory, exist_ok=True)
        #: generation -> cursor, for retained frames (loaded lazily from
        #: headers; kept current by save()).
        self._cursors: Dict[int, int] = {}
        retained = self._scan()
        self._next_generation = (max(retained) + 1) if retained else 0

    # -- paths ---------------------------------------------------------

    def _path(self, generation: int) -> str:
        return os.path.join(self.directory, f"ckpt-{generation:020d}{self._SUFFIX}")

    def _manifest_path(self) -> str:
        return os.path.join(self.directory, "MANIFEST")

    def _scan(self) -> List[int]:
        """Generation numbers present on disk (the ground truth the
        manifest is a cache of), oldest first."""
        found = []
        for name in os.listdir(self.directory):
            if name.startswith("ckpt-") and name.endswith(self._SUFFIX):
                try:
                    found.append(int(name[len("ckpt-") : -len(self._SUFFIX)]))
                except ValueError:
                    continue
        return sorted(found)

    # -- atomic writes -------------------------------------------------

    def _write_atomically(self, path: str, data: bytes) -> None:
        tmp = path + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(data)
            handle.flush()
            if self.fsync:
                os.fsync(handle.fileno())
        os.replace(tmp, path)
        if self.fsync:
            self._fsync_dir()

    def _fsync_dir(self) -> None:
        try:
            fd = os.open(self.directory, os.O_RDONLY)
        except OSError:  # pragma: no cover - platform without dir-open
            return
        try:
            os.fsync(fd)
        except OSError:  # pragma: no cover - platform without dir-fsync
            pass
        finally:
            os.close(fd)

    def _write_manifest(self) -> None:
        manifest = {"version": STORE_FORMAT_VERSION, "generations": self.generations()}
        self._write_atomically(
            self._manifest_path(), json.dumps(manifest).encode("utf-8")
        )

    # -- the store interface -------------------------------------------

    def save(self, blob, *, cursor, records_processed, meta=None) -> int:
        generation = self._next_generation
        self._next_generation += 1
        frame = _encode_frame(
            StoredCheckpoint(generation, bytes(blob), cursor, records_processed, meta)
        )
        self._write_atomically(self._path(generation), frame)
        self._cursors[generation] = cursor
        self._count("durability.saves")
        self._count("durability.bytes_written", len(frame))
        self._collect_garbage()
        self._write_manifest()
        return generation

    def _collect_garbage(self) -> None:
        """Drop generations beyond ``keep`` and stray temp files."""
        retained = self._scan()
        for generation in retained[: -self.keep]:
            try:
                os.remove(self._path(generation))
                self._count("durability.gc_collected")
            except OSError:  # pragma: no cover - already gone
                pass
            self._cursors.pop(generation, None)
        for name in os.listdir(self.directory):
            if name.endswith(".tmp"):
                try:
                    os.remove(os.path.join(self.directory, name))
                except OSError:  # pragma: no cover - already gone
                    pass

    def load(self, generation: int) -> StoredCheckpoint:
        path = self._path(generation)
        try:
            with open(path, "rb") as handle:
                frame = handle.read()
        except FileNotFoundError:
            raise KeyError(generation) from None
        checkpoint = _decode_frame(frame, os.path.basename(path))
        if checkpoint.generation != generation:
            raise CheckpointCorruptError(
                f"{os.path.basename(path)}: frame claims to be "
                f"generation {checkpoint.generation}"
            )
        self._count("durability.loads")
        return checkpoint

    def generations(self) -> List[int]:
        return self._scan()

    def oldest_cursor(self) -> Optional[int]:
        retained = self._scan()
        if not retained:
            return None
        oldest = retained[0]
        if oldest not in self._cursors:
            # Opened over an existing directory: read the cursor from
            # the frame header (tolerating a corrupt oldest generation
            # by conservatively reporting its replay horizon unknown).
            try:
                self._cursors[oldest] = self.load(oldest).cursor
            except CheckpointCorruptError:
                return None
        return self._cursors[oldest]

    def corrupt(self, generation, *, truncate_to=None, flip_bit=None) -> None:
        path = self._path(generation)
        if truncate_to is not None:
            with open(path, "r+b") as handle:
                handle.truncate(truncate_to)
        if flip_bit is not None:
            with open(path, "r+b") as handle:
                handle.seek(flip_bit // 8)
                byte = handle.read(1)
                handle.seek(flip_bit // 8)
                handle.write(bytes([byte[0] ^ (1 << (flip_bit % 8))]))

    def frame_size(self, generation: int) -> int:
        return os.path.getsize(self._path(generation))


# ----------------------------------------------------------------------
# poison-record quarantine


class PoisonRecord:
    """One quarantined record: what failed, where, how often, and why."""

    __slots__ = ("record", "cursor", "attempts", "cause")

    def __init__(
        self, record: Record, cursor: int, attempts: int, cause: BaseException
    ) -> None:
        self.record = record
        self.cursor = cursor
        self.attempts = attempts
        self.cause = cause

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"PoisonRecord(cursor={self.cursor}, attempts={self.attempts}, "
            f"cause={type(self.cause).__name__}: {self.cause}, "
            f"record={self.record!r})"
        )


class DeadLetterQueue:
    """Bounded-retry quarantine for records whose processing raises.

    A supervisor with a DLQ attached retries a failing batch up to
    ``max_retries`` times (each retry is a checkpoint restore + replay,
    so transient faults heal); past the budget it isolates the culprit
    record, hands it here, and continues the run without it.

    ``capacity`` bounds the queue; when a quarantine would exceed it,
    :class:`DeadLetterOverflow` is raised and the failure escalates to
    the supervisor's normal restart budget (a stream where *everything*
    is poison should still kill the pipeline).  ``on_poison_record``
    (optional) observes each new :class:`PoisonRecord` exactly once --
    quarantine decisions are replayed from the supervisor's log after a
    crash, never re-taken, so the hook never fires twice for one record.
    """

    def __init__(
        self,
        *,
        max_retries: int = 2,
        capacity: Optional[int] = None,
        on_poison_record: Optional[Callable[[PoisonRecord], None]] = None,
        tracer: Optional[Tracer] = None,
    ) -> None:
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if capacity is not None and capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.max_retries = max_retries
        self.capacity = capacity
        self.on_poison_record = on_poison_record
        self.tracer = tracer
        self.entries: List[PoisonRecord] = []
        self.retries = 0

    def __len__(self) -> int:
        return len(self.entries)

    def record_retry(self) -> None:
        self.retries += 1
        if self.tracer is not None:
            self.tracer.count("dlq.retries")

    def quarantine(
        self, record: Record, *, cursor: int, attempts: int, cause: BaseException
    ) -> PoisonRecord:
        """Admit one poison record; raises :class:`DeadLetterOverflow`
        when the queue is full."""
        if self.capacity is not None and len(self.entries) >= self.capacity:
            raise DeadLetterOverflow(
                f"dead-letter queue full ({self.capacity} records); "
                f"cannot quarantine record at cursor {cursor}"
            )
        entry = PoisonRecord(record, cursor, attempts, cause)
        self.entries.append(entry)
        if self.tracer is not None:
            self.tracer.count("dlq.quarantined")
        if self.on_poison_record is not None:
            self.on_poison_record(entry)
        return entry

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"DeadLetterQueue(quarantined={len(self.entries)}, "
            f"retries={self.retries}, max_retries={self.max_retries})"
        )
