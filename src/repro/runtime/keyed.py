"""Keyed window aggregation: one operator instance per record key.

Key partitioning is the paper's parallelization unit (Section 5.3);
within one task, systems like Flink keep independent window state per
key.  :class:`KeyedWindowOperator` reproduces that: records route to a
per-key operator built by a factory, watermarks and punctuations are
broadcast to every key, and emitted results are tagged with their key.

The wrapper is itself a :class:`~repro.core.operator_base.WindowOperator`,
so keyed aggregation composes with the pipeline, metrics, and the
process-parallel executor unchanged.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, List, Sequence

from ..core.operator_base import WindowOperator
from ..core.types import Punctuation, Record, StreamElement, Watermark, WindowResult

__all__ = ["KeyedWindowOperator"]


class KeyedWindowOperator(WindowOperator):
    """Route records to per-key operator instances (lazy creation)."""

    def __init__(self, operator_factory: Callable[[], WindowOperator]) -> None:
        super().__init__()
        self._factory = operator_factory
        self._by_key: Dict[Any, WindowOperator] = {}

    # ------------------------------------------------------------------

    def operator_for(self, key: Any) -> WindowOperator:
        """The per-key operator, created on first use."""
        operator = self._by_key.get(key)
        if operator is None:
            operator = self._factory()
            if self._tracer is not None:
                operator.enable_tracing(self._tracer)
            self._by_key[key] = operator
        return operator

    def _on_tracing_changed(self) -> None:
        # All per-key operators share the wrapper's counter sink.
        for operator in self._by_key.values():
            if self._tracer is None:
                operator.disable_tracing()
            else:
                operator.enable_tracing(self._tracer)

    @property
    def keys(self) -> List[Any]:
        """Keys with materialized state."""
        return list(self._by_key)

    # ------------------------------------------------------------------

    def _tag(self, results: List[WindowResult], key: Any) -> List[WindowResult]:
        for result in results:
            result.key = key
        return results

    def process_record(self, record: Record) -> List[WindowResult]:
        key = record.key
        operator = self.operator_for(key)
        return self._tag(operator.process_record(record), key)

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        results: List[WindowResult] = []
        for key, operator in self._by_key.items():
            results.extend(self._tag(operator.process_watermark(watermark), key))
        return results

    def process_punctuation(self, punctuation: Punctuation) -> List[WindowResult]:
        results: List[WindowResult] = []
        for key, operator in self._by_key.items():
            results.extend(self._tag(operator.process_punctuation(punctuation), key))
        return results

    def process_batch(self, elements: Sequence[StreamElement]) -> List[WindowResult]:
        """Batched ingestion that keeps the per-key fast path.

        Consecutive records with the same key are handed to that key's
        operator as one sub-batch, so its own :meth:`process_batch`
        (the run-based fast path) amortizes slice-edge lookups.  Runs
        never span watermarks, punctuations, or a key change, so the
        per-key element order -- and therefore every emission -- is
        identical to the tuple-at-a-time path.
        """
        results: List[WindowResult] = []
        n = len(elements)
        i = 0
        while i < n:
            element = elements[i]
            if not isinstance(element, Record):
                results.extend(self.process(element))
                i += 1
                continue
            key = element.key
            j = i + 1
            while j < n:
                nxt = elements[j]
                if not isinstance(nxt, Record) or nxt.key != key:
                    break
                j += 1
            operator = self.operator_for(key)
            if j - i == 1:
                results.extend(self._tag(operator.process_record(element), key))
            else:
                results.extend(self._tag(operator.process_batch(elements[i:j]), key))
            i = j
        return results

    def flush(self) -> List[WindowResult]:
        """Flush every key's operator, tagging results as usual."""
        results: List[WindowResult] = []
        for key, operator in self._by_key.items():
            results.extend(self._tag(operator.flush(), key))
        return results

    # ------------------------------------------------------------------

    def state_objects(self) -> list:
        state: list = []
        for operator in self._by_key.values():
            state.extend(operator.state_objects())
        return state

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"KeyedWindowOperator(keys={len(self._by_key)})"
