"""Long-lived sharded streaming execution (Section 5.3 at runtime).

:func:`~repro.runtime.partition.run_parallel` is a one-shot benchmark
backend: it pre-partitions a finite list, forks workers, and collects
counts.  This module is the *streaming* counterpart the ROADMAP's
"millions of users" north star needs: a :class:`ShardedPipeline` keeps N
worker processes alive for the whole stream, feeds them record batches
through bounded queues, and merges their emissions back into one
deterministic output stream.

Execution model
---------------
* **Routing.**  Every record routes by
  ``stable_hash(record.key) % parallelism`` -- the same canonical hash
  the checkpoint/restore path uses, so a shard always owns the same keys
  across runs, restarts, and ``PYTHONHASHSEED`` values.  (``None`` is
  hashed like any other key: streaming shards need sticky routing, so
  the round-robin spread :func:`hash_partition` applies to keyless
  records does not apply here.)  Each worker wraps the per-key operator
  factory in its own :class:`~repro.runtime.keyed.KeyedWindowOperator`.
* **Batched handoff.**  Records accumulate into per-shard batches
  (``batch_size``) that ride the queue as one message and enter the
  worker through ``process_batch`` -- the PR-1 batched ingestion fast
  path -- so queue traffic and per-record dispatch are both amortized.
* **Backpressure.**  Feed queues are bounded (``queue_capacity``
  batches).  When a shard falls behind, the coordinator *blocks* on that
  shard's queue (counting ``shard.queue_full_waits``) while continuing
  to drain worker output, so a slow shard throttles ingestion instead of
  growing an unbounded buffer.
* **Watermark alignment.**  Watermarks and punctuations are broadcast
  to every shard and delimit *epochs*.  The coordinator releases an
  epoch's results only once every shard has acknowledged the epoch's
  mark, concatenates the per-shard emissions (shard order, per-shard
  arrival order), and stable-sorts them by
  ``(end, start, query_id, canonical key)``.  Records of one key never
  change shard, so the stable sort reproduces per-key emission order --
  the merged stream is identical to a single-process
  :class:`~repro.runtime.keyed.KeyedWindowOperator` run aligned the same
  way (see :func:`run_keyed_reference`).
* **Recovery.**  Workers checkpoint their keyed operator every
  ``checkpoint_every`` records (RSLC snapshots, at batch boundaries) and
  ship the blob to the coordinator, which saves it into that shard's
  :class:`~repro.runtime.durability.CheckpointStore` (``store_factory``;
  default an in-memory store keeping one generation).  When a shard
  crashes -- an injected fault from :mod:`repro.runtime.faults`, a real
  exception, or a hard process death -- only that shard restarts: the
  coordinator restores the newest *loadable* generation from the store
  (corrupt generations -- torn writes, bit flips -- are detected by
  their CRC frame and skipped, falling back generation-by-generation)
  and replays the feed items sent since that generation's position.
  With a :class:`~repro.runtime.durability.DiskCheckpointStore` the
  restore point survives even a hard-killed coordinator-side cache: the
  blob is re-read from disk.  Results the sink already observed are
  matched one-for-one against the replay
  (:class:`~repro.runtime.recovery.RecoveryError` on divergence) and
  suppressed, so every window result is delivered exactly once, crash
  or no crash -- the :class:`SupervisedPipeline` contract, per shard.
  The coordinator keeps each shard's replay feed and delivered-results
  log back to the *oldest retained* generation, so exactly-once holds
  no matter how far the fallback reaches.

Tracing counters (coordinator tracer): ``shard.batches``,
``shard.records`` (worker-side, folded in; replayed work counts again),
``shard.queue_full_waits``, ``shard.restarts``,
``shard.deduped_results``, plus the stores' ``durability.*`` family
(saves, loads, corrupt_generations, fallbacks, gc_collected).  See
docs/parallelism.md.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import pickle
import queue as queue_module
import time
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterable, List, Optional, Tuple

from ..core.operator_base import WindowOperator
from ..core.tracing import Tracer
from ..core.types import Punctuation, Record, StreamElement, Watermark, WindowResult
from .checkpoint import restore, snapshot
from .durability import CheckpointStore, InMemoryStore, StoredCheckpoint
from .faults import FaultInjectingOperator, FaultPlan
from .keyed import KeyedWindowOperator
from .partition import _canonical_bytes, stable_hash
from .recovery import PipelineFailed, RecoveryError, RestartPolicy

__all__ = ["ShardedPipeline", "run_keyed_reference", "alignment_key"]


def alignment_key(result: WindowResult) -> Tuple[int, int, int, bytes]:
    """The watermark-aligned merge order within one epoch.

    Used with a *stable* sort: results of the same key for the same
    window (e.g. in-lateness updates) keep their emission order, and the
    canonical key bytes break ties between different keys of the same
    window deterministically.
    """
    return (result.end, result.start, result.query_id, _canonical_bytes(result.key))


def _results_match(expected: WindowResult, result: WindowResult) -> bool:
    # WindowResult.__eq__ ignores the key tag; replay verification
    # must not.
    return expected == result and expected.key == result.key


# ----------------------------------------------------------------------
# worker side


def _shipped_counters(counters: Dict[str, int], tracer: Optional[Tracer]) -> Dict[str, int]:
    """Counters to ship to the coordinator (cumulative per worker life)."""
    out = dict(counters)
    if tracer is not None:
        for name, value in tracer.counters.items():
            out[name] = out.get(name, 0) + value
    return out


def _shard_worker(config: Dict[str, Any], feed, out) -> None:
    """One shard: a keyed operator fed by the coordinator's queue.

    Feed protocol (``seq`` increases per shard; ``eid`` is the epoch):
    ``("batch", seq, eid, [records])``, ``("mark", seq, eid, payload)``
    with payload a Watermark/Punctuation or ``"flush"``/``"barrier"``,
    and ``("stop", seq)``.  Output messages lead with their kind and the
    shard index; per-process queue order is FIFO, so the coordinator
    sees results, checkpoint, epoch-ack, and crash messages in emission
    order.
    """
    shard = config["shard"]
    seq = -1
    operator: Any = None
    try:
        factory = pickle.loads(config["factory"])
        if config["snapshot"] is not None:
            keyed = restore(config["snapshot"])
        else:
            keyed = KeyedWindowOperator(factory)
        tracer: Optional[Tracer] = None
        if config["trace"]:
            # Always a fresh tracer: a restored snapshot carries the
            # pre-crash tracer whose counts the coordinator already
            # folded at crash time.
            tracer = keyed.enable_tracing(Tracer())
        operator: WindowOperator = keyed
        plan: Optional[FaultPlan] = config.get("fault_plan")
        crash_at = config.get("crash_at") or ()
        error_at = config.get("error_at") or ()
        if plan is not None or crash_at or error_at:
            wrapper = FaultInjectingOperator(
                keyed, crash_at=crash_at, error_at=error_at, plan=plan
            )
            # Faults that fired before the crash must not re-fire, and
            # fault positions are absolute record counts: realign the
            # wrapper with the checkpoint the operator restored from.
            wrapper.fired = set(config["fired"])
            wrapper.records_processed = config["records_done"]
            operator = wrapper
        kill_at = config.get("kill_at")
        if config["is_restart"]:
            kill_at = None  # a hard kill, like a real one, fires once
        records_done = config["records_done"]
        since_ckpt = 0
        counters = {"shard.batches": 0, "shard.records": 0}

        while True:
            item = feed.get()
            kind = item[0]
            if kind == "stop":
                out.put(("stats", shard, records_done, _shipped_counters(counters, tracer)))
                return
            if kind == "batch":
                _, seq, eid, elements = item
                if kill_at is not None and records_done + len(elements) >= kill_at:
                    os._exit(1)  # simulated hard death: no goodbye message
                results = operator.process_batch(elements)
                counters["shard.batches"] += 1
                counters["shard.records"] += len(elements)
                records_done += len(elements)
                since_ckpt += len(elements)
                if results:
                    out.put(("results", shard, seq, eid, results))
                if since_ckpt >= config["checkpoint_every"]:
                    # Snapshot the keyed operator only: fault wrappers
                    # are transient environment, not state.
                    blob = snapshot(keyed)
                    out.put(
                        (
                            "ckpt",
                            shard,
                            seq,
                            records_done,
                            blob,
                            _shipped_counters(counters, tracer),
                        )
                    )
                    since_ckpt = 0
            else:  # "mark"
                _, seq, eid, payload = item
                if payload == "flush":
                    results = operator.flush()
                elif payload == "barrier":
                    results = []
                else:
                    results = operator.process(payload)
                if results:
                    out.put(("results", shard, seq, eid, results))
                out.put(("epoch", shard, eid, seq))
    except Exception as exc:
        fired: Tuple[int, ...] = ()
        if isinstance(operator, FaultInjectingOperator):
            fired = tuple(operator.fired)
        out.put(("crash", shard, seq, f"{type(exc).__name__}: {exc}", fired))


# ----------------------------------------------------------------------
# coordinator side


class _ShardState:
    """Coordinator-side bookkeeping for one shard."""

    __slots__ = (
        "index",
        "queue",
        "process",
        "generation",
        "restarts",
        "buffer",
        "next_seq",
        "replay",
        "sent_upto",
        "store",
        "first_generation",
        "ckpt_seq",
        "ckpt_blob",
        "ckpt_records",
        "ckpt_counters",
        "since_ckpt",
        "pending_replay",
        "fired",
        "epoch_done",
        "stopped",
        "crashed",
    )

    def __init__(self, index: int) -> None:
        self.index = index
        self.queue = None
        self.process = None
        self.generation = 0
        self.restarts = 0
        #: Records waiting to fill the next batch for this shard.
        self.buffer: List[Record] = []
        self.next_seq = 0
        #: Feed items since the oldest retained checkpoint generation
        #: (the replay source; a fallback may restore any of them).
        self.replay: List[tuple] = []
        #: How many of ``replay`` have been put on the current queue.
        self.sent_upto = 0
        #: This shard's durable checkpoint store (set per run).
        self.store: Optional[CheckpointStore] = None
        #: First generation this run saved -- the fallback floor; stale
        #: generations a previous run left in a shared store are never
        #: restored.
        self.first_generation: Optional[int] = None
        #: The restore point the current worker life started from
        #: (chosen by ``_restart`` from the store; blob ``None`` means a
        #: fresh operator).
        self.ckpt_seq = -1
        self.ckpt_blob: Optional[bytes] = None
        self.ckpt_records = 0
        self.ckpt_counters: Dict[str, int] = {}
        #: Results delivered downstream since the oldest retained
        #: generation, with the feed seq that produced them.
        self.since_ckpt: List[Tuple[int, WindowResult]] = []
        #: Replayed results still expected to be re-emitted verbatim.
        self.pending_replay: Deque[Tuple[int, WindowResult]] = deque()
        #: Fault positions that already fired (accumulated over crashes).
        self.fired: set = set()
        self.epoch_done = -1
        self.stopped = False
        self.crashed = False


class ShardedPipeline:
    """Streaming key-sharded execution with recovery and aligned merge.

    Parameters
    ----------
    operator_factory:
        Builds one *per-key* window operator; must be picklable (a
        module-level function or :func:`functools.partial` of one).
        Each worker owns a :class:`KeyedWindowOperator` over it.
    parallelism:
        Number of shard worker processes.
    batch_size:
        Records per queue message (the batched-handoff unit).
    queue_capacity:
        Bounded feed-queue depth in batches; the backpressure knob.
    checkpoint_every:
        Per-shard snapshot cadence in records (taken at batch
        boundaries and shipped to the coordinator).
    restart_policy:
        Per-shard restart budget (default: 3 restarts, no backoff).
        With ``jitter`` configured, each shard's backoff draws its own
        deterministic stretch (``delay(..., token=shard_index)``), so
        shards killed by one fault don't restart in lockstep.
    store_factory:
        ``shard_index -> CheckpointStore``; called once per shard per
        run.  Default: :class:`~repro.runtime.durability.InMemoryStore`
        keeping one generation (the classic coordinator-memory
        behavior).  A :class:`~repro.runtime.durability.DiskCheckpointStore`
        per shard makes restore points durable and corruption falls
        back to older generations.
    fault_plans / crash_at / error_at:
        Optional per-shard fault injection (``{shard_index: ...}``),
        applied inside the worker via :class:`FaultInjectingOperator`.
    kill_at:
        Optional ``{shard_index: record_count}`` hard-death points
        (``os._exit`` -- no crash message, exercising liveness-based
        detection).  Fires only on a shard's first life.
    context:
        ``"fork"``/``"spawn"``/``None`` (default: fork when available).
    trace:
        Ship full per-shard operator tracer counters to the coordinator
        (``shard.batches``/``shard.records`` are always counted).

    :meth:`run` is one-shot: each call spawns fresh workers, drains the
    stream, and joins them.  ``pipeline.tracer`` holds the aggregated
    counters of the most recent run.
    """

    def __init__(
        self,
        operator_factory: Callable[[], WindowOperator],
        parallelism: int,
        *,
        batch_size: int = 256,
        queue_capacity: int = 16,
        checkpoint_every: int = 10_000,
        restart_policy: Optional[RestartPolicy] = None,
        store_factory: Optional[Callable[[int], CheckpointStore]] = None,
        fault_plans: Optional[Dict[int, FaultPlan]] = None,
        crash_at: Optional[Dict[int, Iterable[int]]] = None,
        error_at: Optional[Dict[int, Iterable[int]]] = None,
        kill_at: Optional[Dict[int, int]] = None,
        context: Optional[str] = None,
        trace: bool = False,
    ) -> None:
        if parallelism <= 0:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        if queue_capacity < 1:
            raise ValueError(f"queue_capacity must be >= 1, got {queue_capacity}")
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        self.parallelism = parallelism
        self.batch_size = batch_size
        self.queue_capacity = queue_capacity
        self.checkpoint_every = checkpoint_every
        self.policy = restart_policy if restart_policy is not None else RestartPolicy()
        self.store_factory = store_factory
        self.fault_plans = dict(fault_plans or {})
        self.crash_at = {k: tuple(v) for k, v in (crash_at or {}).items()}
        self.error_at = {k: tuple(v) for k, v in (error_at or {}).items()}
        self.kill_at = dict(kill_at or {})
        self.trace = trace
        # Fail fast on unpicklable factories, before any process exists.
        self._factory_bytes = pickle.dumps(operator_factory)
        method = context if context is not None else ("fork" if hasattr(os, "fork") else "spawn")
        self._context = mp.get_context(method)
        self.tracer = Tracer()

        # Per-run state (populated by run()).
        self._shards: List[_ShardState] = []
        self._out = None
        self._epoch_results: Dict[int, List[List[WindowResult]]] = {}
        self._output: List[WindowResult] = []
        self._next_epoch = 0
        self._last_epoch = -1
        self._failures: List[BaseException] = []
        self._pending_crashes: List[Tuple[_ShardState, BaseException]] = []

    # ------------------------------------------------------------------
    # worker lifecycle

    def _spawn(self, state: _ShardState) -> None:
        index = state.index
        config = {
            "shard": index,
            "factory": self._factory_bytes,
            "snapshot": state.ckpt_blob,
            "fired": tuple(state.fired),
            "records_done": state.ckpt_records,
            "checkpoint_every": self.checkpoint_every,
            "trace": self.trace,
            "is_restart": state.generation > 0,
            "fault_plan": self.fault_plans.get(index),
            "crash_at": self.crash_at.get(index),
            "error_at": self.error_at.get(index),
            "kill_at": self.kill_at.get(index),
        }
        state.queue = self._context.Queue(self.queue_capacity)
        state.process = self._context.Process(
            target=_shard_worker,
            args=(config, state.queue, self._out),
            daemon=True,
            name=f"repro-shard-{index}",
        )
        state.process.start()

    def _load_restore_point(self, state: _ShardState) -> Optional[StoredCheckpoint]:
        """Newest loadable generation from the shard's store (transient
        I/O errors retried under the restart-policy budget; corrupt
        generations skipped by the store's CRC check)."""
        if state.first_generation is None:
            return None  # nothing saved this run: restart from scratch
        attempt = 0
        while True:
            try:
                return state.store.load_latest(min_generation=state.first_generation)
            except OSError as exc:
                self._failures.append(exc)
                if attempt >= self.policy.max_restarts:
                    self._terminate_all()
                    raise PipelineFailed(
                        f"shard {state.index} checkpoint load failed "
                        f"{attempt + 1} times",
                        self._failures,
                    ) from exc
                time.sleep(self.policy.delay(attempt, token=state.index))
                attempt += 1

    def _restart(self, state: _ShardState, cause: BaseException) -> None:
        """Respawn one crashed shard from the newest loadable checkpoint
        generation and replay the feed sent since it."""
        self._failures.append(cause)
        state.restarts += 1
        if state.restarts > self.policy.max_restarts:
            self._terminate_all()
            raise PipelineFailed(
                f"shard {state.index} failed {state.restarts} times "
                f"(max_restarts={self.policy.max_restarts}); giving up",
                self._failures,
            ) from cause
        self.tracer.count("shard.restarts")
        loaded = self._load_restore_point(state)
        if loaded is not None:
            state.ckpt_seq = loaded.cursor
            state.ckpt_blob = loaded.blob
            state.ckpt_records = loaded.records_processed
            state.ckpt_counters = dict((loaded.meta or {}).get("counters", {}))
        else:
            # All generations corrupt (or none saved yet): restart from
            # the beginning of the retained replay window.
            state.ckpt_seq = -1
            state.ckpt_blob = None
            state.ckpt_records = 0
            state.ckpt_counters = {}
        # This life's pre-restore-point work is final; everything after
        # it will be recounted by the replay.
        self._fold_counters(state.ckpt_counters)
        old_queue = state.queue
        if state.process is not None:
            state.process.join(timeout=5.0)
            if state.process.is_alive():  # pragma: no cover - defensive
                state.process.terminate()
                state.process.join(timeout=5.0)
        if old_queue is not None:
            # The dead worker's queue may hold unread items; a fresh
            # queue for the fresh process avoids double delivery.
            old_queue.cancel_join_thread()
            old_queue.close()
        time.sleep(self.policy.delay(state.restarts - 1, token=state.index))
        state.generation += 1
        state.crashed = False
        # Everything delivered after the restore point must be
        # re-emitted verbatim by the replay before anything new is
        # accepted.  Feed items at or before it are durable w.r.t. this
        # restore point and are skipped -- but stay retained (trimmed
        # only by checkpoint GC) in case a later restart falls back to
        # an older generation.
        seq0 = state.ckpt_seq
        state.pending_replay = deque(
            (s, r) for s, r in state.since_ckpt if s > seq0
        )
        skip = 0
        for item in state.replay:
            if item[1] > seq0:
                break
            skip += 1
        state.sent_upto = skip
        self._spawn(state)
        self._pump(state)

    def _handle_dead(self, state: _ShardState) -> None:
        """A worker died without a crash message (hard kill)."""
        self._service(block=False)
        if state.crashed or state.stopped or not state.process or state.process.is_alive():
            return  # a crash message arrived after all, or a false alarm
        state.crashed = True
        self._restart(
            state,
            RuntimeError(
                f"shard {state.index} died without a crash message "
                f"(exitcode={state.process.exitcode})"
            ),
        )

    def _terminate_all(self) -> None:
        for state in self._shards:
            process = state.process
            if process is not None and process.is_alive():
                process.terminate()
        for state in self._shards:
            if state.process is not None:
                state.process.join(timeout=5.0)
            if state.queue is not None:
                state.queue.cancel_join_thread()
                state.queue.close()

    # ------------------------------------------------------------------
    # feeding with backpressure

    def _send(self, state: _ShardState, item: tuple) -> None:
        state.replay.append(item)
        self._pump(state)

    def _pump(self, state: _ShardState) -> None:
        """Push un-sent replay items onto the shard's queue, blocking
        (with service + liveness checks) when the queue is full."""
        while state.sent_upto < len(state.replay):
            item = state.replay[state.sent_upto]
            try:
                state.queue.put_nowait(item)
                state.sent_upto += 1
                continue
            except queue_module.Full:
                pass
            self.tracer.count("shard.queue_full_waits")
            generation = state.generation
            while True:
                self._service(block=False)
                if state.generation != generation:
                    # Restarted mid-wait; the replay re-pump already
                    # covered this item.  Re-read state from the top.
                    break
                if not state.process.is_alive():
                    self._handle_dead(state)
                    break
                try:
                    state.queue.put(item, timeout=0.05)
                    state.sent_upto += 1
                    break
                except queue_module.Full:
                    continue

    # ------------------------------------------------------------------
    # draining worker output

    def _service(self, block: bool, timeout: float = 0.05) -> None:
        """Drain the out-queue; dispatch crashes after the drain."""
        while True:
            try:
                message = self._out.get(timeout=timeout) if block else self._out.get_nowait()
            except queue_module.Empty:
                break
            self._dispatch(message)
            block = False  # at most one blocking wait per call
        while self._pending_crashes:
            state, cause = self._pending_crashes.pop(0)
            self._restart(state, cause)

    def _dispatch(self, message: tuple) -> None:
        kind = message[0]
        state = self._shards[message[1]]
        if kind == "results":
            _, _, seq, eid, results = message
            fresh: List[WindowResult] = []
            for result in results:
                if state.pending_replay:
                    expected_seq, expected = state.pending_replay.popleft()
                    if not _results_match(expected, result):
                        self._terminate_all()
                        raise RecoveryError(
                            f"shard {state.index} replay diverged from the "
                            f"pre-crash run: expected {expected!r}, "
                            f"re-emitted {result!r}"
                        )
                    self.tracer.count("shard.deduped_results")
                else:
                    state.since_ckpt.append((seq, result))
                    fresh.append(result)
            if fresh:
                buffers = self._epoch_results.setdefault(
                    eid, [[] for _ in range(self.parallelism)]
                )
                buffers[state.index].extend(fresh)
        elif kind == "epoch":
            _, _, eid, _seq = message
            if eid > state.epoch_done:
                state.epoch_done = eid
                self._release_epochs()
        elif kind == "ckpt":
            _, _, seq, records, blob, counters = message
            try:
                generation = state.store.save(
                    blob,
                    cursor=seq,
                    records_processed=records,
                    meta={"counters": counters},
                )
            except OSError as exc:
                # A failed save is survivable: the previous generation
                # stands, and the replay window simply stays deeper.
                self._failures.append(exc)
                self.tracer.count("shard.ckpt_save_errors")
                return
            if state.first_generation is None:
                state.first_generation = generation
            # The new generation makes everything at/before seq durable,
            # but a corrupt newer generation may force a fallback: keep
            # replay state back to the *oldest retained* generation and
            # only trim what checkpoint GC has aged out.  Every trimmed
            # item was necessarily already sent (the worker processed
            # past it), so sent_upto shrinks by the trim.
            horizon = state.store.oldest_cursor()
            if horizon is None:
                horizon = seq  # oldest frame unreadable: newest rules
            before = len(state.replay)
            state.replay = [it for it in state.replay if it[1] > horizon]
            state.sent_upto -= before - len(state.replay)
            state.since_ckpt = [(s, r) for s, r in state.since_ckpt if s > horizon]
            # Matching of in-flight replayed results is against the
            # worker's actual restore point, which is never newer than
            # this checkpoint: only age-out trimming applies here too.
            state.pending_replay = deque(
                (s, r) for s, r in state.pending_replay if s > horizon
            )
        elif kind == "stats":
            _, _, records, counters = message
            state.stopped = True
            self._fold_counters(counters)
        elif kind == "crash":
            _, _, seq, text, fired = message
            state.crashed = True
            state.fired.update(fired)
            # Counters fold in _restart, once the restore point (and so
            # the boundary between final and replayed work) is known.
            self._pending_crashes.append(
                (
                    state,
                    RuntimeError(f"shard {state.index} crashed at seq {seq}: {text}"),
                )
            )
        else:  # pragma: no cover - protocol guard
            raise AssertionError(f"unknown worker message: {message!r}")

    def _fold_counters(self, counters: Dict[str, int]) -> None:
        for name, value in counters.items():
            self.tracer.count(name, value)

    # ------------------------------------------------------------------
    # watermark-aligned merge

    def _release_epochs(self) -> None:
        while all(state.epoch_done >= self._next_epoch for state in self._shards):
            buffers = self._epoch_results.pop(self._next_epoch, None)
            if buffers is not None:
                merged = [result for shard_results in buffers for result in shard_results]
                merged.sort(key=alignment_key)
                self._output.extend(merged)
            self._next_epoch += 1
            if self._last_epoch >= 0 and self._next_epoch > self._last_epoch:
                break

    # ------------------------------------------------------------------
    # the run loop

    def run(self, elements: Iterable[StreamElement], *, flush: bool = True) -> List[WindowResult]:
        """Process a whole stream across the shards; return the merged,
        watermark-aligned results.

        ``flush=True`` (default) drains windows still open at
        end-of-stream via :meth:`WindowOperator.flush` on every shard;
        ``flush=False`` ends with a result-free alignment barrier
        instead, mirroring a pipeline that stops between watermarks.
        """
        self._shards = [_ShardState(i) for i in range(self.parallelism)]
        self._out = self._context.Queue()
        self._epoch_results = {}
        self._output = []
        self._next_epoch = 0
        self._last_epoch = -1
        self._failures = []
        self._pending_crashes = []
        self.tracer = Tracer()
        for state in self._shards:
            state.store = (
                self.store_factory(state.index)
                if self.store_factory is not None
                else InMemoryStore(keep=1)
            )
            if state.store.tracer is None:
                state.store.tracer = self.tracer
        eid = 0
        try:
            for state in self._shards:
                self._spawn(state)
            for element in elements:
                if isinstance(element, Record):
                    shard = self._shards[stable_hash(element.key) % self.parallelism]
                    shard.buffer.append(element)
                    if len(shard.buffer) >= self.batch_size:
                        self._flush_buffer(shard, eid)
                    self._service(block=False)
                elif isinstance(element, (Watermark, Punctuation)):
                    self._broadcast_mark(element, eid)
                    eid += 1
                else:
                    raise TypeError(f"unsupported stream element: {element!r}")
            self._broadcast_mark("flush" if flush else "barrier", eid)
            self._last_epoch = eid
            for state in self._shards:
                self._send(state, ("stop", state.next_seq))
                state.next_seq += 1
            self._await_completion()
            self._release_epochs()
            for state in self._shards:
                state.process.join(timeout=5.0)
        finally:
            self._terminate_all()
            self._out.cancel_join_thread()
            self._out.close()
        return self._output

    def _flush_buffer(self, state: _ShardState, eid: int) -> None:
        if state.buffer:
            batch, state.buffer = state.buffer, []
            self._send(state, ("batch", state.next_seq, eid, batch))
            state.next_seq += 1

    def _broadcast_mark(self, payload, eid: int) -> None:
        # Marks delimit epochs; partial batches must precede the mark so
        # every shard sees the same prefix of its sub-stream.
        for state in self._shards:
            self._flush_buffer(state, eid)
        for state in self._shards:
            self._send(state, ("mark", state.next_seq, eid, payload))
            state.next_seq += 1

    def _await_completion(self) -> None:
        deadline_checks = 0
        while not all(state.stopped for state in self._shards):
            self._service(block=True, timeout=0.05)
            deadline_checks += 1
            if deadline_checks % 10 == 0:
                for state in self._shards:
                    if not state.stopped and not state.crashed and not state.process.is_alive():
                        self._handle_dead(state)


def run_keyed_reference(
    operator_factory: Callable[[], WindowOperator],
    elements: Iterable[StreamElement],
    *,
    flush: bool = True,
) -> List[WindowResult]:
    """Single-process reference with the sharded pipeline's alignment.

    Runs one :class:`KeyedWindowOperator` over the stream, groups
    results into the same mark-delimited epochs, and stable-sorts each
    epoch by :func:`alignment_key`.  :meth:`ShardedPipeline.run` must
    produce *exactly* this list -- the equivalence the test suite pins.
    """
    operator = KeyedWindowOperator(operator_factory)
    output: List[WindowResult] = []
    epoch: List[WindowResult] = []
    for element in elements:
        results = operator.process(element)
        epoch.extend(results)
        if isinstance(element, (Watermark, Punctuation)):
            epoch.sort(key=alignment_key)
            output.extend(epoch)
            epoch = []
    if flush:
        epoch.extend(operator.flush())
    epoch.sort(key=alignment_key)
    output.extend(epoch)
    return output
