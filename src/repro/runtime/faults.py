"""Deterministic, seeded fault injection for chaos testing.

The paper inherits fault tolerance from Flink; our substrate has to earn
it.  This module supplies the *faults*: reproducible crash schedules
that can be wrapped around any :class:`~repro.core.operator_base.WindowOperator`
or source, so the recovery machinery in :mod:`repro.runtime.recovery`
can be exercised -- and its exactly-once guarantee asserted -- under
operator exceptions, simulated crashes at record and batch boundaries,
transient source hiccups, and watermark stalls.

Everything is driven by explicit positions or a seeded
:class:`FaultPlan`, never by wall-clock randomness: the same seed always
yields the same fault schedule, which is what makes the chaos
equivalence tests ("crash-and-recover emits bit-identical results")
meaningful.

Fire-once semantics: each scheduled fault fires exactly once per wrapper
lifetime.  The wrapper is deliberately *transient* (``transient = True``):
a supervisor snapshots and restores the wrapped inner operator only, so
the fired-fault bookkeeping survives recovery -- a simulated crash, like
a real one, does not deterministically recur on replay.
"""

from __future__ import annotations

import random
from typing import Any, Iterable, List, Sequence, Set

from ..core.operator_base import WindowOperator
from ..core.types import Record, StreamElement, Watermark
from .sources import ReplayableSource

__all__ = [
    "InjectedFault",
    "InjectedCrash",
    "InjectedOperatorError",
    "SourceHiccup",
    "TransientStoreError",
    "FaultPlan",
    "FaultInjectingOperator",
    "FaultySource",
    "FaultyStore",
    "stall_watermarks",
]


class InjectedFault(RuntimeError):
    """Base class of all injected failures."""

    def __init__(self, message: str, position: int) -> None:
        super().__init__(message)
        #: Record (or read-cursor) position the fault fired at.
        self.position = position


class InjectedCrash(InjectedFault):
    """Simulated process crash *before* processing a record."""


class InjectedOperatorError(InjectedFault):
    """Operator exception *after* a record mutated state (a 'bug')."""


class SourceHiccup(InjectedFault):
    """Transient source failure; the same read succeeds when retried."""


class TransientStoreError(OSError):
    """Injected transient I/O failure of a checkpoint store operation.

    Subclasses :class:`OSError` so store users exercise the same retry
    path a real flaky disk or network filesystem would trigger; the
    retried operation succeeds (fire-once, like every injected fault).
    """

    def __init__(self, message: str, operation: int) -> None:
        super().__init__(message)
        #: 0-based index of the store operation the fault fired at.
        self.operation = operation


def _sample_positions(rng: random.Random, horizon: int, count: int) -> tuple:
    """``count`` distinct positions in ``[1, horizon)``, sorted."""
    population = range(1, horizon)
    count = min(count, len(population))
    if count <= 0:
        return ()
    return tuple(sorted(rng.sample(population, count)))


class FaultPlan:
    """A seeded, deterministic schedule of fault positions.

    Parameters
    ----------
    seed:
        RNG seed; equal seeds produce equal schedules.
    horizon:
        Exclusive upper bound for fault positions (record count of the
        stream under test).  Position 0 is never sampled so every run
        makes progress before the first fault.
    crashes, errors, hiccups:
        How many crash points (pre-record), operator-error points
        (post-record), and source hiccup points (read cursor) to draw.
    """

    __slots__ = ("seed", "horizon", "crash_points", "error_points", "hiccup_points")

    def __init__(
        self,
        seed: int,
        horizon: int,
        *,
        crashes: int = 0,
        errors: int = 0,
        hiccups: int = 0,
    ) -> None:
        if horizon < 2 and (crashes or errors or hiccups):
            raise ValueError(f"horizon {horizon} leaves no room for faults")
        self.seed = seed
        self.horizon = horizon
        rng = random.Random(seed)
        self.crash_points = _sample_positions(rng, horizon, crashes)
        self.error_points = _sample_positions(rng, horizon, errors)
        self.hiccup_points = _sample_positions(rng, horizon, hiccups)

    @property
    def total_faults(self) -> int:
        return len(self.crash_points) + len(self.error_points) + len(self.hiccup_points)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultPlan(seed={self.seed}, crashes={self.crash_points}, "
            f"errors={self.error_points}, hiccups={self.hiccup_points})"
        )


class FaultInjectingOperator(WindowOperator):
    """Wrap any window operator with a deterministic crash schedule.

    ``crash_at`` positions fire :class:`InjectedCrash` *before* the
    N-th record is processed (N = records processed so far), simulating
    a crash at a record boundary; when the position falls inside a
    batch, the batch is fed record-at-a-time up to the fault, so the
    inner operator is left with genuinely half-applied batch state --
    exactly what recovery must be able to roll back.  ``error_at``
    positions fire :class:`InjectedOperatorError` *after* record N
    mutated state (an operator bug rather than a clean crash).

    Each fault fires once per wrapper lifetime.  ``transient = True``
    tells supervisors to snapshot/restore :attr:`inner` only, keeping
    the fired set out of checkpoints (see module docstring).
    """

    transient = True

    def __init__(
        self,
        inner: WindowOperator,
        *,
        crash_at: Iterable[int] = (),
        error_at: Iterable[int] = (),
        plan: "FaultPlan | None" = None,
    ) -> None:
        super().__init__()
        self.inner = inner
        if plan is not None:
            crash_at = tuple(crash_at) + plan.crash_points
            error_at = tuple(error_at) + plan.error_points
        self._crash_at: Set[int] = set(crash_at)
        self._error_at: Set[int] = set(error_at)
        self.fired: Set[int] = set()
        self.records_processed = 0

    # ------------------------------------------------------------------
    # query management (delegated)

    def add_query(self, window, aggregation):
        return self.inner.add_query(window, aggregation)

    def remove_query(self, query_id: int) -> None:
        self.inner.remove_query(query_id)

    @property
    def queries(self):  # type: ignore[override]
        return self.inner.queries

    @queries.setter
    def queries(self, value: Any) -> None:
        # WindowOperator.__init__ assigns an empty list; route nothing.
        pass

    # ------------------------------------------------------------------
    # fault schedule

    def _maybe_crash(self) -> None:
        position = self.records_processed
        if position in self._crash_at and position not in self.fired:
            self.fired.add(position)
            raise InjectedCrash(
                f"injected crash before record #{position}", position
            )

    def _maybe_error(self) -> None:
        position = self.records_processed - 1
        if position in self._error_at and ~position not in self.fired:
            # Errors and crashes share one fired set; error positions are
            # stored bit-inverted so both kinds can target one record.
            self.fired.add(~position)
            raise InjectedOperatorError(
                f"injected operator error after record #{position}", position
            )

    def _pending_fault_in(self, lo: int, hi: int) -> bool:
        """Any unfired fault with record position in ``[lo, hi)``?"""
        for position in self._crash_at:
            if lo <= position < hi and position not in self.fired:
                return True
        for position in self._error_at:
            if lo <= position < hi and ~position not in self.fired:
                return True
        return False

    # ------------------------------------------------------------------
    # stream processing

    def process_record(self, record):
        self._maybe_crash()
        results = self.inner.process_record(record)
        self.records_processed += 1
        self._maybe_error()
        return results

    def process_watermark(self, watermark):
        return self.inner.process_watermark(watermark)

    def process_punctuation(self, punctuation):
        return self.inner.process_punctuation(punctuation)

    def flush(self):
        # Faults target record positions; end-of-stream flush passes
        # straight through to the wrapped operator.
        return self.inner.flush()

    def process_batch(self, elements: Sequence[StreamElement]):
        lo = self.records_processed
        hi = lo + sum(1 for e in elements if isinstance(e, Record))
        if not self._pending_fault_in(lo, hi):
            # Fault-free batch: keep the inner operator's fast path.
            results = self.inner.process_batch(elements)
            self.records_processed = hi
            return results
        # A fault lands inside this batch: feed element-at-a-time so the
        # crash interrupts mid-batch with partial state applied.
        results = []
        for element in elements:
            if isinstance(element, Record):
                self._maybe_crash()
                results.extend(self.inner.process_record(element))
                self.records_processed += 1
                self._maybe_error()
            else:
                results.extend(self.inner.process(element))
        return results

    # ------------------------------------------------------------------

    def state_objects(self) -> list:
        return self.inner.state_objects()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultInjectingOperator(crashes={sorted(self._crash_at)}, "
            f"errors={sorted(self._error_at)}, fired={len(self.fired)}, "
            f"inner={self.inner!r})"
        )


class FaultySource(ReplayableSource):
    """A replayable source whose reads hiccup at scheduled cursors.

    A hiccup fires when a read covers a scheduled cursor position, once
    per position: the retried read succeeds, modelling a transient
    source outage (the supervisor retries without restoring state).
    """

    def __init__(
        self,
        elements: Sequence[StreamElement],
        *,
        hiccup_at: Iterable[int] = (),
        plan: "FaultPlan | None" = None,
    ) -> None:
        super().__init__(elements)
        positions = tuple(hiccup_at)
        if plan is not None:
            positions += plan.hiccup_points
        self._pending: Set[int] = set(positions)
        self.hiccups_fired = 0

    def read(self, cursor: int, count: int) -> List[StreamElement]:
        if self._pending:
            end = min(cursor + count, len(self))
            for position in sorted(self._pending):
                if cursor <= position < end:
                    self._pending.discard(position)
                    self.hiccups_fired += 1
                    raise SourceHiccup(
                        f"injected source hiccup at cursor {position}", position
                    )
        return super().read(cursor, count)


class FaultyStore:
    """Checkpoint-store wrapper injecting storage faults deterministically.

    Wraps any :class:`~repro.runtime.durability.CheckpointStore` and
    damages it on schedule, by 0-based *save index* (the N-th ``save``
    call) or *load index* (the N-th ``load_latest`` call):

    * ``torn_write_at`` -- the save completes but the stored frame is
      truncated at a seeded point, as if the process died mid-write
      after the rename was already queued (or the kernel lost the tail
      of the page cache).  Detected by CRC/length checks on load.
    * ``bit_flip_at`` -- one seeded bit of the stored frame flips after
      a successful save (disk rot).  Detected by the CRC on load.
    * ``io_error_saves`` / ``io_error_loads`` -- the operation raises
      :class:`TransientStoreError` once; the retry succeeds.

    Corruption goes through the store's own ``corrupt()`` hook, so the
    same schedule exercises :class:`InMemoryStore` and
    :class:`DiskCheckpointStore` identically.  Everything is seeded:
    equal seeds damage equal byte positions.
    """

    def __init__(
        self,
        inner,
        *,
        torn_write_at: Iterable[int] = (),
        bit_flip_at: Iterable[int] = (),
        io_error_saves: Iterable[int] = (),
        io_error_loads: Iterable[int] = (),
        seed: int = 0,
    ) -> None:
        self.inner = inner
        self._torn_write_at = set(torn_write_at)
        self._bit_flip_at = set(bit_flip_at)
        self._io_error_saves = set(io_error_saves)
        self._io_error_loads = set(io_error_loads)
        self._rng = random.Random(seed)
        self._saves = 0
        self._loads = 0
        self.faults_fired = 0

    @property
    def tracer(self):
        return self.inner.tracer

    @tracer.setter
    def tracer(self, value) -> None:
        self.inner.tracer = value

    def save(self, blob, *, cursor, records_processed, meta=None) -> int:
        index = self._saves
        self._saves += 1
        if index in self._io_error_saves:
            self._io_error_saves.discard(index)
            self.faults_fired += 1
            raise TransientStoreError(
                f"injected transient store error on save #{index}", index
            )
        generation = self.inner.save(
            blob, cursor=cursor, records_processed=records_processed, meta=meta
        )
        size = self.inner.frame_size(generation)
        if index in self._torn_write_at:
            self._torn_write_at.discard(index)
            self.faults_fired += 1
            # Tear somewhere inside the frame: always short enough to
            # lose payload bytes, never a clean empty file.
            self.inner.corrupt(
                generation, truncate_to=self._rng.randrange(1, size)
            )
        if index in self._bit_flip_at:
            self._bit_flip_at.discard(index)
            self.faults_fired += 1
            self.inner.corrupt(generation, flip_bit=self._rng.randrange(size * 8))
        return generation

    def load_latest(self, *, min_generation=None):
        index = self._loads
        self._loads += 1
        if index in self._io_error_loads:
            self._io_error_loads.discard(index)
            self.faults_fired += 1
            raise TransientStoreError(
                f"injected transient store error on load #{index}", index
            )
        return self.inner.load_latest(min_generation=min_generation)

    # Pure delegation for the rest of the store interface.

    def load(self, generation: int):
        return self.inner.load(generation)

    def generations(self):
        return self.inner.generations()

    def oldest_cursor(self):
        return self.inner.oldest_cursor()

    def corrupt(self, generation, **kwargs) -> None:
        self.inner.corrupt(generation, **kwargs)

    def frame_size(self, generation: int) -> int:
        return self.inner.frame_size(generation)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"FaultyStore(saves={self._saves}, loads={self._loads}, "
            f"fired={self.faults_fired}, inner={self.inner!r})"
        )


def stall_watermarks(
    elements: Sequence[StreamElement], *, start: int, length: int
) -> List[StreamElement]:
    """Withhold the watermarks in positions ``[start, start + length)``.

    Models a stalled upstream watermark generator: the affected
    watermarks are removed from the stream and the newest one is
    re-delivered at position ``start + length`` (or at end-of-stream if
    the stall outlives the stream).  Records are never touched, so the
    stalled stream carries the same data, later knowledge.
    """
    if start < 0 or length < 0:
        raise ValueError("start and length must be non-negative")
    out: List[StreamElement] = []
    held: "Watermark | None" = None
    release = start + length
    for index, element in enumerate(elements):
        if held is not None and index >= release:
            out.append(held)
            held = None
        if isinstance(element, Watermark) and start <= index < release:
            if held is None or element.ts > held.ts:
                held = element
            continue
        out.append(element)
    if held is not None:
        out.append(held)
    return out
