"""Replayable stream sources.

Sources turn record collections into streams the pipeline can consume,
with optional rate-limited replay for end-to-end demonstrations (the
benchmarks replay at full speed; examples use paced replay).
"""

from __future__ import annotations

import time
from typing import Callable, Iterable, Iterator, List, Optional, Sequence

from ..core.types import Record, StreamElement

__all__ = [
    "ListSource",
    "GeneratorSource",
    "ReplayableSource",
    "batched",
    "paced_replay",
]


def batched(
    elements: Iterable[StreamElement], size: int
) -> Iterator[List[StreamElement]]:
    """Chunk a stream into lists of at most ``size`` elements.

    Feeds :meth:`WindowOperator.process_batch`; the final chunk may be
    shorter.  Chunking never reorders elements, so batched ingestion
    sees the exact same element sequence as tuple-at-a-time ingestion.
    """
    if size < 1:
        raise ValueError(f"batch size must be >= 1, got {size}")
    chunk: List[StreamElement] = []
    for element in elements:
        chunk.append(element)
        if len(chunk) >= size:
            yield chunk
            chunk = []
    if chunk:
        yield chunk


class ListSource:
    """A pre-materialized, repeatable stream (the benchmark default)."""

    def __init__(self, elements: Sequence[StreamElement]) -> None:
        self._elements = list(elements)

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._elements)

    def __len__(self) -> int:
        return len(self._elements)

    def records(self) -> List[Record]:
        return [e for e in self._elements if isinstance(e, Record)]


class ReplayableSource(ListSource):
    """Cursor-addressable stream view for checkpoint-and-replay.

    A supervisor reads the stream in cursor order via :meth:`read`; after
    a failure it rewinds the cursor to the last checkpoint's position and
    re-reads the tail.  Reads are pure (no consumption state lives in the
    source), so the same source can be replayed any number of times.
    """

    def read(self, cursor: int, count: int) -> List[StreamElement]:
        """Return up to ``count`` elements starting at ``cursor``.

        The final read may be shorter; reading at/after the end returns
        an empty list.
        """
        if cursor < 0:
            raise ValueError(f"cursor must be >= 0, got {cursor}")
        if count < 1:
            raise ValueError(f"read count must be >= 1, got {count}")
        return self._elements[cursor : cursor + count]


class GeneratorSource:
    """A restartable generator-backed source.

    ``factory`` is called on every iteration, so the same source object
    can feed several operators identical streams.
    """

    def __init__(self, factory: Callable[[], Iterable[StreamElement]]) -> None:
        self._factory = factory

    def __iter__(self) -> Iterator[StreamElement]:
        return iter(self._factory())


def paced_replay(
    elements: Iterable[StreamElement],
    *,
    speedup: float = 1.0,
    timestamp_unit_seconds: float = 0.001,
    clock: Optional[Callable[[], float]] = None,
    sleep: Optional[Callable[[float], None]] = None,
) -> Iterator[StreamElement]:
    """Replay a stream honouring event-time spacing (for live demos).

    ``speedup`` scales replay speed (2.0 = twice real time);
    ``timestamp_unit_seconds`` maps timestamp units to seconds (default:
    milliseconds).  Injectable clock/sleep keep this testable.
    """
    if speedup <= 0:
        raise ValueError(f"speedup must be positive, got {speedup}")
    now = clock if clock is not None else time.monotonic
    pause = sleep if sleep is not None else time.sleep
    origin_wall: Optional[float] = None
    origin_ts: Optional[int] = None
    for element in elements:
        ts = getattr(element, "ts", None)
        if ts is not None:
            if origin_ts is None:
                origin_ts = ts
                origin_wall = now()
            else:
                target = origin_wall + (ts - origin_ts) * timestamp_unit_seconds / speedup
                delay = target - now()
                if delay > 0:
                    pause(delay)
        yield element
