"""Operator state checkpointing.

Every operator in this library is a plain Python object graph, so
snapshots are a serialization away.  This module provides the minimal
fault-tolerance story the paper leaves to the host system (Flink's
checkpoints): capture the operator mid-stream, restore it later (or in
another process), and resume with identical emissions.

This pairs with the source's replay position: restore the operator from
the snapshot and re-feed the elements after the snapshot point --
standard checkpoint-and-replay semantics.
"""

from __future__ import annotations

import pickle
from typing import Any

from ..core.operator_base import WindowOperator

__all__ = ["snapshot", "restore", "CheckpointingOperator"]


def snapshot(operator: WindowOperator) -> bytes:
    """Serialize the operator's full state (queries, slices, bookkeeping)."""
    return pickle.dumps(operator, protocol=pickle.HIGHEST_PROTOCOL)


def restore(blob: bytes) -> WindowOperator:
    """Rebuild an operator from a snapshot; processing can resume as if
    uninterrupted."""
    operator = pickle.loads(blob)
    if not isinstance(operator, WindowOperator):
        raise TypeError(f"snapshot does not contain a WindowOperator: {type(operator)!r}")
    return operator


class CheckpointingOperator(WindowOperator):
    """Wrapper that snapshots the inner operator every N records.

    The latest snapshot and the number of records processed since it are
    exposed so a driver can implement replay-from-checkpoint recovery::

        guarded = CheckpointingOperator(operator, every=10_000)
        ...
        recovered = restore(guarded.last_snapshot)
        # re-feed the guarded.records_since_snapshot most recent records
    """

    def __init__(self, inner: WindowOperator, every: int = 10_000) -> None:
        super().__init__()
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {every}")
        self.inner = inner
        self.every = every
        self.last_snapshot: bytes = snapshot(inner)
        self.records_since_snapshot = 0
        self.snapshots_taken = 0

    def add_query(self, window, aggregation):
        query = self.inner.add_query(window, aggregation)
        self.last_snapshot = snapshot(self.inner)
        self.records_since_snapshot = 0
        return query

    def remove_query(self, query_id: int) -> None:
        self.inner.remove_query(query_id)
        self.last_snapshot = snapshot(self.inner)
        self.records_since_snapshot = 0

    @property
    def queries(self):  # type: ignore[override]
        return self.inner.queries

    @queries.setter
    def queries(self, value: Any) -> None:
        # WindowOperator.__init__ assigns an empty list; route nothing.
        pass

    def process_record(self, record):
        results = self.inner.process_record(record)
        self.records_since_snapshot += 1
        if self.records_since_snapshot >= self.every:
            self.checkpoint()
        return results

    def process_watermark(self, watermark):
        return self.inner.process_watermark(watermark)

    def process_punctuation(self, punctuation):
        return self.inner.process_punctuation(punctuation)

    def checkpoint(self) -> bytes:
        """Take a snapshot now; returns the serialized state."""
        self.last_snapshot = snapshot(self.inner)
        self.records_since_snapshot = 0
        self.snapshots_taken += 1
        return self.last_snapshot

    def state_objects(self) -> list:
        return self.inner.state_objects()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CheckpointingOperator(every={self.every}, "
            f"snapshots={self.snapshots_taken}, inner={self.inner!r})"
        )
