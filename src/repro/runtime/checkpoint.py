"""Operator state checkpointing.

Every operator in this library is a plain Python object graph, so
snapshots are a serialization away.  This module provides the minimal
fault-tolerance story the paper leaves to the host system (Flink's
checkpoints): capture the operator mid-stream, restore it later (or in
another process), and resume with identical emissions.

Snapshots carry a small versioned header (magic + format version) so a
restore can tell a checkpoint from arbitrary bytes and reject blobs
written by an incompatible build, instead of blindly unpickling.

The operator object graph includes the eager store's aggregation
kernels (FlatFAT trees, finger B-trees, two-stacks fronts/backs,
subtract-on-evict prefix arrays), so kernel state rides the same
pickle -- a restored
operator resumes with the exact internal structure, not a rebuilt one
(pinned by ``tests/test_kernel_properties.py`` and the kernel chaos
tests in ``tests/test_chaos_equivalence.py``).

This pairs with the source's replay position: restore the operator from
the snapshot and re-feed the elements after the snapshot point --
standard checkpoint-and-replay semantics.  The supervised driver built
on top lives in :mod:`repro.runtime.recovery`.
"""

from __future__ import annotations

import pickle
from typing import Any, Callable, Optional, Sequence

from ..core.operator_base import WindowOperator
from ..core.tracing import Tracer
from ..core.types import Record, StreamElement

__all__ = [
    "CHECKPOINT_MAGIC",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointError",
    "CheckpointFormatError",
    "SnapshotError",
    "snapshot",
    "restore",
    "CheckpointingOperator",
]

#: Leading bytes of every checkpoint blob ("Repro SLiCing").
CHECKPOINT_MAGIC = b"RSLC"
#: Current on-wire layout: MAGIC + 2-byte big-endian version + pickle.
CHECKPOINT_FORMAT_VERSION = 1

_HEADER_LEN = len(CHECKPOINT_MAGIC) + 2


class CheckpointError(ValueError):
    """Base class for checkpoint serialization failures."""


class CheckpointFormatError(CheckpointError):
    """The blob is not a checkpoint, or an incompatible/corrupt one."""


class SnapshotError(CheckpointError):
    """The operator's state cannot be serialized (unpicklable UDF)."""


def _unpicklable_message(operator: WindowOperator, cause: Exception) -> str:
    """Name the offending UDF when an aggregation cannot be pickled."""
    offenders = []
    for query in getattr(operator, "queries", []) or []:
        aggregation = query.aggregation
        try:
            pickle.dumps(aggregation, protocol=pickle.HIGHEST_PROTOCOL)
        except Exception:
            offenders.append(
                f"query {query.query_id} ({type(aggregation).__name__})"
            )
    if offenders:
        return (
            "cannot snapshot operator: the aggregation of "
            + ", ".join(offenders)
            + " holds an unpicklable object (typically a lambda or a "
            "closure defined inside a function); define the UDF at module "
            "level so pickle can reference it by name"
        )
    return f"cannot snapshot operator: {cause}"


def snapshot(operator: WindowOperator, *, tracer: Optional[Tracer] = None) -> bytes:
    """Serialize the operator's full state (queries, slices, bookkeeping).

    The result starts with a versioned header understood by
    :func:`restore`.  Raises :class:`SnapshotError` naming the offending
    aggregation when the state holds an unpicklable UDF.  ``tracer``
    (optional) records ``checkpoint.snapshots`` / ``checkpoint.bytes_written``.
    """
    try:
        payload = pickle.dumps(operator, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(_unpicklable_message(operator, exc)) from exc
    blob = (
        CHECKPOINT_MAGIC
        + CHECKPOINT_FORMAT_VERSION.to_bytes(2, "big")
        + payload
    )
    if tracer is not None:
        tracer.count("checkpoint.snapshots")
        tracer.count("checkpoint.bytes_written", len(blob))
    return blob


def restore(blob: bytes, *, tracer: Optional[Tracer] = None) -> WindowOperator:
    """Rebuild an operator from a snapshot; processing can resume as if
    uninterrupted.

    Rejects blobs without the checkpoint header, blobs written with an
    unsupported format version, and corrupt payloads with a
    :class:`CheckpointFormatError` instead of an arbitrary unpickle.
    ``tracer`` records ``checkpoint.restores`` / ``checkpoint.bytes_restored``.
    """
    if not isinstance(blob, (bytes, bytearray, memoryview)):
        raise CheckpointFormatError(
            f"checkpoint must be bytes, got {type(blob).__name__}"
        )
    blob = bytes(blob)
    if len(blob) < _HEADER_LEN or blob[: len(CHECKPOINT_MAGIC)] != CHECKPOINT_MAGIC:
        raise CheckpointFormatError(
            "not a checkpoint blob: missing the "
            f"{CHECKPOINT_MAGIC!r} header (was it produced by snapshot()?)"
        )
    version = int.from_bytes(blob[len(CHECKPOINT_MAGIC) : _HEADER_LEN], "big")
    if version != CHECKPOINT_FORMAT_VERSION:
        raise CheckpointFormatError(
            f"checkpoint format v{version} is not supported by this build "
            f"(expected v{CHECKPOINT_FORMAT_VERSION})"
        )
    try:
        operator = pickle.loads(blob[_HEADER_LEN:])
    except Exception as exc:
        raise CheckpointFormatError(f"corrupt checkpoint payload: {exc}") from exc
    if not isinstance(operator, WindowOperator):
        # Still a format violation, not a caller type error: a mutated
        # payload can unpickle cleanly into the wrong object.
        raise CheckpointFormatError(
            f"snapshot does not contain a WindowOperator: {type(operator)!r}"
        )
    if tracer is not None:
        tracer.count("checkpoint.restores")
        tracer.count("checkpoint.bytes_restored", len(blob))
    return operator


class CheckpointingOperator(WindowOperator):
    """Wrapper that snapshots the inner operator every N records.

    The latest snapshot and the number of records processed since it are
    exposed so a driver can implement replay-from-checkpoint recovery::

        guarded = CheckpointingOperator(operator, every=10_000)
        ...
        recovered = restore(guarded.last_snapshot)
        # re-feed the guarded.records_since_snapshot most recent records

    Batched ingestion counts toward the same cadence: a batch's records
    are added to ``records_since_snapshot`` and the threshold is checked
    at the batch boundary, so a snapshot never captures mid-batch state.
    ``on_checkpoint`` (optional) is invoked with each new snapshot blob.
    """

    def __init__(
        self,
        inner: WindowOperator,
        every: int = 10_000,
        *,
        on_checkpoint: Optional[Callable[[bytes], None]] = None,
    ) -> None:
        super().__init__()
        if every <= 0:
            raise ValueError(f"checkpoint interval must be positive, got {every}")
        self.inner = inner
        self.every = every
        self.on_checkpoint = on_checkpoint
        self.last_snapshot: bytes = snapshot(inner)
        self.records_since_snapshot = 0
        self.snapshots_taken = 0

    def __getstate__(self) -> dict:
        state = super().__getstate__()
        state["on_checkpoint"] = None
        return state

    def add_query(self, window, aggregation):
        query = self.inner.add_query(window, aggregation)
        self.last_snapshot = snapshot(self.inner)
        self.records_since_snapshot = 0
        return query

    def remove_query(self, query_id: int) -> None:
        self.inner.remove_query(query_id)
        self.last_snapshot = snapshot(self.inner)
        self.records_since_snapshot = 0

    @property
    def queries(self):  # type: ignore[override]
        return self.inner.queries

    @queries.setter
    def queries(self, value: Any) -> None:
        # WindowOperator.__init__ assigns an empty list; route nothing.
        pass

    def process_record(self, record):
        results = self.inner.process_record(record)
        self.records_since_snapshot += 1
        if self.records_since_snapshot >= self.every:
            self.checkpoint()
        return results

    def process_watermark(self, watermark):
        return self.inner.process_watermark(watermark)

    def process_punctuation(self, punctuation):
        return self.inner.process_punctuation(punctuation)

    def process_batch(self, elements: Sequence[StreamElement]):
        """Batch entry point on the inner operator's fast path.

        The checkpoint cadence is only evaluated after the whole batch
        has been absorbed: snapshots are taken at batch boundaries, never
        of half-applied batches.
        """
        results = self.inner.process_batch(elements)
        self.records_since_snapshot += sum(
            1 for element in elements if isinstance(element, Record)
        )
        if self.records_since_snapshot >= self.every:
            self.checkpoint()
        return results

    def flush(self):
        # The wrapper holds no stream position of its own; flushing is
        # the inner operator's business (and takes no snapshot: flush
        # emits results, it does not ingest records).
        return self.inner.flush()

    def _on_tracing_changed(self) -> None:
        # The wrapper and the wrapped operator share one counter sink.
        if self._tracer is None:
            self.inner.disable_tracing()
        else:
            self.inner.enable_tracing(self._tracer)

    def checkpoint(self) -> bytes:
        """Take a snapshot now; returns the serialized state."""
        self.last_snapshot = snapshot(self.inner, tracer=self._tracer)
        self.records_since_snapshot = 0
        self.snapshots_taken += 1
        if self.on_checkpoint is not None:
            self.on_checkpoint(self.last_snapshot)
        return self.last_snapshot

    def state_objects(self) -> list:
        return self.inner.state_objects()

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"CheckpointingOperator(every={self.every}, "
            f"snapshots={self.snapshots_taken}, inner={self.inner!r})"
        )
