"""Key-partitioned parallel window aggregation (Section 5.3 / 6.4).

The paper parallelizes by key partitioning, "the common approach used
in stream processing systems".  This module provides both execution
backends:

* :class:`PartitionedExecutor` -- deterministic in-process partitioning
  (one operator instance per key partition), used by unit tests and the
  correctness suite;
* :func:`run_parallel` -- a ``multiprocessing`` backend for the
  Figure 17 scalability experiment: each worker process owns one
  partition's operator instance and its share of the (pre-partitioned)
  stream; throughput is total records divided by wall-clock time.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import time
import zlib
from typing import Any, Callable, Dict, Iterable, List, Sequence, Tuple

from ..core.operator_base import WindowOperator
from ..core.types import Record, StreamElement, WindowResult

__all__ = [
    "stable_hash",
    "hash_partition",
    "PartitionedExecutor",
    "run_parallel",
    "ParallelResult",
]


def _canonical_bytes(key: Any) -> bytes:
    """A process-independent byte encoding of a partition key.

    Each supported type gets a distinct tag so values that compare
    unequal never collide by encoding (``1`` vs ``"1"`` vs ``b"1"``).
    Containers encode recursively with length prefixes.  Unknown types
    fall back to ``repr`` qualified by the type name -- stable for any
    type whose repr is (namedtuples, enums, dataclasses of the above).
    """
    if key is None:
        return b"n:"
    if isinstance(key, bool):  # before int: True == 1 but tags differ
        return b"B:1" if key else b"B:0"
    if isinstance(key, int):
        return b"i:%d" % key
    if isinstance(key, str):
        return b"s:" + key.encode("utf-8")
    if isinstance(key, bytes):
        return b"b:" + key
    if isinstance(key, float):
        return b"f:" + repr(key).encode("ascii")
    if isinstance(key, (tuple, list)):
        # isinstance, not type lookup: namedtuples must encode as tuples.
        tag = b"t" if isinstance(key, tuple) else b"l"
        parts = [_canonical_bytes(item) for item in key]
        return tag + b":%d:" % len(parts) + b"\x00".join(parts)
    if isinstance(key, (set, frozenset)):
        # One tag for both: {1, 2} == frozenset({1, 2}), and a plain set
        # must never reach the repr fallback -- set iteration order
        # depends on PYTHONHASHSEED, so repr would route the same key to
        # different shards in different processes.
        parts = sorted(_canonical_bytes(item) for item in key)
        return b"F:%d:" % len(parts) + b"\x00".join(parts)
    if isinstance(key, dict):
        parts = sorted(
            _canonical_bytes(k) + b"\x01" + _canonical_bytes(v)
            for k, v in key.items()
        )
        return b"d:%d:" % len(parts) + b"\x00".join(parts)
    return b"r:" + type(key).__qualname__.encode("utf-8") + b":" + repr(key).encode("utf-8")


def stable_hash(key: Any) -> int:
    """A partition hash that is identical across processes and restarts.

    The builtin ``hash()`` is salted per process for ``str``/``bytes``
    (``PYTHONHASHSEED``), so partition assignment would differ between a
    run and its restore -- a restored keyed pipeline would route records
    to the wrong partition's state.  CRC-32 over a canonical encoding is
    unsalted, cheap, and well-mixed for modulo partitioning.
    """
    return zlib.crc32(_canonical_bytes(key))


def hash_partition(elements: Iterable[StreamElement], parallelism: int) -> List[List[StreamElement]]:
    """Split a stream into per-partition streams by record key.

    Records route by ``stable_hash(key) % parallelism`` (round-robin for
    keyless records); watermarks and punctuations are broadcast to all
    partitions, as in Flink.  The assignment is reproducible across
    processes and ``PYTHONHASHSEED`` values, so a restored checkpoint
    sees the same routing as the run that wrote it.
    """
    if parallelism <= 0:
        raise ValueError(f"parallelism must be positive, got {parallelism}")
    partitions: List[List[StreamElement]] = [[] for _ in range(parallelism)]
    round_robin = 0
    for element in elements:
        if isinstance(element, Record):
            if element.key is None:
                index = round_robin % parallelism
                round_robin += 1
            else:
                index = stable_hash(element.key) % parallelism
            partitions[index].append(element)
        else:
            for partition in partitions:
                partition.append(element)
    return partitions


class PartitionedExecutor:
    """In-process key-partitioned execution (deterministic, for tests)."""

    def __init__(self, operator_factory: Callable[[], WindowOperator], parallelism: int) -> None:
        if parallelism <= 0:
            raise ValueError(f"parallelism must be positive, got {parallelism}")
        self.parallelism = parallelism
        self.operators: List[WindowOperator] = [operator_factory() for _ in range(parallelism)]

    def run(self, elements: Iterable[StreamElement]) -> Dict[int, List[WindowResult]]:
        """Process a stream; returns results per partition index."""
        partitions = hash_partition(elements, self.parallelism)
        output: Dict[int, List[WindowResult]] = {}
        for index, (operator, stream) in enumerate(zip(self.operators, partitions)):
            output[index] = operator.run(stream)
        return output


class ParallelResult:
    """Outcome of a multiprocessing run."""

    __slots__ = ("records", "wall_seconds", "cpu_seconds", "results_emitted", "parallelism")

    def __init__(
        self,
        records: int,
        wall_seconds: float,
        cpu_seconds: float,
        results_emitted: int,
        parallelism: int,
    ) -> None:
        self.records = records
        self.wall_seconds = wall_seconds
        self.cpu_seconds = cpu_seconds
        self.results_emitted = results_emitted
        self.parallelism = parallelism

    @property
    def records_per_second(self) -> float:
        # Degenerate runs report 0.0, matching ThroughputResult's guard;
        # float("inf") used to leak into comparisons and JSON output.
        if self.records <= 0 or self.wall_seconds <= 0:
            return 0.0
        return self.records / self.wall_seconds

    @property
    def cpu_utilization(self) -> float:
        """CPU load in "percent of one core" units (Figure 17b style)."""
        if self.wall_seconds <= 0:
            return 0.0
        return 100.0 * self.cpu_seconds / self.wall_seconds

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"ParallelResult(p={self.parallelism}, "
            f"{self.records_per_second:,.0f} records/s, cpu={self.cpu_utilization:.0f}%)"
        )


def _worker(payload: Tuple[bytes, List[StreamElement]]) -> Tuple[int, float]:
    """Run one partition in a worker process; returns (#results, cpu_s)."""
    import pickle

    factory_bytes, stream = payload
    factory = pickle.loads(factory_bytes)
    operator = factory()
    cpu_before = time.process_time()
    emitted = 0
    for element in stream:
        emitted += len(operator.process(element))
    # Drain windows still buffered at end-of-stream: without the flush,
    # tail windows never reached results_emitted and the count under-
    # reported relative to the single-process run.
    emitted += len(operator.flush())
    return emitted, time.process_time() - cpu_before


def run_parallel(
    operator_factory: Callable[[], WindowOperator],
    elements: Sequence[StreamElement],
    parallelism: int,
) -> ParallelResult:
    """Figure 17 backend: partitioned execution on worker processes.

    The operator factory must be picklable (a module-level function or
    :func:`functools.partial` of one).  Partitioning happens before the
    clock starts; measured time covers pure windowed aggregation.
    """
    import pickle

    partitions = hash_partition(elements, parallelism)
    records = sum(1 for e in elements if isinstance(e, Record))
    factory_bytes = pickle.dumps(operator_factory)
    payloads = [(factory_bytes, partition) for partition in partitions]
    if parallelism == 1:
        start = time.perf_counter()
        emitted, cpu = _worker(payloads[0])
        wall = time.perf_counter() - start
        return ParallelResult(records, wall, cpu, emitted, parallelism)
    context = mp.get_context("fork" if hasattr(os, "fork") else "spawn")
    with context.Pool(processes=parallelism) as pool:
        start = time.perf_counter()
        outcomes = pool.map(_worker, payloads)
        wall = time.perf_counter() - start
    emitted = sum(count for count, _ in outcomes)
    cpu = sum(cpu_seconds for _, cpu_seconds in outcomes)
    return ParallelResult(records, wall, cpu, emitted, parallelism)
