"""Out-of-order stream simulation (Section 6.1 workload knobs).

The paper's workloads add a configurable *fraction* of out-of-order
records with *uniformly random delays* in a configurable range
(e.g. "20 % out-of-order tuples with random delays between 0 and 2
seconds").  :func:`inject_disorder` reproduces that: selected records
are deferred by a random delay in arrival order while their event
timestamps stay untouched, so downstream operators see them late.

Watermarks are generated to trail the maximum emitted event-time by the
maximum possible delay, mirroring a bounded-disorder watermark
assigner.
"""

from __future__ import annotations

import random
from typing import Iterable, Iterator, List, Optional, Tuple

from ..core.types import Record, StreamElement, Watermark

__all__ = ["inject_disorder", "with_watermarks", "disorder_fraction"]


def inject_disorder(
    records: Iterable[Record],
    fraction: float,
    max_delay: int,
    *,
    min_delay: int = 0,
    seed: int = 7,
) -> List[Record]:
    """Delay a ``fraction`` of records by uniform delays in event-time units.

    A selected record with event-time ``t`` is re-inserted at the stream
    position where records with event-time ``t + delay`` sit, emulating
    a transmission delay of ``delay`` time units.  Returns the new
    arrival order (event-times unchanged).
    """
    if not 0.0 <= fraction <= 1.0:
        raise ValueError(f"fraction must be in [0, 1], got {fraction}")
    if max_delay < min_delay:
        raise ValueError("max_delay must be >= min_delay")
    rng = random.Random(seed)
    inbox: List[Record] = list(records)
    delayed: List[Tuple[int, int, Record]] = []  # (due_ts, seq, record)
    output: List[Record] = []
    seq = 0
    for record in inbox:
        # Release previously delayed records whose due time passed.
        ready = [entry for entry in delayed if entry[0] <= record.ts]
        for entry in sorted(ready):
            output.append(entry[2])
            delayed.remove(entry)
        if fraction > 0 and rng.random() < fraction:
            delay = rng.randint(min_delay, max_delay)
            if delay > 0:
                delayed.append((record.ts + delay, seq, record))
                seq += 1
                continue
        output.append(record)
    for entry in sorted(delayed):
        output.append(entry[2])
    return output


def with_watermarks(
    records: Iterable[Record],
    *,
    interval: int,
    max_delay: int = 0,
    final: bool = True,
) -> Iterator[StreamElement]:
    """Interleave periodic watermarks trailing event-time by ``max_delay``.

    A watermark ``W(t)`` promises no future record with ``ts < t``; with
    bounded disorder of at most ``max_delay``, the safe watermark is
    ``max_emitted_ts - max_delay``.  One watermark is emitted whenever
    the watermark position advances by at least ``interval``.
    """
    if interval <= 0:
        raise ValueError(f"watermark interval must be positive, got {interval}")
    max_ts: Optional[int] = None
    last_wm: Optional[int] = None
    for record in records:
        yield record
        if max_ts is None or record.ts > max_ts:
            max_ts = record.ts
        wm = max_ts - max_delay
        if last_wm is None or wm >= last_wm + interval:
            yield Watermark(wm)
            last_wm = wm
    if final and max_ts is not None:
        yield Watermark(max_ts + max_delay + 1)


def disorder_fraction(records: Iterable[Record]) -> float:
    """Fraction of records arriving out-of-order (diagnostic helper)."""
    total = 0
    late = 0
    max_ts: Optional[int] = None
    for record in records:
        total += 1
        if max_ts is not None and record.ts < max_ts:
            late += 1
        if max_ts is None or record.ts > max_ts:
            max_ts = record.ts
    return late / total if total else 0.0
