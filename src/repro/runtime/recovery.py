"""Supervised execution: checkpoint-and-replay recovery with
exactly-once re-emission.

The paper runs its operators inside Flink and inherits checkpointing,
restarts, and exactly-once sinks for free.  This module is that story
for our substrate: :class:`SupervisedPipeline` drives a window operator
over a replayable source, takes periodic snapshots (always at batch
boundaries, never of half-applied batches), and on any operator failure
restores the last snapshot, rewinds the source cursor, and replays the
tail under a retry/backoff budget.

Durable checkpoints
-------------------
Snapshots go to a :class:`~repro.runtime.durability.CheckpointStore`
(default: :class:`~repro.runtime.durability.InMemoryStore` keeping one
generation -- the classic in-supervisor behaviour).  With a
:class:`~repro.runtime.durability.DiskCheckpointStore` the recovery
state survives the process: checkpoints are CRC32-framed files written
atomically, and a restore that finds the newest generation corrupt (a
torn write, a bit flip) falls back generation-by-generation to the last
good one.  The supervisor keeps its emitted-results log deep enough to
cover the *oldest* retained generation, so exactly-once re-emission
holds no matter which generation the restore lands on.

Exactly-once re-emission
------------------------
Replayed input re-produces results the sink already saw.  Operators are
deterministic (same state + same elements => same emissions, the
property the checkpoint tests assert), so the supervisor logs every
delivered result with the cursor of the batch that produced it and,
during replay, matches re-emitted results against that log one-for-one
-- suppressing the duplicates and *verifying* they are bit-identical to
what was delivered (a mismatch means replay diverged and raises
:class:`RecoveryError` rather than silently corrupting the sink).  The
sink therefore observes every window result exactly once, crash or no
crash.

Poison-record quarantine
------------------------
A record whose UDF raises *deterministically* would otherwise burn the
whole restart budget and kill the run.  With a
:class:`~repro.runtime.durability.DeadLetterQueue` attached, a failing
batch is first retried ``dlq.max_retries`` times (each retry is an
ordinary restore-and-replay, so transient faults heal); past the budget
the supervisor restores once more and replays the batch
record-at-a-time to isolate the culprit, quarantines it (cause, cursor,
attempt count, ``on_poison_record`` hook), and continues without it.
Quarantine decisions live in a cursor-indexed log applied on every
pass, so a later crash-and-replay neither re-emits nor re-quarantines a
poisoned record.

Graceful degradation
--------------------
Two further failure modes degrade explicitly instead of silently:

* late records beyond the allowed lateness are handed to a side channel
  (``late_record_sink``) via the operator's ``on_late_record`` hook and
  counted, instead of vanishing;
* a :class:`MemoryGuard` bounds operator state: when the limit is
  exceeded the pipeline signals :class:`MemoryPressure` and sheds
  records (watermarks always pass) until state falls below the resume
  threshold.  Shed decisions are recorded per cursor range so a replay
  after a crash repeats them deterministically.
"""

from __future__ import annotations

import random
import time
from collections import deque
from typing import Callable, Deque, Dict, List, Optional, Sequence, Set, Tuple

from ..core.operator_base import WindowOperator
from ..core.tracing import Tracer
from ..core.types import Record, StreamElement, WindowResult
from .checkpoint import restore, snapshot
from .durability import (
    CheckpointStore,
    DeadLetterQueue,
    InMemoryStore,
    StoredCheckpoint,
)
from .faults import SourceHiccup
from .memory import deep_sizeof
from .metrics import RecoveryStats
from .sources import ReplayableSource

__all__ = [
    "RestartPolicy",
    "PipelineFailed",
    "RecoveryError",
    "MemoryPressure",
    "MemoryGuard",
    "Checkpoint",
    "SupervisedPipeline",
]


class RecoveryError(RuntimeError):
    """Replay diverged from the pre-crash run (determinism violated)."""


class PipelineFailed(RuntimeError):
    """The restart budget is exhausted; the last failure is the cause."""

    def __init__(self, message: str, failures: List[BaseException]) -> None:
        super().__init__(message)
        #: Every failure observed, oldest first.
        self.failures = failures


class RestartPolicy:
    """Retry/backoff budget for supervised execution.

    ``max_restarts`` bounds operator restarts and, independently,
    consecutive source-read retries.  The delay before restart ``n``
    (0-based) is ``backoff_seconds * backoff_factor**n``, capped at
    ``max_backoff_seconds``.

    ``jitter`` decorrelates restarts that would otherwise fire in
    lockstep (e.g. several shards killed by one fault): the base delay
    is stretched by up to ``jitter`` of itself, deterministically --
    :meth:`delay` is a pure function of ``(seed, attempt, token)``, so
    equal seeds reproduce equal schedules while different ``token``
    values (shard indexes, typically) spread out.
    """

    __slots__ = (
        "max_restarts",
        "backoff_seconds",
        "backoff_factor",
        "max_backoff_seconds",
        "jitter",
        "seed",
    )

    def __init__(
        self,
        max_restarts: int = 3,
        backoff_seconds: float = 0.0,
        backoff_factor: float = 2.0,
        max_backoff_seconds: float = 30.0,
        jitter: float = 0.0,
        seed: int = 0,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if backoff_seconds < 0 or max_backoff_seconds < 0:
            raise ValueError("backoff durations must be non-negative")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {backoff_factor}")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {jitter}")
        self.max_restarts = max_restarts
        self.backoff_seconds = backoff_seconds
        self.backoff_factor = backoff_factor
        self.max_backoff_seconds = max_backoff_seconds
        self.jitter = jitter
        self.seed = seed

    def delay(self, attempt: int, *, token: int = 0) -> float:
        """Backoff before the given 0-based restart attempt.

        ``token`` names the restarting party (a shard index); with
        ``jitter`` enabled, different tokens draw different -- but
        seed-deterministic -- stretches of the same base delay.
        """
        if self.backoff_seconds == 0.0:
            return 0.0
        base = min(
            self.max_backoff_seconds,
            self.backoff_seconds * self.backoff_factor**attempt,
        )
        if self.jitter == 0.0:
            return base
        # Seeded by value, not by object identity: pure given the seed.
        draw = random.Random(f"{self.seed}|{attempt}|{token}").random()
        return base * (1.0 + self.jitter * draw)


class MemoryPressure:
    """Explicit load-shedding signal handed to ``on_pressure``."""

    __slots__ = ("state_bytes", "limit_bytes", "cursor")

    def __init__(self, state_bytes: int, limit_bytes: int, cursor: int) -> None:
        self.state_bytes = state_bytes
        self.limit_bytes = limit_bytes
        self.cursor = cursor

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemoryPressure({self.state_bytes} > {self.limit_bytes} bytes "
            f"at cursor {self.cursor})"
        )


class MemoryGuard:
    """Bounded-memory policy over an operator's retained state.

    ``max_state_bytes`` is the shed threshold (measured with
    :func:`repro.runtime.memory.deep_sizeof` over ``state_objects()``);
    shedding stops once state falls to ``resume_state_bytes`` (default:
    three quarters of the limit).  ``check_every`` throttles how often
    the measurement runs while below the limit.
    """

    __slots__ = ("max_state_bytes", "resume_state_bytes", "check_every")

    def __init__(
        self,
        max_state_bytes: int,
        *,
        resume_state_bytes: Optional[int] = None,
        check_every: int = 256,
    ) -> None:
        if max_state_bytes <= 0:
            raise ValueError(f"max_state_bytes must be positive, got {max_state_bytes}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.max_state_bytes = max_state_bytes
        self.resume_state_bytes = (
            resume_state_bytes
            if resume_state_bytes is not None
            else max_state_bytes * 3 // 4
        )
        if self.resume_state_bytes > max_state_bytes:
            raise ValueError("resume_state_bytes must not exceed max_state_bytes")
        self.check_every = check_every

    def state_bytes(self, operator: WindowOperator) -> int:
        return sum(deep_sizeof(obj) for obj in operator.state_objects())


class Checkpoint:
    """One recovery point: operator snapshot + source cursor.

    Retained as the supervisor's view of its newest successful save;
    the authoritative copy (and any older generations) lives in the
    :class:`~repro.runtime.durability.CheckpointStore`.
    """

    __slots__ = ("blob", "cursor", "records_processed")

    def __init__(self, blob: bytes, cursor: int, records_processed: int) -> None:
        self.blob = blob
        self.cursor = cursor
        self.records_processed = records_processed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Checkpoint(cursor={self.cursor}, "
            f"records={self.records_processed}, {len(self.blob)} bytes)"
        )


def _count_records(elements: Sequence[StreamElement]) -> int:
    return sum(1 for element in elements if isinstance(element, Record))


class SupervisedPipeline:
    """Crash-surviving driver: source cursor + checkpoints + replay.

    Parameters
    ----------
    operator:
        The window operator to supervise.  A wrapper with a true
        ``transient`` attribute (e.g.
        :class:`~repro.runtime.faults.FaultInjectingOperator`) is kept
        alive across restarts and only its ``inner`` operator is
        snapshotted/restored -- fault bookkeeping is environment, not
        state.
    sink:
        Anything with an ``emit(result)`` method; observes each window
        result exactly once.
    checkpoint_every:
        Snapshot cadence in records; evaluated at batch boundaries.
    batch_size:
        Elements per :meth:`WindowOperator.process_batch` call.
    restart_policy:
        Retry/backoff budget (default: 3 restarts, no backoff).
    store:
        Where checkpoints live (default:
        :class:`~repro.runtime.durability.InMemoryStore` keeping one
        generation).  A disk store makes recovery survive the process;
        see the module docstring for corruption fallback semantics.
    dlq:
        Optional :class:`~repro.runtime.durability.DeadLetterQueue`;
        when set, deterministic per-record failures are quarantined
        after a bounded number of retries instead of failing the run.
    memory_guard / on_pressure:
        Optional bounded-memory degradation (see module docstring).
    late_record_sink:
        Optional callable (or object with ``append``) receiving records
        dropped beyond the allowed lateness, exactly once each.
    tracer:
        Optional :class:`~repro.core.tracing.Tracer`; receives the
        ``durability.*`` / ``dlq.*`` counters (shared with the store
        and DLQ unless they already carry their own tracer).
    sleep / clock:
        Injectable for tests; default ``time.sleep`` /
        ``time.perf_counter``.
    """

    def __init__(
        self,
        operator: WindowOperator,
        sink,
        *,
        checkpoint_every: int = 1_000,
        batch_size: int = 1,
        restart_policy: Optional[RestartPolicy] = None,
        store: Optional[CheckpointStore] = None,
        dlq: Optional[DeadLetterQueue] = None,
        memory_guard: Optional[MemoryGuard] = None,
        on_pressure: Optional[Callable[[MemoryPressure], None]] = None,
        late_record_sink=None,
        stats: Optional[RecoveryStats] = None,
        tracer: Optional[Tracer] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._operator = operator
        self.sink = sink
        self.checkpoint_every = checkpoint_every
        self.batch_size = batch_size
        self.policy = restart_policy if restart_policy is not None else RestartPolicy()
        self.store = store if store is not None else InMemoryStore(keep=1)
        self.dlq = dlq
        self.guard = memory_guard
        self.on_pressure = on_pressure
        if late_record_sink is not None and not callable(late_record_sink):
            late_record_sink = late_record_sink.append
        self._late_sink = late_record_sink
        self.stats = stats if stats is not None else RecoveryStats()
        self.tracer = tracer
        if tracer is not None:
            if self.store.tracer is None:
                self.store.tracer = tracer
            if dlq is not None and dlq.tracer is None:
                dlq.tracer = tracer
        self._sleep = sleep
        self._clock = clock

        self.checkpoint: Optional[Checkpoint] = None
        self._failures: List[BaseException] = []
        # Cursor ranges [start, end) whose records were shed; decisions
        # are replayed from this log, never re-taken, so recovery replay
        # filters exactly the records the original pass filtered.
        self._shed_ranges: List[List[Optional[int]]] = []
        self._decided_to = 0
        self._high_cursor = 0
        self._last_guard_check = 0
        # Late-record reports are buffered per batch and flushed only
        # when the batch succeeds on its first (non-replay) pass, so a
        # crashed half-batch or a replayed batch never reports twice.
        self._late_buffer: List[Record] = []
        # Results delivered to the sink, keyed by the cursor of the
        # batch that produced them.  Trimmed to the oldest retained
        # store generation: any fallback restores at or after it, so
        # the log always covers the replay window.
        self._emitted_log: List[Tuple[int, WindowResult]] = []
        # Poison-record bookkeeping (only populated with a DLQ).
        self._quarantined: Set[int] = set()
        self._failures_at: Dict[int, int] = {}
        self._isolate_at: Optional[int] = None
        # Fallback floor: a fresh run must never restore a generation a
        # previous run left in a shared (disk) store.
        self._min_generation: Optional[int] = None

    # ------------------------------------------------------------------
    # operator (un)wrapping

    @property
    def operator(self) -> WindowOperator:
        """The supervised operator (the wrapper, when one was given)."""
        return self._operator

    def _snapshot_target(self) -> WindowOperator:
        operator = self._operator
        if getattr(operator, "transient", False):
            return operator.inner
        return operator

    def _reseat(self, restored: WindowOperator) -> None:
        operator = self._operator
        if getattr(operator, "transient", False):
            operator.inner = restored
        else:
            self._operator = restored
        self._install_late_hook()

    def _install_late_hook(self) -> None:
        self._snapshot_target().on_late_record = self._on_late_record

    def _on_late_record(self, record: Record) -> None:
        self._late_buffer.append(record)

    def _flush_late_buffer(self, replayed_batch: bool) -> None:
        buffered, self._late_buffer = self._late_buffer, []
        if replayed_batch:
            return  # already reported before the crash: exactly once
        for record in buffered:
            self.stats.late_records += 1
            if self._late_sink is not None:
                self._late_sink(record)

    # ------------------------------------------------------------------
    # checkpointing against the durable store

    def _take_checkpoint(self, cursor: int, records_processed: int) -> None:
        """Snapshot and save; transient store I/O errors are retried
        under the restart policy (the previous generation stands until a
        save succeeds)."""
        blob = snapshot(self._snapshot_target(), tracer=self.tracer)
        attempt = 0
        while True:
            try:
                generation = self.store.save(
                    blob, cursor=cursor, records_processed=records_processed
                )
                break
            except OSError as exc:
                self._failures.append(exc)
                if self.tracer is not None:
                    self.tracer.count("durability.save_retries")
                if attempt >= self.policy.max_restarts:
                    raise PipelineFailed(
                        f"checkpoint save failed {attempt + 1} times "
                        f"at cursor {cursor}",
                        self._failures,
                    ) from exc
                self._sleep(self.policy.delay(attempt))
                attempt += 1
        if self._min_generation is None:
            self._min_generation = generation
        self.checkpoint = Checkpoint(blob, cursor, records_processed)
        self.stats.checkpoints_taken += 1
        self._trim_emitted_log()

    def _trim_emitted_log(self) -> None:
        horizon = self.store.oldest_cursor()
        if (
            horizon is not None
            and self._emitted_log
            and self._emitted_log[0][0] < horizon
        ):
            self._emitted_log = [
                entry for entry in self._emitted_log if entry[0] >= horizon
            ]

    def _restore_latest(self) -> StoredCheckpoint:
        """Load the newest loadable generation (transient I/O retried,
        corrupt generations skipped by the store) and reseat the
        operator from it."""
        attempt = 0
        while True:
            try:
                loaded = self.store.load_latest(min_generation=self._min_generation)
                break
            except OSError as exc:
                self._failures.append(exc)
                if self.tracer is not None:
                    self.tracer.count("durability.load_retries")
                if attempt >= self.policy.max_restarts:
                    raise PipelineFailed(
                        f"checkpoint load failed {attempt + 1} times",
                        self._failures,
                    ) from exc
                self._sleep(self.policy.delay(attempt))
                attempt += 1
        if loaded is None:
            raise PipelineFailed(
                "no loadable checkpoint generation remains "
                "(all retained generations are corrupt)",
                self._failures,
            )
        newest = self.store.generations()[-1]
        if newest != loaded.generation:
            # The store fell back past corrupt newer generations.
            skipped = sum(
                1 for g in self.store.generations() if g > loaded.generation
            )
            self.stats.store_fallbacks += skipped
        self._reseat(restore(loaded.blob, tracer=self.tracer))
        return loaded

    # ------------------------------------------------------------------
    # memory guard / load shedding

    def _shed_filter(
        self, cursor: int, batch: List[StreamElement], end: int
    ) -> List[StreamElement]:
        """Apply (and, past the decision horizon, extend) the shed log.

        ``end`` is the cursor after the *original* batch -- quarantine
        filtering may have shrunk ``batch``, but shed decisions cover
        whole cursor ranges of the source stream.
        """
        if cursor >= self._decided_to:
            self._decide_shedding(cursor, end)
            self._decided_to = end
            count_new = True
        else:
            count_new = False
        if not self._cursor_shed(cursor):
            return batch
        kept = [e for e in batch if not isinstance(e, Record)]
        if count_new:
            self.stats.shed_records += len(batch) - len(kept)
        return kept

    def _cursor_shed(self, cursor: int) -> bool:
        for start, end in self._shed_ranges:
            if start <= cursor and (end is None or cursor < end):
                return True
        return False

    def _decide_shedding(self, cursor: int, end: int) -> None:
        guard = self.guard
        if guard is None:
            return
        open_range = self._shed_ranges and self._shed_ranges[-1][1] is None
        if open_range:
            # Shedding: re-measure every batch to resume promptly.
            if guard.state_bytes(self._snapshot_target()) <= guard.resume_state_bytes:
                self._shed_ranges[-1][1] = cursor
        else:
            records_unchecked = end - self._last_guard_check
            if records_unchecked < guard.check_every:
                return
            self._last_guard_check = end
            state_bytes = guard.state_bytes(self._snapshot_target())
            if state_bytes > guard.max_state_bytes:
                self._shed_ranges.append([cursor, None])
                if self.on_pressure is not None:
                    self.on_pressure(
                        MemoryPressure(state_bytes, guard.max_state_bytes, cursor)
                    )

    # ------------------------------------------------------------------
    # poison-record quarantine

    def _quarantine_filter(
        self, cursor: int, batch: List[StreamElement]
    ) -> List[StreamElement]:
        """Drop records the DLQ has quarantined (applied on every pass,
        so replay neither re-emits nor re-quarantines them)."""
        if not self._quarantined:
            return batch
        return [
            element
            for offset, element in enumerate(batch)
            if not (
                isinstance(element, Record) and cursor + offset in self._quarantined
            )
        ]

    def _deliver(
        self,
        results: List[WindowResult],
        pending_replay: Deque[WindowResult],
        batch_cursor: int,
    ) -> None:
        """Exactly-once delivery: replayed results must match what the
        sink already observed; only genuinely new results are emitted
        (and logged against the batch that produced them)."""
        stats = self.stats
        for result in results:
            if pending_replay:
                expected = pending_replay.popleft()
                if expected != result:
                    raise RecoveryError(
                        "replay diverged from the pre-crash run: "
                        f"expected {expected!r}, re-emitted {result!r}"
                    )
                stats.deduped_results += 1
            else:
                self.sink.emit(result)
                self._emitted_log.append((batch_cursor, result))
                stats.results_emitted += 1

    def _isolate_batch(
        self,
        cursor: int,
        batch: List[StreamElement],
        pending_replay: Deque[WindowResult],
        replayed_batch: bool,
    ) -> Optional[Record]:
        """Replay one failing batch record-at-a-time to find the poison
        record.  Successful prefixes are delivered (and deduped) as they
        go; the culprit is quarantined and returned, with operator state
        left mid-batch for the caller to roll back.  Returns ``None``
        when the whole batch passes (the failure was transient after
        all)."""
        shed = self._cursor_shed(cursor)
        for offset, element in enumerate(batch):
            position = cursor + offset
            if isinstance(element, Record):
                if shed or position in self._quarantined:
                    continue
                try:
                    results = self._operator.process(element)
                except Exception as exc:
                    self._late_buffer.clear()
                    attempts = self._failures_at.get(cursor, 0)
                    # May raise DeadLetterOverflow: the caller escalates
                    # that to the ordinary restart budget.
                    self.dlq.quarantine(
                        element, cursor=position, attempts=attempts, cause=exc
                    )
                    self._quarantined.add(position)
                    self.stats.quarantined_records += 1
                    self._failures_at.pop(cursor, None)
                    self._isolate_at = None
                    return element
            else:
                results = self._operator.process(element)
            self._flush_late_buffer(replayed_batch)
            self._deliver(results, pending_replay, cursor)
        self._failures_at.pop(cursor, None)
        self._isolate_at = None
        return None

    # ------------------------------------------------------------------
    # the supervision loop

    def run(self, elements, *, resume: bool = False) -> RecoveryStats:
        """Drain the stream, surviving failures; returns the run's stats.

        ``elements`` may be a :class:`ReplayableSource` (e.g. a
        :class:`~repro.runtime.faults.FaultySource`) or any sequence,
        which is materialized into one.

        ``resume=True`` continues from the newest loadable generation a
        previous run (possibly a dead process) left in the store,
        re-feeding the *same* stream: the operator restores from the
        checkpoint and the cursor rewinds to it.  Results the dead
        process emitted after that checkpoint are re-emitted (the
        classic at-least-once boundary of a non-transactional sink);
        within the resumed run, delivery is exactly-once as usual.
        """
        source = (
            elements
            if isinstance(elements, ReplayableSource)
            else ReplayableSource(elements)
        )
        stats = self.stats
        policy = self.policy
        self._install_late_hook()
        self._last_guard_check = 0
        self._late_buffer.clear()

        cursor = 0
        records_done = 0
        if resume:
            self._min_generation = None
            loaded = self.store.load_latest()
            if loaded is not None:
                self._reseat(restore(loaded.blob, tracer=self.tracer))
                cursor = loaded.cursor
                records_done = loaded.records_processed
                self.checkpoint = Checkpoint(
                    loaded.blob, loaded.cursor, loaded.records_processed
                )
                self.stats.resumed_from_cursor = loaded.cursor
            else:
                self._take_checkpoint(0, 0)
        else:
            self._take_checkpoint(0, 0)
        records_since_checkpoint = 0
        # Results a replay is expected to re-produce verbatim.
        pending_replay: Deque[WindowResult] = deque()
        restarts = 0
        hiccups_in_row = 0
        total = len(source)

        while cursor < total:
            try:
                batch = source.read(cursor, self.batch_size)
            except SourceHiccup as exc:
                # Transient: operator state is intact; retry the read.
                hiccups_in_row += 1
                stats.source_retries += 1
                self._failures.append(exc)
                if hiccups_in_row > policy.max_restarts:
                    raise PipelineFailed(
                        f"source failed {hiccups_in_row} consecutive reads "
                        f"at cursor {cursor}",
                        self._failures,
                    ) from exc
                self._sleep(policy.delay(hiccups_in_row - 1))
                continue
            hiccups_in_row = 0

            end = cursor + len(batch)
            replayed_batch = end <= self._high_cursor
            try:
                if self._isolate_at == cursor:
                    poison = self._isolate_batch(
                        cursor, batch, pending_replay, replayed_batch
                    )
                    if poison is not None:
                        # The culprit left mid-batch state behind; roll
                        # back to the checkpoint and replay without it.
                        self._rewind(stats)
                        loaded = self.checkpoint
                        cursor = loaded.cursor
                        records_done = loaded.records_processed
                        records_since_checkpoint = 0
                        pending_replay = self._pending_after(cursor)
                        continue
                else:
                    to_process = self._shed_filter(
                        cursor, self._quarantine_filter(cursor, batch), end
                    )
                    results = self._operator.process_batch(to_process)
                    self._flush_late_buffer(replayed_batch)
                    self._deliver(results, pending_replay, cursor)
            except Exception as exc:
                self._late_buffer.clear()
                self._failures.append(exc)
                managed = self.dlq is not None and self._note_dlq_failure(cursor, exc)
                if not managed:
                    restarts += 1
                    if restarts > policy.max_restarts:
                        raise PipelineFailed(
                            f"operator failed {restarts} times "
                            f"(max_restarts={policy.max_restarts}); giving up "
                            f"at cursor {cursor}",
                            self._failures,
                        ) from exc
                began = self._clock()
                loaded = self._restore_latest()
                replayed_elements = cursor - loaded.cursor
                replayed_records = records_done - loaded.records_processed
                cursor = loaded.cursor
                records_done = loaded.records_processed
                records_since_checkpoint = 0
                pending_replay = self._pending_after(cursor)
                stats.record_recovery(
                    self._clock() - began, replayed_elements, replayed_records
                )
                attempt = (
                    self._failures_at.get(cursor, restarts) - 1
                    if managed
                    else restarts - 1
                )
                self._sleep(policy.delay(max(0, attempt)))
                continue

            cursor = end
            if cursor > self._high_cursor:
                self._high_cursor = cursor
            batch_records = _count_records(batch)
            records_done += batch_records
            records_since_checkpoint += batch_records
            if records_since_checkpoint >= self.checkpoint_every:
                self._take_checkpoint(cursor, records_done)
                records_since_checkpoint = 0

        return stats

    def _pending_after(self, cursor: int) -> Deque[WindowResult]:
        """Delivered results the replay from ``cursor`` must re-produce."""
        return deque(
            result for batch_cursor, result in self._emitted_log if batch_cursor >= cursor
        )

    def _rewind(self, stats: RecoveryStats) -> None:
        """Restore the newest loadable generation after a quarantine
        (state is mid-batch; the replay excludes the poison record)."""
        began = self._clock()
        loaded = self._restore_latest()
        self.checkpoint = Checkpoint(
            loaded.blob, loaded.cursor, loaded.records_processed
        )
        stats.record_recovery(self._clock() - began, 0, 0)

    def _note_dlq_failure(self, cursor: int, exc: BaseException) -> bool:
        """Track one batch failure against the DLQ's retry budget.

        Returns True when the DLQ manages this failure (retry or
        isolate next pass); False hands it to the restart budget --
        including a :class:`DeadLetterOverflow` raised mid-isolation,
        which must escalate rather than loop.
        """
        from .durability import DeadLetterOverflow

        if isinstance(exc, DeadLetterOverflow):
            return False
        if self._isolate_at == cursor:
            # The record-at-a-time pass itself failed (a non-record
            # element, or a fault outside any single record): not a
            # poison record, so stop managing it.
            return False
        count = self._failures_at.get(cursor, 0) + 1
        self._failures_at[cursor] = count
        if count <= self.dlq.max_retries:
            self.dlq.record_retry()
        else:
            self._isolate_at = cursor
        return True
