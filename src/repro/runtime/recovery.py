"""Supervised execution: checkpoint-and-replay recovery with
exactly-once re-emission.

The paper runs its operators inside Flink and inherits checkpointing,
restarts, and exactly-once sinks for free.  This module is that story
for our substrate: :class:`SupervisedPipeline` drives a window operator
over a replayable source, takes periodic snapshots (always at batch
boundaries, never of half-applied batches), and on any operator failure
restores the last snapshot, rewinds the source cursor, and replays the
tail under a retry/backoff budget.

Exactly-once re-emission
------------------------
Replayed input re-produces results the sink already saw.  Operators are
deterministic (same state + same elements => same emissions, the
property the checkpoint tests assert), so the supervisor keeps the list
of results delivered since the last checkpoint and, during replay,
matches re-emitted results against that list one-for-one -- suppressing
the duplicates and *verifying* they are bit-identical to what was
delivered (a mismatch means replay diverged and raises
:class:`RecoveryError` rather than silently corrupting the sink).  The
sink therefore observes every window result exactly once, crash or no
crash.

Graceful degradation
--------------------
Two failure modes degrade explicitly instead of silently:

* late records beyond the allowed lateness are handed to a side channel
  (``late_record_sink``) via the operator's ``on_late_record`` hook and
  counted, instead of vanishing;
* a :class:`MemoryGuard` bounds operator state: when the limit is
  exceeded the pipeline signals :class:`MemoryPressure` and sheds
  records (watermarks always pass) until state falls below the resume
  threshold.  Shed decisions are recorded per cursor range so a replay
  after a crash repeats them deterministically.
"""

from __future__ import annotations

import time
from collections import deque
from typing import Callable, Deque, List, Optional, Sequence

from ..core.operator_base import WindowOperator
from ..core.types import Record, StreamElement, WindowResult
from .checkpoint import restore, snapshot
from .faults import SourceHiccup
from .memory import deep_sizeof
from .metrics import RecoveryStats
from .sources import ReplayableSource

__all__ = [
    "RestartPolicy",
    "PipelineFailed",
    "RecoveryError",
    "MemoryPressure",
    "MemoryGuard",
    "Checkpoint",
    "SupervisedPipeline",
]


class RecoveryError(RuntimeError):
    """Replay diverged from the pre-crash run (determinism violated)."""


class PipelineFailed(RuntimeError):
    """The restart budget is exhausted; the last failure is the cause."""

    def __init__(self, message: str, failures: List[BaseException]) -> None:
        super().__init__(message)
        #: Every failure observed, oldest first.
        self.failures = failures


class RestartPolicy:
    """Retry/backoff budget for supervised execution.

    ``max_restarts`` bounds operator restarts and, independently,
    consecutive source-read retries.  The delay before restart ``n``
    (0-based) is ``backoff_seconds * backoff_factor**n``, capped at
    ``max_backoff_seconds``.
    """

    __slots__ = ("max_restarts", "backoff_seconds", "backoff_factor", "max_backoff_seconds")

    def __init__(
        self,
        max_restarts: int = 3,
        backoff_seconds: float = 0.0,
        backoff_factor: float = 2.0,
        max_backoff_seconds: float = 30.0,
    ) -> None:
        if max_restarts < 0:
            raise ValueError(f"max_restarts must be >= 0, got {max_restarts}")
        if backoff_seconds < 0 or max_backoff_seconds < 0:
            raise ValueError("backoff durations must be non-negative")
        if backoff_factor < 1.0:
            raise ValueError(f"backoff_factor must be >= 1, got {backoff_factor}")
        self.max_restarts = max_restarts
        self.backoff_seconds = backoff_seconds
        self.backoff_factor = backoff_factor
        self.max_backoff_seconds = max_backoff_seconds

    def delay(self, attempt: int) -> float:
        """Backoff before the given 0-based restart attempt."""
        if self.backoff_seconds == 0.0:
            return 0.0
        return min(
            self.max_backoff_seconds,
            self.backoff_seconds * self.backoff_factor**attempt,
        )


class MemoryPressure:
    """Explicit load-shedding signal handed to ``on_pressure``."""

    __slots__ = ("state_bytes", "limit_bytes", "cursor")

    def __init__(self, state_bytes: int, limit_bytes: int, cursor: int) -> None:
        self.state_bytes = state_bytes
        self.limit_bytes = limit_bytes
        self.cursor = cursor

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"MemoryPressure({self.state_bytes} > {self.limit_bytes} bytes "
            f"at cursor {self.cursor})"
        )


class MemoryGuard:
    """Bounded-memory policy over an operator's retained state.

    ``max_state_bytes`` is the shed threshold (measured with
    :func:`repro.runtime.memory.deep_sizeof` over ``state_objects()``);
    shedding stops once state falls to ``resume_state_bytes`` (default:
    three quarters of the limit).  ``check_every`` throttles how often
    the measurement runs while below the limit.
    """

    __slots__ = ("max_state_bytes", "resume_state_bytes", "check_every")

    def __init__(
        self,
        max_state_bytes: int,
        *,
        resume_state_bytes: Optional[int] = None,
        check_every: int = 256,
    ) -> None:
        if max_state_bytes <= 0:
            raise ValueError(f"max_state_bytes must be positive, got {max_state_bytes}")
        if check_every < 1:
            raise ValueError(f"check_every must be >= 1, got {check_every}")
        self.max_state_bytes = max_state_bytes
        self.resume_state_bytes = (
            resume_state_bytes
            if resume_state_bytes is not None
            else max_state_bytes * 3 // 4
        )
        if self.resume_state_bytes > max_state_bytes:
            raise ValueError("resume_state_bytes must not exceed max_state_bytes")
        self.check_every = check_every

    def state_bytes(self, operator: WindowOperator) -> int:
        return sum(deep_sizeof(obj) for obj in operator.state_objects())


class Checkpoint:
    """One durable recovery point: operator snapshot + source cursor."""

    __slots__ = ("blob", "cursor", "records_processed")

    def __init__(self, blob: bytes, cursor: int, records_processed: int) -> None:
        self.blob = blob
        self.cursor = cursor
        self.records_processed = records_processed

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Checkpoint(cursor={self.cursor}, "
            f"records={self.records_processed}, {len(self.blob)} bytes)"
        )


def _count_records(elements: Sequence[StreamElement]) -> int:
    return sum(1 for element in elements if isinstance(element, Record))


class SupervisedPipeline:
    """Crash-surviving driver: source cursor + checkpoints + replay.

    Parameters
    ----------
    operator:
        The window operator to supervise.  A wrapper with a true
        ``transient`` attribute (e.g.
        :class:`~repro.runtime.faults.FaultInjectingOperator`) is kept
        alive across restarts and only its ``inner`` operator is
        snapshotted/restored -- fault bookkeeping is environment, not
        state.
    sink:
        Anything with an ``emit(result)`` method; observes each window
        result exactly once.
    checkpoint_every:
        Snapshot cadence in records; evaluated at batch boundaries.
    batch_size:
        Elements per :meth:`WindowOperator.process_batch` call.
    restart_policy:
        Retry/backoff budget (default: 3 restarts, no backoff).
    memory_guard / on_pressure:
        Optional bounded-memory degradation (see module docstring).
    late_record_sink:
        Optional callable (or object with ``append``) receiving records
        dropped beyond the allowed lateness, exactly once each.
    sleep / clock:
        Injectable for tests; default ``time.sleep`` /
        ``time.perf_counter``.
    """

    def __init__(
        self,
        operator: WindowOperator,
        sink,
        *,
        checkpoint_every: int = 1_000,
        batch_size: int = 1,
        restart_policy: Optional[RestartPolicy] = None,
        memory_guard: Optional[MemoryGuard] = None,
        on_pressure: Optional[Callable[[MemoryPressure], None]] = None,
        late_record_sink=None,
        stats: Optional[RecoveryStats] = None,
        sleep: Callable[[float], None] = time.sleep,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if checkpoint_every < 1:
            raise ValueError(f"checkpoint_every must be >= 1, got {checkpoint_every}")
        if batch_size < 1:
            raise ValueError(f"batch_size must be >= 1, got {batch_size}")
        self._operator = operator
        self.sink = sink
        self.checkpoint_every = checkpoint_every
        self.batch_size = batch_size
        self.policy = restart_policy if restart_policy is not None else RestartPolicy()
        self.guard = memory_guard
        self.on_pressure = on_pressure
        if late_record_sink is not None and not callable(late_record_sink):
            late_record_sink = late_record_sink.append
        self._late_sink = late_record_sink
        self.stats = stats if stats is not None else RecoveryStats()
        self._sleep = sleep
        self._clock = clock

        self.checkpoint: Optional[Checkpoint] = None
        self._failures: List[BaseException] = []
        # Cursor ranges [start, end) whose records were shed; decisions
        # are replayed from this log, never re-taken, so recovery replay
        # filters exactly the records the original pass filtered.
        self._shed_ranges: List[List[Optional[int]]] = []
        self._decided_to = 0
        self._high_cursor = 0
        self._last_guard_check = 0
        # Late-record reports are buffered per batch and flushed only
        # when the batch succeeds on its first (non-replay) pass, so a
        # crashed half-batch or a replayed batch never reports twice.
        self._late_buffer: List[Record] = []

    # ------------------------------------------------------------------
    # operator (un)wrapping

    @property
    def operator(self) -> WindowOperator:
        """The supervised operator (the wrapper, when one was given)."""
        return self._operator

    def _snapshot_target(self) -> WindowOperator:
        operator = self._operator
        if getattr(operator, "transient", False):
            return operator.inner
        return operator

    def _reseat(self, restored: WindowOperator) -> None:
        operator = self._operator
        if getattr(operator, "transient", False):
            operator.inner = restored
        else:
            self._operator = restored
        self._install_late_hook()

    def _install_late_hook(self) -> None:
        self._snapshot_target().on_late_record = self._on_late_record

    def _on_late_record(self, record: Record) -> None:
        self._late_buffer.append(record)

    def _flush_late_buffer(self, replayed_batch: bool) -> None:
        buffered, self._late_buffer = self._late_buffer, []
        if replayed_batch:
            return  # already reported before the crash: exactly once
        for record in buffered:
            self.stats.late_records += 1
            if self._late_sink is not None:
                self._late_sink(record)

    # ------------------------------------------------------------------
    # checkpointing

    def _take_checkpoint(self, cursor: int, records_processed: int) -> None:
        self.checkpoint = Checkpoint(
            snapshot(self._snapshot_target()), cursor, records_processed
        )
        self.stats.checkpoints_taken += 1

    # ------------------------------------------------------------------
    # memory guard / load shedding

    def _shed_filter(self, cursor: int, batch: List[StreamElement]) -> List[StreamElement]:
        """Apply (and, past the decision horizon, extend) the shed log."""
        end = cursor + len(batch)
        if cursor >= self._decided_to:
            self._decide_shedding(cursor, end)
            self._decided_to = end
            count_new = True
        else:
            count_new = False
        if not self._cursor_shed(cursor):
            return batch
        kept = [e for e in batch if not isinstance(e, Record)]
        if count_new:
            self.stats.shed_records += len(batch) - len(kept)
        return kept

    def _cursor_shed(self, cursor: int) -> bool:
        for start, end in self._shed_ranges:
            if start <= cursor and (end is None or cursor < end):
                return True
        return False

    def _decide_shedding(self, cursor: int, end: int) -> None:
        guard = self.guard
        if guard is None:
            return
        open_range = self._shed_ranges and self._shed_ranges[-1][1] is None
        if open_range:
            # Shedding: re-measure every batch to resume promptly.
            if guard.state_bytes(self._snapshot_target()) <= guard.resume_state_bytes:
                self._shed_ranges[-1][1] = cursor
        else:
            records_unchecked = end - self._last_guard_check
            if records_unchecked < guard.check_every:
                return
            self._last_guard_check = end
            state_bytes = guard.state_bytes(self._snapshot_target())
            if state_bytes > guard.max_state_bytes:
                self._shed_ranges.append([cursor, None])
                if self.on_pressure is not None:
                    self.on_pressure(
                        MemoryPressure(state_bytes, guard.max_state_bytes, cursor)
                    )

    # ------------------------------------------------------------------
    # the supervision loop

    def run(self, elements) -> RecoveryStats:
        """Drain the stream, surviving failures; returns the run's stats.

        ``elements`` may be a :class:`ReplayableSource` (e.g. a
        :class:`~repro.runtime.faults.FaultySource`) or any sequence,
        which is materialized into one.
        """
        source = (
            elements
            if isinstance(elements, ReplayableSource)
            else ReplayableSource(elements)
        )
        stats = self.stats
        policy = self.policy
        self._install_late_hook()
        self._last_guard_check = 0
        self._late_buffer.clear()

        self._take_checkpoint(0, 0)
        cursor = 0
        records_done = 0
        records_since_checkpoint = 0
        # Results delivered to the sink since the last checkpoint, and
        # the queue of those a replay is expected to re-produce.
        since_checkpoint: List[WindowResult] = []
        pending_replay: Deque[WindowResult] = deque()
        restarts = 0
        hiccups_in_row = 0
        total = len(source)

        while cursor < total:
            try:
                batch = source.read(cursor, self.batch_size)
            except SourceHiccup as exc:
                # Transient: operator state is intact; retry the read.
                hiccups_in_row += 1
                stats.source_retries += 1
                self._failures.append(exc)
                if hiccups_in_row > policy.max_restarts:
                    raise PipelineFailed(
                        f"source failed {hiccups_in_row} consecutive reads "
                        f"at cursor {cursor}",
                        self._failures,
                    ) from exc
                self._sleep(policy.delay(hiccups_in_row - 1))
                continue
            hiccups_in_row = 0

            to_process = self._shed_filter(cursor, batch)
            replayed_batch = cursor + len(batch) <= self._high_cursor
            try:
                results = self._operator.process_batch(to_process)
            except Exception as exc:
                self._late_buffer.clear()
                restarts += 1
                self._failures.append(exc)
                if restarts > policy.max_restarts:
                    raise PipelineFailed(
                        f"operator failed {restarts} times "
                        f"(max_restarts={policy.max_restarts}); giving up "
                        f"at cursor {cursor}",
                        self._failures,
                    ) from exc
                checkpoint = self.checkpoint
                began = self._clock()
                self._reseat(restore(checkpoint.blob))
                replayed_elements = cursor - checkpoint.cursor
                replayed_records = records_done - checkpoint.records_processed
                cursor = checkpoint.cursor
                records_done = checkpoint.records_processed
                records_since_checkpoint = 0
                pending_replay = deque(since_checkpoint)
                stats.record_recovery(
                    self._clock() - began, replayed_elements, replayed_records
                )
                self._sleep(policy.delay(restarts - 1))
                continue

            self._flush_late_buffer(replayed_batch)
            # Exactly-once delivery: replayed results must match what the
            # sink already observed; only genuinely new results are
            # emitted.
            for result in results:
                if pending_replay:
                    expected = pending_replay.popleft()
                    if expected != result:
                        raise RecoveryError(
                            "replay diverged from the pre-crash run: "
                            f"expected {expected!r}, re-emitted {result!r}"
                        )
                    stats.deduped_results += 1
                else:
                    self.sink.emit(result)
                    since_checkpoint.append(result)
                    stats.results_emitted += 1

            cursor += len(batch)
            if cursor > self._high_cursor:
                self._high_cursor = cursor
            batch_records = _count_records(batch)
            records_done += batch_records
            records_since_checkpoint += batch_records
            if records_since_checkpoint >= self.checkpoint_every:
                self._take_checkpoint(cursor, records_done)
                records_since_checkpoint = 0
                # Results not yet re-matched stay expected for the next
                # replay window; everything older is safely behind the
                # new checkpoint.
                since_checkpoint = list(pending_replay)

        return stats
