"""Incremental aggregate functions (lift / combine / lower / invert).

See :mod:`repro.aggregations.base` for the framework and Section 5.4.1
of the paper for the design.  :func:`default_registry` maps the names
used by the benchmark harness (Figure 13) to instances.
"""

from .base import AggregateFunction, AggregationClass, fold, fold_records
from .basic import Average, Count, Max, Min, Sum, SumWithoutInvert
from .extended import (
    M4,
    ArgMax,
    ArgMin,
    GeometricMean,
    M4Partial,
    MaxCount,
    MinCount,
    PopulationStdDev,
    SampleStdDev,
)
from .holistic import Median, Percentile, PlainMedian, RleRuns, SortedValues
from .ordered import CollectList, ConcatString, First, Last
from .sketches import CountDistinct, Product, TopK

__all__ = [
    "AggregateFunction",
    "AggregationClass",
    "fold",
    "fold_records",
    "Sum",
    "SumWithoutInvert",
    "Count",
    "Average",
    "Min",
    "Max",
    "MinCount",
    "MaxCount",
    "ArgMin",
    "ArgMax",
    "GeometricMean",
    "PopulationStdDev",
    "SampleStdDev",
    "M4",
    "M4Partial",
    "Median",
    "Percentile",
    "PlainMedian",
    "RleRuns",
    "SortedValues",
    "First",
    "Last",
    "CollectList",
    "ConcatString",
    "TopK",
    "CountDistinct",
    "Product",
    "default_registry",
]


def default_registry() -> dict:
    """Return the named aggregation instances used by the benchmarks."""
    return {
        "sum": Sum(),
        "sum w/o invert": SumWithoutInvert(),
        "count": Count(),
        "avg": Average(),
        "min": Min(),
        "max": Max(),
        "mincount": MinCount(),
        "maxcount": MaxCount(),
        "argmin": ArgMin(),
        "argmax": ArgMax(),
        "geomean": GeometricMean(),
        "stddev": PopulationStdDev(),
        "m4": M4(),
        "median": Median(),
        "90-percentile": Percentile(0.9),
    }
