"""Distributive and simple algebraic aggregations.

These correspond to the aggregation catalogue of Tangwongsan et al.
(PVLDB 2015) that the paper benchmarks in Figure 13: Sum, Count, Average,
Min, Max, and the deliberately crippled ``SumWithoutInvert`` used in the
paper to show the cost of losing invertibility on count-based windows.
"""

from __future__ import annotations

from typing import Any, Optional, Tuple

from .base import AggregateFunction, AggregationClass

__all__ = [
    "Sum",
    "SumWithoutInvert",
    "Count",
    "Average",
    "Min",
    "Max",
]


class Sum(AggregateFunction[float, float, float]):
    """Invertible, commutative, distributive sum."""

    name = "sum"
    commutative = True
    invertible = True
    kind = AggregationClass.DISTRIBUTIVE

    def lift(self, value: float) -> float:
        return value

    def combine(self, left: float, right: float) -> float:
        return left + right

    def lower(self, partial: float) -> float:
        return partial

    def invert(self, partial: float, removed: float) -> float:
        return partial - removed

    def identity(self) -> float:
        return 0

    def fold_values(self, partial, values):
        # ``sum(values, start)`` is the same left-to-right addition chain
        # as repeated ``combine``; seeding from the first value avoids a
        # spurious ``0 + v`` step so results stay bit-identical.
        if partial is None:
            if not values:
                return None
            return sum(values[1:], values[0])
        return sum(values, partial)


class SumWithoutInvert(Sum):
    """Sum with invertibility disabled (the paper's "sum w/o invert").

    Used to measure the recomputation cost incurred by non-invertible
    aggregations whose invert would *always* change the aggregate
    (Figure 13): every record shift between count-based slices forces a
    full recomputation of the slice aggregate.
    """

    name = "sum w/o invert"
    invertible = False

    def invert(self, partial: float, removed: float) -> float:
        raise NotImplementedError("sum w/o invert deliberately lacks invert")


class Count(AggregateFunction[Any, int, int]):
    """Invertible, commutative, distributive count."""

    name = "count"
    commutative = True
    invertible = True
    kind = AggregationClass.DISTRIBUTIVE

    def lift(self, value: Any) -> int:
        return 1

    def combine(self, left: int, right: int) -> int:
        return left + right

    def lower(self, partial: int) -> int:
        return partial

    def invert(self, partial: int, removed: int) -> int:
        return partial - removed

    def identity(self) -> int:
        return 0

    def empty_result(self) -> int:
        return 0

    def fold_values(self, partial, values):
        if not values:
            return partial
        return len(values) if partial is None else partial + len(values)


class Average(AggregateFunction[float, Tuple[float, int], float]):
    """Algebraic average: the partial is a ``(sum, count)`` pair."""

    name = "avg"
    commutative = True
    invertible = True
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: float) -> Tuple[float, int]:
        return (value, 1)

    def combine(self, left: Tuple[float, int], right: Tuple[float, int]) -> Tuple[float, int]:
        return (left[0] + right[0], left[1] + right[1])

    def lower(self, partial: Tuple[float, int]) -> Optional[float]:
        total, count = partial
        if count == 0:
            return None
        return total / count

    def invert(self, partial: Tuple[float, int], removed: Tuple[float, int]) -> Tuple[float, int]:
        return (partial[0] - removed[0], partial[1] - removed[1])

    def identity(self) -> Tuple[float, int]:
        return (0.0, 0)

    def fold_values(self, partial, values):
        if not values:
            return partial
        if partial is None:
            return (sum(values[1:], values[0]), len(values))
        return (sum(values, partial[0]), partial[1] + len(values))


class Min(AggregateFunction[float, float, float]):
    """Non-invertible, commutative, distributive minimum.

    Although min has no invert, removals rarely change the aggregate:
    the slice manager first checks whether the removed value *is* the
    current minimum and only then recomputes (Section 6.3.2, "impact of
    invertibility").  That check is :meth:`unaffected_by_removal`.
    """

    name = "min"
    commutative = True
    invertible = False
    kind = AggregationClass.DISTRIBUTIVE

    def lift(self, value: float) -> float:
        return value

    def combine(self, left: float, right: float) -> float:
        return left if left <= right else right

    def lower(self, partial: float) -> float:
        return partial

    def unaffected_by_removal(self, partial: float, removed_value: float) -> bool:
        """True when removing ``removed_value`` cannot change ``partial``."""
        return removed_value > partial

    def fold_values(self, partial, values):
        # Builtin ``min`` keeps the first minimal element, matching the
        # sequential combine's tie-break toward the earlier operand.
        if not values:
            return partial
        low = min(values)
        return low if partial is None else self.combine(partial, low)


class Max(AggregateFunction[float, float, float]):
    """Non-invertible, commutative, distributive maximum."""

    name = "max"
    commutative = True
    invertible = False
    kind = AggregationClass.DISTRIBUTIVE

    def lift(self, value: float) -> float:
        return value

    def combine(self, left: float, right: float) -> float:
        return left if left >= right else right

    def lower(self, partial: float) -> float:
        return partial

    def unaffected_by_removal(self, partial: float, removed_value: float) -> bool:
        """True when removing ``removed_value`` cannot change ``partial``."""
        return removed_value < partial

    def fold_values(self, partial, values):
        if not values:
            return partial
        high = max(values)
        return high if partial is None else self.combine(partial, high)
