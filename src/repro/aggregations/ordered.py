"""Order-sensitive (non-commutative) aggregations.

These exercise branch (1) of the decision tree in Figure 4: on
out-of-order streams a non-commutative aggregation forces the slicer to
retain raw records so slice aggregates can be recomputed in event-time
order when a late record lands in the middle of a slice.
"""

from __future__ import annotations

from typing import Any, List, Tuple

from .base import AggregateFunction, AggregationClass

__all__ = ["First", "Last", "CollectList", "ConcatString"]


class First(AggregateFunction[Any, Any, Any]):
    """The first value in stream order."""

    name = "first"
    commutative = False
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: Any) -> Any:
        return value

    def combine(self, left: Any, right: Any) -> Any:
        return left

    def lower(self, partial: Any) -> Any:
        return partial


class Last(AggregateFunction[Any, Any, Any]):
    """The last value in stream order."""

    name = "last"
    commutative = False
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: Any) -> Any:
        return value

    def combine(self, left: Any, right: Any) -> Any:
        return right

    def lower(self, partial: Any) -> Any:
        return partial


class CollectList(AggregateFunction[Any, Tuple[Any, ...], List[Any]]):
    """Collect all values in stream order (holistic and non-commutative).

    Partials are tuples so they stay immutable under sharing.
    """

    name = "collect"
    commutative = False
    invertible = False
    kind = AggregationClass.HOLISTIC

    def lift(self, value: Any) -> Tuple[Any, ...]:
        return (value,)

    def combine(self, left: Tuple[Any, ...], right: Tuple[Any, ...]) -> Tuple[Any, ...]:
        return left + right

    def lower(self, partial: Tuple[Any, ...]) -> List[Any]:
        return list(partial)

    def identity(self) -> Tuple[Any, ...]:
        return ()

    def empty_result(self) -> List[Any]:
        return []


class ConcatString(AggregateFunction[str, str, str]):
    """Concatenate string values in stream order."""

    name = "concat"
    commutative = False
    invertible = False
    kind = AggregationClass.HOLISTIC

    def __init__(self, separator: str = "") -> None:
        self.separator = separator

    def signature(self) -> tuple:
        return (type(self), self.separator)

    def lift(self, value: str) -> str:
        return str(value)

    def combine(self, left: str, right: str) -> str:
        return left + self.separator + right

    def lower(self, partial: str) -> str:
        return partial

    def empty_result(self) -> str:
        return ""
