"""Extended algebraic aggregations from Tangwongsan et al.'s catalogue.

Covers the remaining functions the paper benchmarks in Figure 13
(MinCount, MaxCount, ArgMin, ArgMax, GeoMean, StdDev) plus the M4
aggregation (Jugel et al., PVLDB 2014) that drives the dashboard
workload of Section 6.4.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

from .base import AggregateFunction, AggregationClass

__all__ = [
    "MinCount",
    "MaxCount",
    "ArgMin",
    "ArgMax",
    "GeometricMean",
    "PopulationStdDev",
    "SampleStdDev",
    "M4",
    "M4Partial",
]


class MinCount(AggregateFunction[float, Tuple[float, int], Tuple[float, int]]):
    """Minimum together with its multiplicity: ``(min, count_of_min)``."""

    name = "mincount"
    commutative = True
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: float) -> Tuple[float, int]:
        return (value, 1)

    def combine(self, left: Tuple[float, int], right: Tuple[float, int]) -> Tuple[float, int]:
        if left[0] < right[0]:
            return left
        if right[0] < left[0]:
            return right
        return (left[0], left[1] + right[1])

    def lower(self, partial: Tuple[float, int]) -> Tuple[float, int]:
        return partial

    def unaffected_by_removal(self, partial: Tuple[float, int], removed: Tuple[float, int]) -> bool:
        return removed[0] > partial[0]


class MaxCount(AggregateFunction[float, Tuple[float, int], Tuple[float, int]]):
    """Maximum together with its multiplicity: ``(max, count_of_max)``."""

    name = "maxcount"
    commutative = True
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: float) -> Tuple[float, int]:
        return (value, 1)

    def combine(self, left: Tuple[float, int], right: Tuple[float, int]) -> Tuple[float, int]:
        if left[0] > right[0]:
            return left
        if right[0] > left[0]:
            return right
        return (left[0], left[1] + right[1])

    def lower(self, partial: Tuple[float, int]) -> Tuple[float, int]:
        return partial

    def unaffected_by_removal(self, partial: Tuple[float, int], removed: Tuple[float, int]) -> bool:
        return removed[0] < partial[0]


class ArgMin(AggregateFunction[Tuple[float, Any], Tuple[float, Any], Any]):
    """Argument of the minimum.

    Input values are ``(sort_key, payload)`` pairs; the result is the
    payload of the smallest key (earliest wins on ties, which keeps the
    function associative but makes it order-sensitive only on exact
    ties -- we treat it as commutative like the original catalogue).
    """

    name = "argmin"
    commutative = True
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: Tuple[float, Any]) -> Tuple[float, Any]:
        key, payload = value
        return (key, payload)

    def combine(self, left: Tuple[float, Any], right: Tuple[float, Any]) -> Tuple[float, Any]:
        return left if left[0] <= right[0] else right

    def lower(self, partial: Tuple[float, Any]) -> Any:
        return partial[1]

    def unaffected_by_removal(self, partial: Tuple[float, Any], removed_value: Tuple[float, Any]) -> bool:
        return removed_value[0] > partial[0]


class ArgMax(AggregateFunction[Tuple[float, Any], Tuple[float, Any], Any]):
    """Argument of the maximum (see :class:`ArgMin`)."""

    name = "argmax"
    commutative = True
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: Tuple[float, Any]) -> Tuple[float, Any]:
        key, payload = value
        return (key, payload)

    def combine(self, left: Tuple[float, Any], right: Tuple[float, Any]) -> Tuple[float, Any]:
        return left if left[0] >= right[0] else right

    def lower(self, partial: Tuple[float, Any]) -> Any:
        return partial[1]

    def unaffected_by_removal(self, partial: Tuple[float, Any], removed_value: Tuple[float, Any]) -> bool:
        return removed_value[0] < partial[0]


class GeometricMean(AggregateFunction[float, Tuple[float, int], float]):
    """Geometric mean via a ``(sum_of_logs, count)`` partial.

    Requires strictly positive inputs.  Invertible (subtract the log).
    """

    name = "geomean"
    commutative = True
    invertible = True
    #: Log-sum partials are non-integral floats even for integer inputs,
    #: so subtracting a log back out drifts from recomputation.
    exact_invert = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: float) -> Tuple[float, int]:
        if value <= 0:
            raise ValueError("geometric mean requires positive values")
        return (math.log(value), 1)

    def combine(self, left: Tuple[float, int], right: Tuple[float, int]) -> Tuple[float, int]:
        return (left[0] + right[0], left[1] + right[1])

    def lower(self, partial: Tuple[float, int]) -> Optional[float]:
        log_sum, count = partial
        if count == 0:
            return None
        return math.exp(log_sum / count)

    def invert(self, partial: Tuple[float, int], removed: Tuple[float, int]) -> Tuple[float, int]:
        return (partial[0] - removed[0], partial[1] - removed[1])

    def identity(self) -> Tuple[float, int]:
        return (0.0, 0)


class PopulationStdDev(AggregateFunction[float, Tuple[float, float, int], float]):
    """Population standard deviation via ``(sum, sum_of_squares, count)``."""

    name = "stddev"
    commutative = True
    invertible = True
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: float) -> Tuple[float, float, int]:
        return (value, value * value, 1)

    def combine(
        self, left: Tuple[float, float, int], right: Tuple[float, float, int]
    ) -> Tuple[float, float, int]:
        return (left[0] + right[0], left[1] + right[1], left[2] + right[2])

    def lower(self, partial: Tuple[float, float, int]) -> Optional[float]:
        total, squares, count = partial
        if count == 0:
            return None
        mean = total / count
        variance = max(squares / count - mean * mean, 0.0)
        return math.sqrt(variance)

    def invert(
        self, partial: Tuple[float, float, int], removed: Tuple[float, float, int]
    ) -> Tuple[float, float, int]:
        return (partial[0] - removed[0], partial[1] - removed[1], partial[2] - removed[2])

    def identity(self) -> Tuple[float, float, int]:
        return (0.0, 0.0, 0)


class SampleStdDev(PopulationStdDev):
    """Sample (Bessel-corrected) standard deviation."""

    name = "sample stddev"

    def lower(self, partial: Tuple[float, float, int]) -> Optional[float]:
        total, squares, count = partial
        if count < 2:
            return None
        mean = total / count
        variance = max((squares - count * mean * mean) / (count - 1), 0.0)
        return math.sqrt(variance)


class M4Partial:
    """Partial aggregate of the M4 visualization aggregation.

    Tracks minimum, maximum, first, and last value of the covered stream
    segment; ``first``/``last`` are ordered by stream position, which the
    combine order supplies (M4 is *not* commutative).
    """

    __slots__ = ("min", "max", "first", "last")

    def __init__(self, minimum: float, maximum: float, first: float, last: float) -> None:
        self.min = minimum
        self.max = maximum
        self.first = first
        self.last = last

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, M4Partial)
            and (self.min, self.max, self.first, self.last)
            == (other.min, other.max, other.first, other.last)
        )

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"M4Partial(min={self.min}, max={self.max}, first={self.first}, last={self.last})"

    def as_tuple(self) -> Tuple[float, float, float, float]:
        return (self.min, self.max, self.first, self.last)


class M4(AggregateFunction[float, M4Partial, Tuple[float, float, float, float]]):
    """M4 time-series compression: (min, max, first, last) per window.

    The aggregation behind the live-dashboard workload (Section 6.4).
    ``first`` and ``last`` depend on stream order, so M4 is
    non-commutative: out-of-order streams force the general slicer to
    retain records (Figure 4, branch 1).
    """

    name = "m4"
    commutative = False
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: float) -> M4Partial:
        return M4Partial(value, value, value, value)

    def combine(self, left: M4Partial, right: M4Partial) -> M4Partial:
        return M4Partial(
            left.min if left.min <= right.min else right.min,
            left.max if left.max >= right.max else right.max,
            left.first,
            right.last,
        )

    def lower(self, partial: M4Partial) -> Tuple[float, float, float, float]:
        return partial.as_tuple()
