"""Holistic aggregations: medians and arbitrary percentiles.

Holistic functions have unbounded partial-aggregate size (Section 4.2).
Following Section 5.4.1 of the paper, we keep the values of a slice
*sorted* and apply *run-length encoding* so that

* merging two slices is a linear merge of sorted runs instead of a
  re-sort, and
* memory shrinks with the number of distinct values -- the effect that
  makes the low-cardinality machine dataset faster than the football
  dataset in Figure 14.

:class:`RleRuns` is the shared partial-aggregate representation; the
ablation benchmark ``test_ablation_rle`` compares it against plain
sorted lists (:class:`SortedValues`).
"""

from __future__ import annotations

import bisect
from typing import List, Optional, Sequence, Tuple

from .base import AggregateFunction, AggregationClass

__all__ = ["RleRuns", "SortedValues", "Median", "Percentile", "PlainMedian"]


class RleRuns:
    """A sorted multiset encoded as run-length ``(value, count)`` pairs."""

    __slots__ = ("runs", "total")

    def __init__(self, runs: Optional[List[Tuple[float, int]]] = None) -> None:
        self.runs: List[Tuple[float, int]] = runs if runs is not None else []
        self.total = sum(count for _, count in self.runs)

    @classmethod
    def of(cls, value: float) -> "RleRuns":
        """Build a single-value multiset."""
        return cls([(value, 1)])

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "RleRuns":
        """Build a multiset from an arbitrary (unsorted) sequence."""
        runs: List[Tuple[float, int]] = []
        for value in sorted(values):
            if runs and runs[-1][0] == value:
                runs[-1] = (value, runs[-1][1] + 1)
            else:
                runs.append((value, 1))
        return cls(runs)

    def merge(self, other: "RleRuns") -> "RleRuns":
        """Linear merge of two sorted run lists, coalescing equal values."""
        merged: List[Tuple[float, int]] = []
        left, right = self.runs, other.runs
        i = j = 0
        while i < len(left) and j < len(right):
            lv, lc = left[i]
            rv, rc = right[j]
            if lv < rv:
                value, count = lv, lc
                i += 1
            elif rv < lv:
                value, count = rv, rc
                j += 1
            else:
                value, count = lv, lc + rc
                i += 1
                j += 1
            if merged and merged[-1][0] == value:
                merged[-1] = (value, merged[-1][1] + count)
            else:
                merged.append((value, count))
        merged.extend(left[i:])
        merged.extend(right[j:])
        return RleRuns(merged)

    def subtract(self, other: "RleRuns") -> "RleRuns":
        """Multiset difference ``self - other`` (``other`` must be contained)."""
        result: List[Tuple[float, int]] = []
        removal = {value: count for value, count in other.runs}
        for value, count in self.runs:
            remaining = count - removal.pop(value, 0)
            if remaining < 0:
                raise ValueError(f"cannot remove {count - remaining}x {value}: only {count} present")
            if remaining:
                result.append((value, remaining))
        if removal:
            missing = next(iter(removal))
            raise ValueError(f"cannot remove value {missing}: not present")
        return RleRuns(result)

    def select(self, index: int) -> float:
        """Return the ``index``-th smallest value (zero-based)."""
        if index < 0 or index >= self.total:
            raise IndexError(f"rank {index} out of range for {self.total} values")
        seen = 0
        for value, count in self.runs:
            seen += count
            if index < seen:
                return value
        raise AssertionError("unreachable: run totals inconsistent")

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile ``q`` in [0, 1]."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.total == 0:
            raise ValueError("quantile of an empty multiset")
        rank = min(self.total - 1, max(0, int(q * self.total)))
        return self.select(rank)

    def distinct(self) -> int:
        """Number of distinct values (RLE run count)."""
        return len(self.runs)

    def __len__(self) -> int:
        return self.total

    def __eq__(self, other: object) -> bool:
        return isinstance(other, RleRuns) and self.runs == other.runs

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RleRuns(total={self.total}, distinct={len(self.runs)})"


class SortedValues:
    """Plain sorted-list multiset -- the non-RLE ablation baseline."""

    __slots__ = ("values",)

    def __init__(self, values: Optional[List[float]] = None) -> None:
        self.values: List[float] = values if values is not None else []

    @classmethod
    def of(cls, value: float) -> "SortedValues":
        """Build a single-value multiset."""
        return cls([value])

    def merge(self, other: "SortedValues") -> "SortedValues":
        """Linear merge of two sorted lists."""
        merged: List[float] = []
        left, right = self.values, other.values
        i = j = 0
        while i < len(left) and j < len(right):
            if left[i] <= right[j]:
                merged.append(left[i])
                i += 1
            else:
                merged.append(right[j])
                j += 1
        merged.extend(left[i:])
        merged.extend(right[j:])
        return SortedValues(merged)

    def subtract(self, other: "SortedValues") -> "SortedValues":
        """Multiset difference (every removed value must be present)."""
        result = list(self.values)
        for value in other.values:
            position = bisect.bisect_left(result, value)
            if position >= len(result) or result[position] != value:
                raise ValueError(f"cannot remove value {value}: not present")
            result.pop(position)
        return SortedValues(result)

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile ``q`` in [0, 1]."""
        if not self.values:
            raise ValueError("quantile of an empty multiset")
        rank = min(len(self.values) - 1, max(0, int(q * len(self.values))))
        return self.values[rank]

    def __len__(self) -> int:
        return len(self.values)


class Percentile(AggregateFunction[float, RleRuns, float]):
    """Nearest-rank percentile over RLE-encoded sorted runs.

    Invertible in the multiset sense (runs can be subtracted), which the
    count-shift path exploits; holistic size still forces record
    retention via the decision tree.
    """

    name = "percentile"
    commutative = True
    invertible = True
    kind = AggregationClass.HOLISTIC

    def __init__(self, q: float) -> None:
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        self.q = q
        self.name = f"{int(round(q * 100))}-percentile"

    def lift(self, value: float) -> RleRuns:
        return RleRuns.of(value)

    def combine(self, left: RleRuns, right: RleRuns) -> RleRuns:
        return left.merge(right)

    def lower(self, partial: RleRuns) -> Optional[float]:
        if partial.total == 0:
            return None
        return partial.quantile(self.q)

    def invert(self, partial: RleRuns, removed: RleRuns) -> RleRuns:
        return partial.subtract(removed)

    def identity(self) -> RleRuns:
        return RleRuns()

    def signature(self) -> tuple:
        return (type(self), self.q)


class Median(Percentile):
    """The 50th percentile, the paper's canonical holistic function."""

    def __init__(self) -> None:
        super().__init__(0.5)
        self.name = "median"


class PlainMedian(AggregateFunction[float, SortedValues, float]):
    """Median over plain sorted lists (ablation: no run-length encoding)."""

    name = "median (no RLE)"
    commutative = True
    invertible = True
    kind = AggregationClass.HOLISTIC

    def lift(self, value: float) -> SortedValues:
        return SortedValues.of(value)

    def combine(self, left: SortedValues, right: SortedValues) -> SortedValues:
        return left.merge(right)

    def lower(self, partial: SortedValues) -> Optional[float]:
        if not len(partial):
            return None
        return partial.quantile(0.5)

    def invert(self, partial: SortedValues, removed: SortedValues) -> SortedValues:
        return partial.subtract(removed)

    def identity(self) -> SortedValues:
        return SortedValues()
