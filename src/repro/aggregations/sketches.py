"""Additional aggregations: top-k, distinct counting, products.

These extend the Tangwongsan catalogue with functions common in
monitoring workloads.  They slot into the same lift/combine/lower
framework and demonstrate Section 5.4.1's extension point: adding an
aggregation requires no change to the slicing core.
"""

from __future__ import annotations

import heapq
from typing import Any, FrozenSet, List, Tuple

from .base import AggregateFunction, AggregationClass

__all__ = ["TopK", "CountDistinct", "Product"]


class TopK(AggregateFunction[float, Tuple[float, ...], List[float]]):
    """The k largest values of the window (holistic).

    Partials are descending-sorted tuples of at most ``k`` values, so a
    combine is a bounded merge: memory stays O(k) per slice even though
    the function is classified holistic (its partial depends on
    individual input values, not a fixed-size summary of them).
    """

    name = "top-k"
    commutative = True
    invertible = False
    kind = AggregationClass.HOLISTIC

    def __init__(self, k: int) -> None:
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        self.k = k
        self.name = f"top-{k}"

    def signature(self) -> tuple:
        return (type(self), self.k)

    def lift(self, value: float) -> Tuple[float, ...]:
        return (value,)

    def combine(self, left: Tuple[float, ...], right: Tuple[float, ...]) -> Tuple[float, ...]:
        merged = heapq.nlargest(self.k, left + right)
        return tuple(merged)

    def lower(self, partial: Tuple[float, ...]) -> List[float]:
        return list(partial)

    def identity(self) -> Tuple[float, ...]:
        return ()

    def empty_result(self) -> List[float]:
        return []


class CountDistinct(AggregateFunction[Any, FrozenSet[Any], int]):
    """Exact distinct count via frozen sets (holistic).

    Useful as a workload with partial-aggregate size proportional to
    the value cardinality -- the property the Figure 14 datasets vary.
    """

    name = "count distinct"
    commutative = True
    invertible = False
    kind = AggregationClass.HOLISTIC

    def lift(self, value: Any) -> FrozenSet[Any]:
        return frozenset((value,))

    def combine(self, left: FrozenSet[Any], right: FrozenSet[Any]) -> FrozenSet[Any]:
        return left | right

    def lower(self, partial: FrozenSet[Any]) -> int:
        return len(partial)

    def identity(self) -> FrozenSet[Any]:
        return frozenset()

    def empty_result(self) -> int:
        return 0


class Product(AggregateFunction[float, Tuple[float, int], float]):
    """Product of all values, invertible despite zeros.

    Plain division breaks on zero inputs, so the partial tracks the
    product of the *non-zero* values plus a zero counter -- a classic
    trick to keep an "almost invertible" function invertible.
    """

    name = "product"
    commutative = True
    invertible = True
    #: Division does not exactly reverse multiplication in floats, so
    #: subtract-based eviction drifts from recomputation.
    exact_invert = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value: float) -> Tuple[float, int]:
        if value == 0:
            return (1.0, 1)
        return (float(value), 0)

    def combine(self, left: Tuple[float, int], right: Tuple[float, int]) -> Tuple[float, int]:
        return (left[0] * right[0], left[1] + right[1])

    def lower(self, partial: Tuple[float, int]) -> float:
        nonzero, zeros = partial
        return 0.0 if zeros > 0 else nonzero

    def invert(self, partial: Tuple[float, int], removed: Tuple[float, int]) -> Tuple[float, int]:
        nonzero, zeros = partial
        removed_nonzero, removed_zeros = removed
        return (nonzero / removed_nonzero, zeros - removed_zeros)

    def identity(self) -> Tuple[float, int]:
        return (1.0, 0)
