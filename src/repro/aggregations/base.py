"""The incremental aggregation framework (Section 5.4.1 of the paper).

Every aggregation is described by four functions, following Tangwongsan
et al. (General Incremental Sliding-Window Aggregation, PVLDB 2015):

``lift``
    Transform one input value into a partial aggregate.
``combine`` (:math:`\\oplus`)
    Merge two partial aggregates into one.  Must be associative; slicing
    relies on associativity to share partials among windows.
``lower``
    Turn a partial aggregate into the final window result.
``invert`` (:math:`\\ominus`, optional)
    Remove a partial aggregate from another incrementally.  Only
    invertible aggregations provide it; the slice manager exploits it to
    shift records between count-based slices cheaply (Figure 6).

Algebraic properties (Section 4.2) are exposed as class attributes so
that the workload-characterization logic (:mod:`repro.core.characteristics`)
can inspect registered queries:

* ``commutative`` -- whether :math:`x \\oplus y = y \\oplus x`.  Slicing
  must keep raw records for non-commutative aggregations on out-of-order
  streams (Figure 4).
* ``invertible`` -- whether an ``invert`` implementation exists.
* ``kind`` -- distributive / algebraic / holistic (Gray et al.).
  Holistic aggregations have unbounded partial-aggregate size and force
  record retention.
"""

from __future__ import annotations

import enum
from typing import Any, Generic, Iterable, Optional, Sequence, TypeVar

V = TypeVar("V")  # input value
P = TypeVar("P")  # partial aggregate
R = TypeVar("R")  # final result

__all__ = ["AggregationClass", "AggregateFunction", "fold", "fold_records"]


class AggregationClass(enum.Enum):
    """Gray et al.'s classification of aggregate functions (Section 4.2)."""

    #: Partials equal finals and have constant size (sum, min, max).
    DISTRIBUTIVE = "distributive"
    #: Fixed-size intermediate summarizes the partials (avg, M4, variance).
    ALGEBRAIC = "algebraic"
    #: Partial aggregates grow without bound (median, percentiles).
    HOLISTIC = "holistic"


class AggregateFunction(Generic[V, P, R]):
    """Base class for all aggregations.

    Subclasses implement :meth:`lift`, :meth:`combine`, and :meth:`lower`
    and declare their algebraic properties.  Invertible aggregations
    additionally implement :meth:`invert`.

    Partial aggregates must be treated as immutable values: ``combine``
    and ``invert`` return new partials rather than mutating arguments, so
    partials can safely be shared between slices and aggregate trees.
    """

    #: Human-readable name used in benchmark tables.
    name: str = "aggregate"
    #: All supported aggregations are associative (required for slicing).
    associative: bool = True
    #: Whether combine commutes.
    commutative: bool = True
    #: Whether :meth:`invert` is implemented.
    invertible: bool = False
    #: Whether :meth:`invert` reverses :meth:`combine` exactly on the
    #: partial domain.  True for partials that stay integral under
    #: integer inputs (sums, counts); False when the partial lives in a
    #: transformed float domain (log-sums, running products), where
    #: ``(x ⊕ y) ⊖ y != x`` bit-for-bit.  Subtract-based kernels are
    #: only selected when this holds, keeping slicing bit-identical to
    #: recomputation.  Meaningless unless :attr:`invertible`.
    exact_invert: bool = True
    #: Distributive / algebraic / holistic.
    kind: AggregationClass = AggregationClass.ALGEBRAIC

    def lift(self, value: V) -> P:
        """Transform an input value into a partial aggregate."""
        raise NotImplementedError

    def combine(self, left: P, right: P) -> P:
        """Merge two partial aggregates (the :math:`\\oplus` operation).

        ``left`` precedes ``right`` in stream order; non-commutative
        aggregations rely on this ordering.
        """
        raise NotImplementedError

    def lower(self, partial: P) -> R:
        """Transform a partial aggregate into the final result."""
        raise NotImplementedError

    def invert(self, partial: P, removed: P) -> P:
        """Remove ``removed`` from ``partial`` (the :math:`\\ominus` operation).

        Only available when :attr:`invertible` is ``True``.
        """
        raise NotImplementedError(f"{self.name} is not invertible")

    def identity(self) -> Optional[P]:
        """Return the neutral element of :meth:`combine`, or ``None``.

        Aggregations without a natural identity return ``None``; callers
        must then special-case empty sequences (see :func:`fold`).
        """
        return None

    def lower_or_default(self, partial: Optional[P]) -> Any:
        """Lower ``partial``; empty windows lower to :meth:`empty_result`."""
        if partial is None:
            return self.empty_result()
        return self.lower(partial)

    def empty_result(self) -> Any:
        """The result reported for an empty window (default ``None``)."""
        return None

    def signature(self) -> tuple:
        """Sharing key: queries whose aggregations have equal signatures
        share one partial aggregate per slice.

        Parameterless aggregations share by class; parametrized ones
        (e.g. :class:`~repro.aggregations.holistic.Percentile`) must
        include their parameters.
        """
        return (type(self),)

    def fold_values(self, partial: Optional[P], values: Sequence[V]) -> Optional[P]:
        """Fold a run of raw values into ``partial`` in stream order.

        This is the bulk primitive behind the batched ingestion path:
        a run of in-order records is folded with one call instead of one
        ``lift``/``combine`` round-trip per record.  The default is the
        exact left fold that repeated :meth:`lift` + :meth:`combine`
        would produce, so results are identical on both paths; simple
        distributive aggregations override it with builtin reductions
        (``sum``/``min``/``max``/``len``) for real bulk speedups.
        """
        lift = self.lift
        combine = self.combine
        for value in values:
            lifted = lift(value)
            partial = lifted if partial is None else combine(partial, lifted)
        return partial

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


def fold(
    function: AggregateFunction[V, P, R], values: Iterable[V]
) -> Optional[P]:
    """Fold raw values into one partial aggregate in the given order.

    Returns ``None`` for an empty iterable (windows with no records).
    This is the recomputation primitive used by slice splits and by
    non-commutative out-of-order updates.
    """
    partial: Optional[P] = None
    for value in values:
        lifted = function.lift(value)
        partial = lifted if partial is None else function.combine(partial, lifted)
    return partial


def fold_records(function: AggregateFunction, records: Iterable[Any]) -> Optional[Any]:
    """Fold :class:`~repro.core.types.Record` objects by their ``value``."""
    partial = None
    for record in records:
        lifted = function.lift(record.value)
        partial = lifted if partial is None else function.combine(partial, lifted)
    return partial
