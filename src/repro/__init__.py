"""General stream slicing for efficient window aggregation.

A from-scratch Python reproduction of

    Jonas Traub, Philipp Grulich, Alejandro Rodriguez Cuellar,
    Sebastian Bress, Asterios Katsifodimos, Tilmann Rabl, Volker Markl:
    "Efficient Window Aggregation with General Stream Slicing",
    EDBT 2019.

Quickstart
----------
>>> from repro import GeneralSlicingOperator, Record, Watermark
>>> from repro.windows import TumblingWindow
>>> from repro.aggregations import Sum
>>> op = GeneralSlicingOperator(stream_in_order=True)
>>> _ = op.add_query(TumblingWindow(10), Sum())
>>> results = op.run([Record(ts, 1.0) for ts in range(25)])
>>> [(r.start, r.end, r.value) for r in results]
[(0, 10, 10.0), (10, 20, 10.0)]

The package layout mirrors the paper:

* :mod:`repro.core` -- general stream slicing (Section 5),
* :mod:`repro.aggregations` -- lift/combine/lower/invert functions
  (Section 5.4.1),
* :mod:`repro.windows` -- window types by context class (Section 4.4),
* :mod:`repro.baselines` -- the Section 3 comparison techniques,
* :mod:`repro.runtime` -- the tuple-at-a-time substrate, metrics,
  memory accounting, and key-partitioned parallelism,
* :mod:`repro.data` -- synthetic stand-ins for the paper's datasets,
* :mod:`repro.experiments` -- the per-figure experiment harness.
"""

from .core import (
    GeneralSlicingOperator,
    Punctuation,
    Query,
    Record,
    StreamOrderViolation,
    Tracer,
    Watermark,
    WindowOperator,
    WindowResult,
    WorkloadCharacteristics,
)

__version__ = "1.0.0"

__all__ = [
    "GeneralSlicingOperator",
    "WindowOperator",
    "StreamOrderViolation",
    "Record",
    "Watermark",
    "Punctuation",
    "WindowResult",
    "Query",
    "WorkloadCharacteristics",
    "Tracer",
    "__version__",
]
