"""Synthetic stand-in for the DEBS 2013 football sensor dataset.

The paper replays ball-position sensor data from a football match
(Mutschler et al., DEBS 2013 grand challenge): roughly 2000 position
updates per second, with the authors adding "5 gaps per minute to
separate sessions" (ball possession changing players).  The original
dataset is not redistributable, so this generator reproduces the
characteristics the experiments actually depend on:

* update rate: ``rate`` records per second (default 2000);
* session gaps: ``gaps_per_minute`` inactivity gaps longer than typical
  session timeouts (default 5/min, ~1.5 s long);
* value distribution: ball speed-like continuous values with ~84 232
  distinct values in the aggregated column (quantized floats), which
  drives the run-length-encoding result of Figure 14.

Timestamps are integer milliseconds.
"""

from __future__ import annotations

import random
from typing import Iterator, List

from ..core.types import Record

__all__ = ["football_stream", "FOOTBALL_RATE_HZ", "FOOTBALL_DISTINCT_VALUES"]

FOOTBALL_RATE_HZ = 2000
FOOTBALL_DISTINCT_VALUES = 84_232


def football_stream(
    num_records: int,
    *,
    rate_hz: int = FOOTBALL_RATE_HZ,
    gaps_per_minute: int = 5,
    gap_ms: int = 1500,
    distinct_values: int = FOOTBALL_DISTINCT_VALUES,
    start_ts: int = 0,
    seed: int = 13,
    key: object = None,
) -> List[Record]:
    """Generate ``num_records`` in-order football-like sensor records.

    The inter-record spacing is ``1000 / rate_hz`` ms with session gaps
    of ``gap_ms`` inserted at the configured frequency.  Values are ball
    speeds quantized to ``distinct_values`` levels.
    """
    if num_records < 0:
        raise ValueError("num_records must be non-negative")
    rng = random.Random(seed)
    period_us = max(1, int(1_000_000 / rate_hz))
    gap_every = int(60 * rate_hz / gaps_per_minute) if gaps_per_minute > 0 else 0
    records: List[Record] = []
    ts_us = start_ts * 1000
    speed = 8.0  # m/s-ish ball speed random walk
    for index in range(num_records):
        if gap_every and index > 0 and index % gap_every == 0:
            ts_us += gap_ms * 1000
        speed = min(40.0, max(0.0, speed + rng.gauss(0.0, 1.2)))
        quantized = round(speed * distinct_values / 40.0) % distinct_values
        value = quantized * 40.0 / distinct_values
        records.append(Record(ts_us // 1000, value, key=key))
        ts_us += period_us
    return records


def football_keyed_stream(
    num_records: int, num_keys: int, *, seed: int = 13, **kwargs
) -> List[Record]:
    """Keyed variant for the parallel experiment (player/sensor ids)."""
    base = football_stream(num_records, seed=seed, **kwargs)
    rng = random.Random(seed + 1)
    for record in base:
        record.key = rng.randrange(num_keys)
    return base


def football_iter(num_records: int, **kwargs) -> Iterator[Record]:
    """Generator form of :func:`football_stream` (constant memory)."""
    yield from football_stream(num_records, **kwargs)
