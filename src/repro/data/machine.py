"""Synthetic stand-in for the DEBS 2012 manufacturing machine dataset.

The paper's second dataset tracks manufacturing-machine states at about
100 updates per second (Jerzak et al., DEBS 2012 grand challenge); the
aggregated column has only **37 distinct values**, which is what makes
run-length-encoded holistic aggregation markedly faster on this dataset
in Figure 14.

Timestamps are integer milliseconds.
"""

from __future__ import annotations

import random
from typing import List

from ..core.types import Record

__all__ = ["machine_stream", "MACHINE_RATE_HZ", "MACHINE_DISTINCT_VALUES"]

MACHINE_RATE_HZ = 100
MACHINE_DISTINCT_VALUES = 37


def machine_stream(
    num_records: int,
    *,
    rate_hz: int = MACHINE_RATE_HZ,
    distinct_values: int = MACHINE_DISTINCT_VALUES,
    gaps_per_minute: int = 5,
    gap_ms: int = 1500,
    start_ts: int = 0,
    seed: int = 29,
    key: object = None,
) -> List[Record]:
    """Generate ``num_records`` machine-state records.

    Values are drawn from ``distinct_values`` discrete machine states
    with a sticky Markov flavour (states persist for a while, as real
    machine telemetry does).
    """
    if num_records < 0:
        raise ValueError("num_records must be non-negative")
    rng = random.Random(seed)
    period_us = max(1, int(1_000_000 / rate_hz))
    gap_every = int(60 * rate_hz / gaps_per_minute) if gaps_per_minute > 0 else 0
    records: List[Record] = []
    ts_us = start_ts * 1000
    state = rng.randrange(distinct_values)
    for index in range(num_records):
        if gap_every and index > 0 and index % gap_every == 0:
            ts_us += gap_ms * 1000
        if rng.random() < 0.05:  # sticky state transitions
            state = rng.randrange(distinct_values)
        records.append(Record(ts_us // 1000, float(state), key=key))
        ts_us += period_us
    return records
