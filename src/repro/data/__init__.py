"""Synthetic datasets and paper workloads.

``football`` and ``machine`` replace the DEBS 2013/2012 grand-challenge
datasets with generators matching the characteristics the experiments
depend on (rate, session gaps, distinct-value cardinality); see
DESIGN.md's substitution table.
"""

from .football import (
    FOOTBALL_DISTINCT_VALUES,
    FOOTBALL_RATE_HZ,
    football_keyed_stream,
    football_stream,
)
from .machine import MACHINE_DISTINCT_VALUES, MACHINE_RATE_HZ, machine_stream
from .workloads import (
    SECOND_MS,
    constrained_stream,
    dashboard_queries,
    dashboard_windows,
    m4_dashboard_queries,
    session_query,
)

__all__ = [
    "football_stream",
    "football_keyed_stream",
    "FOOTBALL_RATE_HZ",
    "FOOTBALL_DISTINCT_VALUES",
    "machine_stream",
    "MACHINE_RATE_HZ",
    "MACHINE_DISTINCT_VALUES",
    "SECOND_MS",
    "dashboard_windows",
    "dashboard_queries",
    "constrained_stream",
    "m4_dashboard_queries",
    "session_query",
]
