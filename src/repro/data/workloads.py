"""The paper's query workloads (Section 6.1, "Queries").

Helpers that build the exact query mixes used throughout the
evaluation:

* ``dashboard_queries`` -- N concurrent tumbling windows with lengths
  equally distributed between 1 and 20 seconds (the zoom levels of the
  live-visualization dashboard the workloads are modelled on);
* ``constrained_workload`` -- the Section 6.2.2 setup: the dashboard
  queries plus one session window (gap 1 s), replayed with 20 %
  out-of-order records delayed uniformly in [0 s, 2 s];
* ``m4_dashboard`` -- the Section 6.4 application workload: M4
  aggregation, 80 concurrent windows per operator instance.

Timestamps follow the data generators: integer milliseconds, so
"1 second" is 1000 timestamp units.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from ..aggregations import M4, AggregateFunction, Sum
from ..core.types import Record, StreamElement
from ..runtime.disorder import inject_disorder, with_watermarks
from ..windows.session import SessionWindow
from ..windows.tumbling import TumblingWindow

__all__ = [
    "SECOND_MS",
    "dashboard_windows",
    "dashboard_queries",
    "constrained_stream",
    "m4_dashboard_queries",
]

SECOND_MS = 1000

#: The paper's out-of-order knobs: 20 % late, delays U[0 s, 2 s].
DEFAULT_OOO_FRACTION = 0.2
DEFAULT_OOO_MAX_DELAY_MS = 2 * SECOND_MS


def dashboard_windows(concurrent_windows: int) -> List[TumblingWindow]:
    """N tumbling windows with lengths spread over 1-20 s (Section 6.2.1).

    ``concurrent_windows`` tumbling queries imply the same number of
    concurrent windows at any instant (one open window per query).
    Lengths cycle through the 1-20 s range with distinct offsets so the
    edge sets differ, as the dashboard zoom levels do.
    """
    if concurrent_windows <= 0:
        raise ValueError("need at least one window")
    windows: List[TumblingWindow] = []
    for index in range(concurrent_windows):
        length_s = 1 + (index % 20)
        windows.append(TumblingWindow(length_s * SECOND_MS))
    return windows


def dashboard_queries(
    concurrent_windows: int, aggregation_factory=Sum
) -> List[Tuple[TumblingWindow, AggregateFunction]]:
    """(window, aggregation) pairs for the dashboard workload."""
    return [(window, aggregation_factory()) for window in dashboard_windows(concurrent_windows)]


def constrained_stream(
    records: Sequence[Record],
    *,
    fraction: float = DEFAULT_OOO_FRACTION,
    max_delay: int = DEFAULT_OOO_MAX_DELAY_MS,
    min_delay: int = 0,
    watermark_interval: int = SECOND_MS,
    seed: int = 7,
) -> List[StreamElement]:
    """Section 6.2.2 stream: injected disorder + trailing watermarks."""
    disordered = inject_disorder(
        records, fraction, max_delay, min_delay=min_delay, seed=seed
    )
    return list(
        with_watermarks(disordered, interval=watermark_interval, max_delay=max_delay)
    )


def m4_dashboard_queries(
    concurrent_windows: int = 80,
) -> List[Tuple[TumblingWindow, AggregateFunction]]:
    """Section 6.4: M4 visualization aggregation over dashboard windows."""
    return [(window, M4()) for window in dashboard_windows(concurrent_windows)]


def session_query(gap_seconds: float = 1.0) -> Tuple[SessionWindow, AggregateFunction]:
    """The Section 6.2.2 session window (gap 1 s) with a sum."""
    return (SessionWindow(int(gap_seconds * SECOND_MS)), Sum())
