"""Brute-force reference semantics for window aggregation.

This module is the correctness oracle of the test suite: given the
*complete* stream up front, it computes every window's content directly
from first principles -- no slicing, no sharing, no incremental state.
Every operator in the library must converge to these results once all
records and a final watermark have been processed.

Window semantics implemented here (matching the paper and the
operators):

* intervals are half-open ``[start, end)``;
* empty windows are not reported;
* count positions are the zero-based ranks of records in event-time
  order (ties broken by arrival order);
* sessions are maximal groups of records with inter-record gaps
  strictly smaller than the session gap; a session's window is
  ``[first_ts, last_ts + gap)``;
* a multi-measure "last n every e" window at trigger edge ``t`` covers
  the ``n`` records (in event-time order) with event-time < ``t``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Sequence, Tuple

from .aggregations.base import AggregateFunction
from .core.measures import MeasureKind
from .core.types import Punctuation, Record, StreamElement
from .windows.base import WindowType
from .windows.multimeasure import LastNEveryWindow
from .windows.punctuation import PunctuationWindow
from .windows.session import SessionWindow

__all__ = ["reference_windows", "reference_results"]


def _sorted_records(elements: Iterable[StreamElement]) -> List[Record]:
    records = [e for e in elements if isinstance(e, Record)]
    # Stable sort keeps arrival order among event-time ties.
    records.sort(key=lambda record: record.ts)
    return records


def _fold(function: AggregateFunction, values: Sequence[Any]) -> Any:
    partial = None
    for value in values:
        lifted = function.lift(value)
        partial = lifted if partial is None else function.combine(partial, lifted)
    return partial


def reference_windows(
    window: WindowType,
    elements: Sequence[StreamElement],
    *,
    horizon: int | None = None,
) -> List[Tuple[int, int, List[Record]]]:
    """All non-empty windows of ``window`` over the full stream.

    Returns ``(start, end, records)`` triples.  ``horizon`` bounds the
    emitted window ends (defaults to max event-time + 1, i.e. a final
    flushing watermark just past the stream).
    """
    records = _sorted_records(elements)
    if not records:
        return []
    max_ts = records[-1].ts
    if horizon is None:
        horizon = max_ts + 1

    if isinstance(window, SessionWindow):
        return _session_windows(window, records, horizon)
    if isinstance(window, LastNEveryWindow):
        return _multimeasure_windows(window, records, horizon)
    if isinstance(window, PunctuationWindow):
        return _punctuation_windows(window, elements, records, horizon)
    if window.measure_kind is MeasureKind.COUNT:
        return _count_windows(window, records, horizon)
    return _time_windows(window, records, horizon)


def _time_windows(window, records: List[Record], horizon: int):
    first_ts = records[0].ts
    out = []
    for start, end in window.trigger_windows(first_ts - 1, horizon):
        content = [r for r in records if start <= r.ts < end]
        if content:
            out.append((start, end, content))
    return out


def _count_windows(window, records: List[Record], horizon: int):
    completed = sum(1 for r in records if r.ts <= horizon)
    out = []
    for start, end in window.trigger_windows(0, completed):
        content = records[start:end]
        if content:
            out.append((start, end, content))
    return out


def _session_windows(window: SessionWindow, records: List[Record], horizon: int):
    gap = window.gap
    out = []
    group: List[Record] = []
    for record in records:
        if group and record.ts - group[-1].ts >= gap:
            end = group[-1].ts + gap
            if end <= horizon:
                out.append((group[0].ts, end, group))
            group = []
        group.append(record)
    if group:
        end = group[-1].ts + gap
        if end <= horizon:
            out.append((group[0].ts, end, group))
    return out


def _multimeasure_windows(window: LastNEveryWindow, records: List[Record], horizon: int):
    timestamps = [r.ts for r in records]
    out = []
    lower = records[0].ts - 1
    for edge in window.time_edges_between(lower, horizon):
        import bisect

        cumulative = bisect.bisect_left(timestamps, edge)
        start = max(0, cumulative - window.count)
        content = records[start:cumulative]
        if content:
            out.append((start, cumulative, content))
    return out


def _punctuation_windows(window, elements, records: List[Record], horizon: int):
    edges = sorted({e.ts for e in elements if isinstance(e, Punctuation)})
    out = []
    previous = window.origin
    for edge in edges:
        if previous < edge <= horizon:
            content = [r for r in records if previous <= r.ts < edge]
            if content:
                out.append((previous, edge, content))
        previous = max(previous, edge)
    return out


def reference_results(
    queries: Sequence[Tuple[WindowType, AggregateFunction]],
    elements: Sequence[StreamElement],
    *,
    horizon: int | None = None,
) -> Dict[Tuple[int, int, int], Any]:
    """Expected final ``(query_index, start, end) -> value`` mapping."""
    expected: Dict[Tuple[int, int, int], Any] = {}
    for index, (window, function) in enumerate(queries):
        for start, end, content in reference_windows(window, elements, horizon=horizon):
            partial = _fold(function, [record.value for record in content])
            expected[(index, start, end)] = function.lower_or_default(partial)
    return expected
