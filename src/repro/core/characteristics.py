"""Workload characterization and the paper's decision logic.

Section 4 identifies four workload characteristics -- stream order,
aggregate function properties, windowing measure, and window type --
that determine both the applicability and the cost profile of window
aggregation techniques.  This module derives those characteristics from
a set of registered queries and encodes the paper's three decision
figures:

* **Figure 4** -- :func:`requires_tuple_storage`: when must the slicer
  keep raw records in addition to partial aggregates?
* **Figure 5** -- :func:`requires_splits`: which workloads can trigger
  slice splits?
* **Figure 6** -- :func:`removal_strategy`: when records must be removed
  from slices (count measures + out-of-order input), is an incremental
  invert possible or is a recomputation needed?
"""

from __future__ import annotations

import enum
from typing import Iterable, List, Sequence

from ..aggregations.base import AggregateFunction, AggregationClass
from ..windows.base import ContextClass, WindowType
from .kernels import KernelKind
from .measures import MeasureKind

__all__ = [
    "Query",
    "WorkloadCharacteristics",
    "RemovalStrategy",
    "requires_tuple_storage",
    "requires_splits",
    "removal_strategy",
    "select_kernel",
]


class Query:
    """A registered window-aggregation query: window type + aggregation.

    Queries are the unit of sharing: every query registered with one
    operator instance shares the same slice chain, so adding a query
    never duplicates per-record work.
    """

    __slots__ = ("window", "aggregation", "query_id", "name")

    def __init__(
        self,
        window: WindowType,
        aggregation: AggregateFunction,
        query_id: int = -1,
        name: str = "",
    ) -> None:
        self.window = window
        self.aggregation = aggregation
        self.query_id = query_id
        self.name = name or f"{type(window).__name__}/{aggregation.name}"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Query(id={self.query_id}, {self.name})"


class RemovalStrategy(enum.Enum):
    """How records are removed from slice aggregates (Figure 6)."""

    #: No removals ever happen for this workload.
    NOT_NEEDED = "not needed"
    #: Remove via the aggregation's incremental invert (cheap).
    INVERT = "invert"
    #: Recompute the slice aggregate from stored records (expensive).
    RECOMPUTE = "recompute"


def requires_tuple_storage(
    queries: Sequence[Query], stream_in_order: bool
) -> bool:
    """Figure 4: must raw records be kept in memory for this workload?

    In-order streams: records are needed only for forward context aware
    windows (future context can reveal past edges, forcing splits whose
    aggregates must be recomputed from records).

    Out-of-order streams: records are needed when (1) any aggregation is
    non-commutative, (2) any window is context aware but not a session
    window, or (3) any query uses a count-based measure.  Holistic
    aggregations keep the values inside their partial aggregates either
    way, but the slicer additionally retains records for them so splits
    and reorderings stay possible.
    """
    for query in queries:
        if query.aggregation.kind is AggregationClass.HOLISTIC:
            return True
        if query.window.context is ContextClass.FORWARD_CONTEXT_AWARE and not query.window.is_session:
            return True
    if stream_in_order:
        return False
    for query in queries:
        if not query.aggregation.commutative:
            return True
        window = query.window
        context_aware = window.context is not ContextClass.CONTEXT_FREE
        if context_aware and not window.is_session:
            return True
        if window.measure_kind is MeasureKind.COUNT:
            return True
    return False


def requires_splits(queries: Sequence[Query], stream_in_order: bool) -> bool:
    """Figure 5: can this workload trigger slice splits?

    In-order streams: only forward context aware windows split slices.
    Out-of-order streams: every context aware window type except
    sessions can split (late records change backward context).  Context
    free windows never split.
    """
    for query in queries:
        window = query.window
        if window.context is ContextClass.FORWARD_CONTEXT_AWARE and not window.is_session:
            return True
        if not stream_in_order:
            if window.context is not ContextClass.CONTEXT_FREE and not window.is_session:
                return True
    return False


def removal_strategy(query: Query, stream_in_order: bool) -> RemovalStrategy:
    """Figure 6: how are records removed from this query's slices?

    Removals happen only for count-based measures on out-of-order
    streams (a late record shifts the count of all later records, so the
    last record of every affected slice moves to the next slice).
    Invertible aggregations remove incrementally; everything else
    recomputes -- although functions like min/max first check whether
    the removed value can affect the aggregate at all
    (``unaffected_by_removal``), which is why the paper measures only a
    small decay for them in Figure 13.
    """
    if stream_in_order or query.window.measure_kind is not MeasureKind.COUNT:
        return RemovalStrategy.NOT_NEEDED
    if query.aggregation.invertible:
        return RemovalStrategy.INVERT
    return RemovalStrategy.RECOMPUTE


def select_kernel(
    function: AggregateFunction, *, stream_in_order: bool, needs_splits: bool
) -> KernelKind:
    """Pick the eager-store kernel for one aggregate function.

    Extends the paper's decision figures with the kernel dimension:

    * Non-associative functions need order-exact point updates over a
      materialised leaf list, and holistic partials grow with the data,
      so prefix/suffix aggregates (the specialised in-order kernels
      precompute them) would hold the whole history per entry -- both
      go to the FlatFAT tree, which keeps per-node state bounded and
      repairs one root path per update.
    * Split-capable workloads (context-aware windows under disorder,
      forward-context windows) also stay on FlatFAT: splits land as
      insert+update+update bursts whose random point writes are the
      tree's native operation.
    * Remaining out-of-order associative workloads -- the former FlatFAT
      fallback -- get the finger B-tree: O(log d) positional inserts for
      a late record at distance ``d``, lazy aggregate repair instead of
      a combine per update, and whole-prefix bulk eviction per watermark
      instead of FlatFAT's O(s) rebuild (the FiBA result).
    * Invertible, commutative functions with an exact invert on in-order
      streams get the subtract-on-evict kernel: O(1) for every
      operation.
    * Everything else associative and in-order gets two-stacks:
      amortised O(1) append/evict/query without needing an invert, and
      order-preserving for non-commutative functions.
    """
    if not function.associative or function.kind is AggregationClass.HOLISTIC:
        return KernelKind.FLAT_FAT
    if needs_splits:
        return KernelKind.FLAT_FAT
    if not stream_in_order:
        return KernelKind.FINGER_TREE
    if function.invertible and function.commutative and function.exact_invert:
        return KernelKind.SUBTRACT_ON_EVICT
    return KernelKind.TWO_STACKS


class WorkloadCharacteristics:
    """The aggregated characteristics of a query set on one stream.

    This is what the operator's adaptivity consumes: it is recomputed
    whenever queries are added or removed (Section 5, "Approach
    Overview") -- never on data changes, because the storage decision
    depends only on workload characteristics.
    """

    def __init__(self, queries: Sequence[Query], stream_in_order: bool) -> None:
        self.queries: List[Query] = list(queries)
        self.stream_in_order = stream_in_order
        self.store_tuples = requires_tuple_storage(self.queries, stream_in_order)
        self.needs_splits = requires_splits(self.queries, stream_in_order)
        self.has_count_measure = any(
            q.window.measure_kind is MeasureKind.COUNT for q in self.queries
        )
        self.has_sessions = any(q.window.is_session for q in self.queries)
        self.has_context_aware = any(
            q.window.context is not ContextClass.CONTEXT_FREE for q in self.queries
        )
        self.all_commutative = all(q.aggregation.commutative for q in self.queries)
        self.removal_strategies = {
            q.query_id: removal_strategy(q, stream_in_order) for q in self.queries
        }

    def kernel_for(self, function: AggregateFunction) -> KernelKind:
        """Eager-store kernel choice for one shared aggregate function."""
        return select_kernel(
            function,
            stream_in_order=self.stream_in_order,
            needs_splits=self.needs_splits,
        )

    @classmethod
    def of(
        cls, queries: Iterable[Query], stream_in_order: bool
    ) -> "WorkloadCharacteristics":
        return cls(list(queries), stream_in_order)

    def describe(self) -> str:
        """Human-readable summary (used by examples and debug output)."""
        lines = [
            f"stream order      : {'in-order' if self.stream_in_order else 'out-of-order'}",
            f"store raw records : {self.store_tuples}",
            f"splits possible   : {self.needs_splits}",
            f"count measures    : {self.has_count_measure}",
            f"session windows   : {self.has_sessions}",
            f"context aware     : {self.has_context_aware}",
            f"all commutative   : {self.all_commutative}",
        ]
        return "\n".join(lines)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"WorkloadCharacteristics(queries={len(self.queries)}, "
            f"in_order={self.stream_in_order}, store_tuples={self.store_tuples})"
        )
