"""FlatFAT: a flat fixed-size binary aggregation tree.

Reimplementation of the aggregate-tree data structure of Tangwongsan et
al. (PVLDB 2015), which the paper uses twice:

* as the **Aggregate Tree** baseline (Section 3.2) with individual
  records as leaves, and
* inside **eager slicing** (Section 3.4) with *slices* as leaves, which
  keeps the tree tiny and makes out-of-order updates cheap.

The tree is stored as a flat array of ``2 * capacity`` partial
aggregates: leaves occupy ``arr[capacity + i]``, inner node ``k`` holds
``combine(arr[2k], arr[2k+1])``.  Empty positions hold ``None`` and are
skipped by the combiner, so the structure needs no identity element and
supports non-commutative functions (range queries accumulate strictly
left-to-right).

Complexities: point update O(log n); append amortized O(log n) (array
doubling); range query O(log n); middle insert/remove O(n) (leaf shift
plus subtree recomputation -- exactly the cost that makes aggregate
trees collapse under out-of-order input in Figure 9).
"""

from __future__ import annotations

from typing import Callable, Generic, List, Optional, Sequence, TypeVar

P = TypeVar("P")

__all__ = ["FlatFAT"]


class FlatFAT(Generic[P]):
    """Flat binary aggregation tree over an ordered sequence of partials."""

    __slots__ = ("_combine", "_capacity", "_size", "_arr", "tracer")

    def __init__(
        self,
        combine: Callable[[P, P], P],
        leaves: Optional[Sequence[Optional[P]]] = None,
    ) -> None:
        self._combine = combine
        #: Observability sink (``flatfat.*`` counters); ``None`` is the
        #: no-op fast path.  Node-update counts are computed analytically
        #: from the affected index ranges, so the enabled path adds no
        #: per-node bookkeeping either.
        self.tracer = None
        initial = list(leaves) if leaves else []
        self._capacity = self._pow2_at_least(max(1, len(initial)))
        self._size = len(initial)
        self._arr: List[Optional[P]] = [None] * (2 * self._capacity)
        self._arr[self._capacity : self._capacity + self._size] = initial
        self._rebuild_all()

    # ------------------------------------------------------------------
    # internal helpers

    @staticmethod
    def _pow2_at_least(n: int) -> int:
        capacity = 1
        while capacity < n:
            capacity *= 2
        return capacity

    def _merge(self, left: Optional[P], right: Optional[P]) -> Optional[P]:
        if left is None:
            return right
        if right is None:
            return left
        return self._combine(left, right)

    def _rebuild_all(self) -> None:
        arr = self._arr
        for node in range(self._capacity - 1, 0, -1):
            arr[node] = self._merge(arr[2 * node], arr[2 * node + 1])
        if self.tracer is not None:
            self.tracer.count("flatfat.rebuilds")
            self.tracer.count("flatfat.node_updates", self._capacity - 1)

    def _update_path(self, leaf_index: int) -> None:
        node = (self._capacity + leaf_index) // 2
        if self.tracer is not None:
            # Path length to the root == bit length of the start node.
            self.tracer.count("flatfat.node_updates", node.bit_length())
        arr = self._arr
        while node >= 1:
            arr[node] = self._merge(arr[2 * node], arr[2 * node + 1])
            node //= 2

    def _grow(self, minimum: int) -> None:
        new_capacity = self._pow2_at_least(minimum)
        leaves = self._arr[self._capacity : self._capacity + self._size]
        self._capacity = new_capacity
        self._arr = [None] * (2 * new_capacity)
        self._arr[new_capacity : new_capacity + len(leaves)] = leaves
        self._rebuild_all()

    # ------------------------------------------------------------------
    # public API

    def __len__(self) -> int:
        return self._size

    @property
    def capacity(self) -> int:
        """Current leaf capacity (a power of two)."""
        return self._capacity

    def leaf(self, index: int) -> Optional[P]:
        """Return the partial aggregate stored at leaf ``index``."""
        if not 0 <= index < self._size:
            raise IndexError(f"leaf index {index} out of range (size {self._size})")
        return self._arr[self._capacity + index]

    def leaves(self) -> List[Optional[P]]:
        """A copy of all leaf partials in order."""
        return self._arr[self._capacity : self._capacity + self._size]

    def update(self, index: int, partial: Optional[P]) -> None:
        """Replace leaf ``index`` and repair the path to the root: O(log n)."""
        if not 0 <= index < self._size:
            raise IndexError(f"leaf index {index} out of range (size {self._size})")
        self._arr[self._capacity + index] = partial
        self._update_path(index)

    def append(self, partial: Optional[P]) -> None:
        """Append a leaf at the end: amortized O(log n)."""
        if self._size == self._capacity:
            self._grow(self._size + 1)
        self._arr[self._capacity + self._size] = partial
        self._size += 1
        self._update_path(self._size - 1)

    def extend(self, partials: Sequence[Optional[P]]) -> None:
        """Append several leaves at once: one growth, one repair pass.

        Equivalent to repeated :meth:`append`, but the array grows at
        most once and each affected inner node is recomputed exactly
        once (level-by-level over the appended range) instead of once
        per appended leaf.
        """
        count = len(partials)
        if count == 0:
            return
        if self._size + count > self._capacity:
            self._grow(self._size + count)
        start = self._size
        self._arr[self._capacity + start : self._capacity + start + count] = list(partials)
        self._size += count
        arr = self._arr
        lo = (self._capacity + start) // 2
        hi = (self._capacity + self._size - 1) // 2
        tracer = self.tracer
        while lo >= 1:
            if tracer is not None:
                tracer.count("flatfat.node_updates", hi - lo + 1)
            for node in range(lo, hi + 1):
                arr[node] = self._merge(arr[2 * node], arr[2 * node + 1])
            lo //= 2
            hi //= 2

    def insert(self, index: int, partial: Optional[P]) -> None:
        """Insert a leaf in the middle: O(n) (leaf shift + rebuild).

        This models the expensive out-of-order leaf insert (with the
        associated "rebalancing") of aggregate trees on records.
        """
        if not 0 <= index <= self._size:
            raise IndexError(f"insert index {index} out of range (size {self._size})")
        if index == self._size:
            self.append(partial)
            return
        leaves = self._arr[self._capacity : self._capacity + self._size]
        leaves.insert(index, partial)
        if len(leaves) > self._capacity:
            self._capacity = self._pow2_at_least(len(leaves))
            self._arr = [None] * (2 * self._capacity)
        else:
            for i in range(self._capacity, 2 * self._capacity):
                self._arr[i] = None
        self._size = len(leaves)
        self._arr[self._capacity : self._capacity + self._size] = leaves
        self._rebuild_all()

    def remove(self, index: int) -> Optional[P]:
        """Remove the leaf at ``index``: O(n)."""
        if not 0 <= index < self._size:
            raise IndexError(f"leaf index {index} out of range (size {self._size})")
        leaves = self._arr[self._capacity : self._capacity + self._size]
        removed = leaves.pop(index)
        for i in range(self._capacity, 2 * self._capacity):
            self._arr[i] = None
        self._size = len(leaves)
        self._arr[self._capacity : self._capacity + self._size] = leaves
        self._rebuild_all()
        return removed

    def remove_front(self, count: int) -> None:
        """Drop the first ``count`` leaves (watermark eviction): O(n)."""
        if count <= 0:
            return
        if count > self._size:
            raise IndexError(f"cannot remove {count} of {self._size} leaves")
        leaves = self._arr[self._capacity + count : self._capacity + self._size]
        for i in range(self._capacity, 2 * self._capacity):
            self._arr[i] = None
        self._size = len(leaves)
        self._arr[self._capacity : self._capacity + self._size] = leaves
        self._rebuild_all()

    def query(self, lo: int, hi: int) -> Optional[P]:
        """Combine leaves ``[lo, hi)`` left-to-right: O(log n).

        Returns ``None`` when the range is empty or contains only empty
        leaves.  Order is preserved, so non-commutative combiners work.
        """
        if lo < 0 or hi > self._size:
            raise IndexError(f"query range [{lo}, {hi}) out of bounds (size {self._size})")
        if lo >= hi:
            return None
        if self.tracer is not None:
            self.tracer.count("flatfat.queries")
        arr = self._arr
        left_acc: Optional[P] = None
        right_acc: Optional[P] = None
        lo += self._capacity
        hi += self._capacity
        while lo < hi:
            if lo & 1:
                left_acc = self._merge(left_acc, arr[lo])
                lo += 1
            if hi & 1:
                hi -= 1
                right_acc = self._merge(arr[hi], right_acc)
            lo //= 2
            hi //= 2
        return self._merge(left_acc, right_acc)

    def root(self) -> Optional[P]:
        """The aggregate over all leaves."""
        if self._size == 0:
            return None
        return self.query(0, self._size)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FlatFAT(size={self._size}, capacity={self._capacity})"
