"""The common window-operator interface shared by all techniques.

Every aggregation technique in this library -- general stream slicing
and all Section 3 baselines -- is a *drop-in window operator*: it
consumes stream elements one at a time and produces
:class:`~repro.core.types.WindowResult` outputs.  Keeping the interface
identical is what lets the benchmark harness swap techniques without
touching the pipeline (Section 5, "general slicing replaces alternative
operators ... without changing their input or output semantics").
"""

from __future__ import annotations

from typing import Iterable, List

from ..aggregations.base import AggregateFunction
from ..windows.base import WindowType
from .characteristics import Query
from .types import Punctuation, Record, StreamElement, Watermark, WindowResult

__all__ = ["WindowOperator", "StreamOrderViolation"]


class StreamOrderViolation(RuntimeError):
    """Raised when an out-of-order record hits an in-order-only operator."""


class WindowOperator:
    """Abstract tuple-at-a-time window aggregation operator."""

    def __init__(self) -> None:
        self._next_query_id = 0
        self.queries: List[Query] = []

    # ------------------------------------------------------------------
    # query management

    def add_query(self, window: WindowType, aggregation: AggregateFunction) -> Query:
        """Register a query; techniques adapt their strategy if needed."""
        query = Query(window, aggregation, query_id=self._next_query_id)
        self._next_query_id += 1
        self.queries.append(query)
        self._on_queries_changed()
        return query

    def remove_query(self, query_id: int) -> None:
        """Remove a query by id; techniques re-adapt."""
        before = len(self.queries)
        self.queries = [q for q in self.queries if q.query_id != query_id]
        if len(self.queries) != before:
            self._on_queries_changed()

    def _on_queries_changed(self) -> None:
        """Hook: recompute workload characteristics / rebuild state."""

    # ------------------------------------------------------------------
    # stream processing

    def process(self, element: StreamElement) -> List[WindowResult]:
        """Process one stream element; return any emitted window results."""
        if isinstance(element, Record):
            return self.process_record(element)
        if isinstance(element, Watermark):
            return self.process_watermark(element)
        if isinstance(element, Punctuation):
            return self.process_punctuation(element)
        raise TypeError(f"unsupported stream element: {element!r}")

    def process_record(self, record: Record) -> List[WindowResult]:
        raise NotImplementedError

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        raise NotImplementedError

    def process_punctuation(self, punctuation: Punctuation) -> List[WindowResult]:
        """Window punctuations; techniques without FCF support ignore them."""
        return []

    def run(self, elements: Iterable[StreamElement]) -> List[WindowResult]:
        """Convenience: process a whole stream, collecting all results."""
        results: List[WindowResult] = []
        for element in elements:
            results.extend(self.process(element))
        return results

    # ------------------------------------------------------------------
    # introspection used by the memory experiments

    def state_objects(self) -> list:
        """The operator's retained state (roots for deep size measurement)."""
        return []
