"""The common window-operator interface shared by all techniques.

Every aggregation technique in this library -- general stream slicing
and all Section 3 baselines -- is a *drop-in window operator*: it
consumes stream elements one at a time and produces
:class:`~repro.core.types.WindowResult` outputs.  Keeping the interface
identical is what lets the benchmark harness swap techniques without
touching the pipeline (Section 5, "general slicing replaces alternative
operators ... without changing their input or output semantics").
"""

from __future__ import annotations

from typing import Callable, Iterable, List, Optional, Sequence

from ..aggregations.base import AggregateFunction
from ..windows.base import WindowType
from .characteristics import Query
from .tracing import Tracer
from .types import Punctuation, Record, StreamElement, Watermark, WindowResult

__all__ = ["WindowOperator", "StreamOrderViolation"]


class StreamOrderViolation(RuntimeError):
    """Raised when an out-of-order record hits an in-order-only operator."""


class WindowOperator:
    """Abstract tuple-at-a-time window aggregation operator."""

    def __init__(self) -> None:
        self._next_query_id = 0
        self.queries: List[Query] = []
        #: Late-record side channel: called with every record dropped for
        #: exceeding the allowed lateness, instead of dropping silently.
        #: Runtime wiring, not operator state -- excluded from snapshots.
        self.on_late_record: Optional[Callable[[Record], None]] = None
        self._dropped_late = 0
        #: Observability sink (:mod:`repro.core.tracing`); ``None`` means
        #: tracing is off and no counter storage exists.  Hot paths guard
        #: with ``if tracer is not None`` -- the disabled fast path.
        self._tracer: Optional[Tracer] = None

    def __getstate__(self) -> dict:
        state = self.__dict__.copy()
        # Callbacks point at live runtime objects (supervisors, sinks);
        # a restored operator must be re-wired, not resurrect stale ones.
        state["on_late_record"] = None
        return state

    # ------------------------------------------------------------------
    # query management

    def add_query(self, window: WindowType, aggregation: AggregateFunction) -> Query:
        """Register a query; techniques adapt their strategy if needed."""
        query = Query(window, aggregation, query_id=self._next_query_id)
        self._next_query_id += 1
        self.queries.append(query)
        self._on_queries_changed()
        return query

    def remove_query(self, query_id: int) -> None:
        """Remove a query by id; techniques re-adapt."""
        before = len(self.queries)
        self.queries = [q for q in self.queries if q.query_id != query_id]
        if len(self.queries) != before:
            self._on_queries_changed()

    def _on_queries_changed(self) -> None:
        """Hook: recompute workload characteristics / rebuild state."""

    # ------------------------------------------------------------------
    # observability

    @property
    def tracer(self) -> Optional[Tracer]:
        """The attached tracer, or ``None`` while tracing is disabled."""
        return self._tracer

    def enable_tracing(self, tracer: Optional[Tracer] = None) -> Tracer:
        """Attach a tracer (a fresh one by default) and return it.

        Passing an existing tracer shares one counter sink across
        several operators (keyed sub-operators, pipeline stages).
        Tracing only observes -- window results are identical with it
        on or off.
        """
        self._tracer = tracer if tracer is not None else Tracer()
        self._on_tracing_changed()
        return self._tracer

    def disable_tracing(self) -> None:
        """Detach the tracer; hot paths return to the no-op fast path."""
        self._tracer = None
        self._on_tracing_changed()

    def _on_tracing_changed(self) -> None:
        """Hook: propagate ``self._tracer`` into owned components."""

    # ------------------------------------------------------------------
    # late-record side channel

    def _drop_late(self, record: Record) -> None:
        """Account for a record beyond the allowed lateness.

        Implementations call this at every drop site so the loss is
        observable: the drop counter advances and, when a supervisor
        installed :attr:`on_late_record`, the record is handed to the
        side channel instead of vanishing silently.
        """
        self._dropped_late += 1
        if self._tracer is not None:
            self._tracer.count("operator.late_drops")
        if self.on_late_record is not None:
            self.on_late_record(record)

    @property
    def dropped_late_records(self) -> int:
        """Records dropped for exceeding the allowed lateness."""
        return self._dropped_late

    # ------------------------------------------------------------------
    # stream processing

    def process(self, element: StreamElement) -> List[WindowResult]:
        """Process one stream element; return any emitted window results."""
        if isinstance(element, Record):
            return self.process_record(element)
        if isinstance(element, Watermark):
            return self.process_watermark(element)
        if isinstance(element, Punctuation):
            return self.process_punctuation(element)
        raise TypeError(f"unsupported stream element: {element!r}")

    def process_record(self, record: Record) -> List[WindowResult]:
        raise NotImplementedError

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        raise NotImplementedError

    def process_punctuation(self, punctuation: Punctuation) -> List[WindowResult]:
        """Window punctuations; techniques without FCF support ignore them."""
        return []

    def process_batch(self, elements: Sequence[StreamElement]) -> List[WindowResult]:
        """Process a pre-materialized batch of stream elements.

        Semantically identical to concatenating the outputs of
        :meth:`process` over ``elements`` -- window results, emission
        order, and state transitions are the same on both paths.  The
        base implementation is exactly that loop; techniques override it
        to amortize per-record dispatch over runs of in-order records
        (the batched ingestion fast path).  Watermarks, punctuations,
        and out-of-order records inside a batch take the per-element
        path, so emission timing never changes.
        """
        results: List[WindowResult] = []
        process = self.process
        for element in elements:
            out = process(element)
            if out:
                results.extend(out)
        return results

    def flush(self) -> List[WindowResult]:
        """Emit every window that can still close at end-of-stream.

        Streams often end between watermarks, leaving the trailing
        windows buffered: nothing ever advances event time past them, so
        their results are never emitted.  Flushing advances event time
        past the last record by the largest window extent any query can
        reach (plus the allowed lateness), exactly as a final upstream
        watermark would -- results and ordering are identical to a
        stream that carried that watermark itself.  Count-based windows
        are unaffected: an incomplete count window has no result by
        definition.  Idempotent: a second flush emits nothing new.
        """
        max_ts = getattr(self, "_max_ts", None)
        if max_ts is None:
            return []
        margin = 1
        for query in self.queries:
            window = query.window
            for attr in ("length", "gap", "every"):
                value = getattr(window, attr, None)
                if isinstance(value, int) and value > margin:
                    margin = value
        horizon = max_ts + margin + getattr(self, "allowed_lateness", 0) + 1
        return self.process_watermark(Watermark(horizon))

    def run(
        self,
        elements: Iterable[StreamElement],
        *,
        batch_size: Optional[int] = None,
    ) -> List[WindowResult]:
        """Convenience: process a whole stream, collecting all results.

        ``batch_size`` routes the stream through :meth:`process_batch`
        in chunks of that many elements; ``None`` (the default) keeps
        the tuple-at-a-time path.  Both produce identical results.
        """
        results: List[WindowResult] = []
        if batch_size is not None:
            if batch_size < 1:
                raise ValueError(f"batch_size must be >= 1, got {batch_size}")
            batch: List[StreamElement] = []
            for element in elements:
                batch.append(element)
                if len(batch) >= batch_size:
                    results.extend(self.process_batch(batch))
                    batch = []
            if batch:
                results.extend(self.process_batch(batch))
            return results
        for element in elements:
            results.extend(self.process(element))
        return results

    # ------------------------------------------------------------------
    # introspection used by the memory experiments

    def state_objects(self) -> list:
        """The operator's retained state (roots for deep size measurement)."""
        return []
