"""Pluggable slice-aggregation kernels for the eager store.

The eager aggregate store maintains one incremental structure per
distinct aggregate function over the slice partials.  The paper uses a
FlatFAT aggregate tree (O(log s) per operation) because it supports
every workload; this module adds two specialised kernels that exploit
workload characteristics (Section 4) for O(1) amortised work on the
in-order hot path:

* :class:`TwoStacksKernel` -- the two-stacks sliding-window algorithm of
  Tangwongsan et al. (*In-Order Sliding-Window Aggregation in Worst-Case
  Constant Time*): a *front* stack of suffix aggregates (popped on
  eviction) and a *back* stack of prefix aggregates (pushed on append).
  Append, evict, update-last, and boundary-straddling range queries are
  all amortised O(1); only associativity is required, so it covers
  non-commutative functions too.
* :class:`SubtractOnEvictKernel` -- for invertible functions: absolute
  prefix aggregates plus an eviction offset, answering any range query
  in O(1) via one ``invert``.  Restricted to functions whose inversion
  is exact on the partial domain (``exact_invert``) so results stay
  bit-identical to recomputation.

All kernels implement the same surface as
:class:`~repro.core.flatfat.FlatFAT` (which remains the general-purpose
kernel): ``append`` / ``extend`` / ``insert`` / ``remove`` /
``remove_front`` / ``update`` / ``query`` / ``root`` / ``leaf`` /
``leaves`` / ``__len__`` plus a ``tracer`` attribute.  Structural middle
operations (``insert`` / ``remove``) degrade to O(n) rebuilds on the
specialised kernels -- legal but slow, which is why
:func:`~repro.core.characteristics.select_kernel` only picks them for
workloads that never split slices.

Range queries accumulate strictly left-to-right on every kernel, so all
kernels return bit-identical partials for exact (integer-valued)
arithmetic regardless of which one the characteristics select.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..aggregations.base import AggregateFunction
from .flatfat import FlatFAT

__all__ = [
    "KernelKind",
    "TwoStacksKernel",
    "SubtractOnEvictKernel",
    "make_kernel",
]


class KernelKind(enum.Enum):
    """Which incremental structure backs one function's slice partials."""

    #: FlatFAT aggregate tree: O(log s) everything, any workload.
    FLAT_FAT = "flatfat"
    #: Two-stacks: amortised O(1) append/evict/query, in-order only.
    TWO_STACKS = "two_stacks"
    #: Prefix aggregates + invert: O(1) everything, invertible functions.
    SUBTRACT_ON_EVICT = "subtract_on_evict"

    @classmethod
    def coerce(cls, value: Union["KernelKind", str]) -> "KernelKind":
        """Accept both enum members and their string values (CLI/tests)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(sorted(k.value for k in cls))
            raise ValueError(
                f"unknown kernel {value!r}; expected one of: {names}"
            ) from None


class TwoStacksKernel:
    """Two-stacks sliding-window aggregation over slice partials.

    The logical leaf sequence is split into a *front* region (evicted
    first) and a *back* region (appended to).  ``_front[k]`` stores
    ``(value, agg)`` for leaf ``m-1-k`` (``m`` = front length) where
    ``agg`` combines leaves ``m-1-k .. m-1`` left-to-right; ``_back[j]``
    stores ``(value, agg)`` for leaf ``m+j`` where ``agg`` combines
    leaves ``m .. m+j``.  Evicting with an empty front *flips* the back
    stack -- every element but the newest moves to the front with suffix
    aggregates -- so each element is moved at most once (amortised O(1))
    and the newest element stays in the back, keeping the per-record
    ``update(size-1)`` of the eager hot path O(1) as well.

    Range queries are O(1) whenever the range touches or spans the
    front/back boundary (every emission query on a sliding window does);
    ranges strictly inside one region fall back to an exact
    left-to-right scan of the stored values.
    """

    __slots__ = ("_combine", "_front", "_back", "tracer")

    def __init__(self, combine) -> None:
        self._combine = combine
        self._front: List[Tuple[Any, Any]] = []
        self._back: List[Tuple[Any, Any]] = []
        #: Observability sink (``two_stacks.*`` counters); ``None`` off.
        self.tracer = None

    # ------------------------------------------------------------------
    # internal helpers

    def _merge(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return self._combine(left, right)

    def _flip(self) -> None:
        """Move all back elements but the newest onto the empty front."""
        back = self._back
        newest = back[-1]
        front = self._front
        agg: Any = None
        for value, _ in reversed(back[:-1]):
            agg = self._merge(value, agg)
            front.append((value, agg))
        self._back = [(newest[0], newest[0])]
        if self.tracer is not None:
            self.tracer.count("two_stacks.flips")

    def _rebuild(self, leaves: Sequence[Any]) -> None:
        """Reset from a full leaf list (middle insert/remove): O(n)."""
        self._front = []
        back: List[Tuple[Any, Any]] = []
        agg: Any = None
        for value in leaves:
            agg = self._merge(agg, value)
            back.append((value, agg))
        self._back = back
        if self.tracer is not None:
            self.tracer.count("two_stacks.rebuilds")

    # ------------------------------------------------------------------
    # public API (FlatFAT-compatible)

    def __len__(self) -> int:
        return len(self._front) + len(self._back)

    def leaf(self, index: int) -> Any:
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"leaf index {index} out of range (size {size})")
        m = len(self._front)
        if index < m:
            return self._front[m - 1 - index][0]
        return self._back[index - m][0]

    def leaves(self) -> List[Any]:
        return [entry[0] for entry in reversed(self._front)] + [
            entry[0] for entry in self._back
        ]

    def append(self, partial: Any) -> None:
        back = self._back
        agg = self._merge(back[-1][1] if back else None, partial)
        back.append((partial, agg))

    def extend(self, partials: Sequence[Any]) -> None:
        for partial in partials:
            self.append(partial)

    def update(self, index: int, partial: Any) -> None:
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"leaf index {index} out of range (size {size})")
        m = len(self._front)
        if index >= m:
            # Back region: repair prefix aggregates from the changed
            # element on.  The hot path updates the newest leaf -- O(1).
            back = self._back
            j = index - m
            agg = back[j - 1][1] if j > 0 else None
            back[j] = (partial, self._merge(agg, partial))
            for jj in range(j + 1, len(back)):
                value = back[jj][0]
                back[jj] = (value, self._merge(back[jj - 1][1], value))
        else:
            # Front region: repair suffix aggregates from the changed
            # element toward older entries (only forced out-of-order
            # usage reaches this branch).
            front = self._front
            k = m - 1 - index
            front[k] = (partial, self._merge(partial, front[k - 1][1] if k > 0 else None))
            for kk in range(k + 1, m):
                value = front[kk][0]
                front[kk] = (value, self._merge(value, front[kk - 1][1]))

    def insert(self, index: int, partial: Any) -> None:
        size = len(self)
        if not 0 <= index <= size:
            raise IndexError(f"insert index {index} out of range (size {size})")
        if index == size:
            self.append(partial)
            return
        leaves = self.leaves()
        leaves.insert(index, partial)
        self._rebuild(leaves)

    def remove(self, index: int) -> Any:
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"leaf index {index} out of range (size {size})")
        if index == 0:
            removed = self.leaf(0)
            self.remove_front(1)
            return removed
        leaves = self.leaves()
        removed = leaves.pop(index)
        self._rebuild(leaves)
        return removed

    def remove_front(self, count: int) -> None:
        if count <= 0:
            return
        size = len(self)
        if count > size:
            raise IndexError(f"cannot remove {count} of {size} leaves")
        front, back = self._front, self._back
        for _ in range(count):
            if not front:
                if len(back) == 1:
                    back.pop()
                    continue
                self._flip()
                front = self._front
                back = self._back
            front.pop()

    def query(self, lo: int, hi: int) -> Any:
        """Combine leaves ``[lo, hi)`` left-to-right.

        O(1) when the range touches or spans the front/back boundary;
        exact linear scan otherwise.
        """
        size = len(self)
        if lo < 0 or hi > size:
            raise IndexError(f"query range [{lo}, {hi}) out of bounds (size {size})")
        if lo >= hi:
            return None
        if self.tracer is not None:
            self.tracer.count("two_stacks.queries")
        m = len(self._front)
        front_part: Any = None
        if lo < m:
            front_hi = min(hi, m)
            if front_hi == m:
                # Suffix of the front region: precomputed aggregate.
                front_part = self._front[m - 1 - lo][1]
            else:
                for i in range(lo, front_hi):
                    front_part = self._merge(front_part, self._front[m - 1 - i][0])
        back_part: Any = None
        if hi > m:
            a = max(lo, m) - m
            b = hi - m
            if a == 0:
                # Prefix of the back region: precomputed aggregate.
                back_part = self._back[b - 1][1]
            else:
                for j in range(a, b):
                    back_part = self._merge(back_part, self._back[j][0])
        return self._merge(front_part, back_part)

    def root(self) -> Any:
        if len(self) == 0:
            return None
        return self.query(0, len(self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TwoStacksKernel(front={len(self._front)}, back={len(self._back)})"


class SubtractOnEvictKernel:
    """Prefix-aggregate kernel for invertible functions.

    Keeps the physical leaf list plus *absolute* prefix aggregates
    (``_prefix[p]`` combines physical leaves ``0..p-1``, skipping
    ``None``) and prefix counts of non-``None`` leaves.  Eviction just
    advances ``_start``; a range query combines in O(1) as
    ``invert(prefix[b], prefix[a])``, with the counts distinguishing a
    genuinely empty range (result ``None``) from a zero-valued
    aggregate.  The physical arrays are compacted once the evicted
    prefix outgrows the live suffix, keeping memory proportional to the
    live slice count.

    Only safe for commutative invertible functions whose ``invert``
    reverses ``combine`` exactly on the partial domain
    (:attr:`~repro.aggregations.base.AggregateFunction.exact_invert`).
    """

    __slots__ = ("_function", "_leaves", "_prefix", "_counts", "_start", "tracer")

    #: Keep at least this many evicted physical leaves before compacting.
    _COMPACT_MIN = 32

    def __init__(self, function: AggregateFunction) -> None:
        if not function.invertible:
            raise ValueError(
                f"SubtractOnEvictKernel requires an invertible function, "
                f"got {function.name!r}"
            )
        self._function = function
        self._leaves: List[Any] = []
        self._prefix: List[Any] = [None]
        self._counts: List[int] = [0]
        self._start = 0
        #: Observability sink (``subtract_on_evict.*`` counters).
        self.tracer = None

    # ------------------------------------------------------------------
    # internal helpers

    def _merge(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return self._function.combine(left, right)

    def _recompute_from(self, physical: int) -> None:
        """Repair prefixes/counts for physical indices ``>= physical``."""
        leaves, prefix, counts = self._leaves, self._prefix, self._counts
        del prefix[physical + 1 :]
        del counts[physical + 1 :]
        agg = prefix[physical]
        n = counts[physical]
        for value in leaves[physical:]:
            agg = self._merge(agg, value)
            n += 0 if value is None else 1
            prefix.append(agg)
            counts.append(n)

    def _compact(self) -> None:
        self._leaves = self._leaves[self._start :]
        self._start = 0
        self._prefix = [None]
        self._counts = [0]
        self._recompute_from(0)
        if self.tracer is not None:
            self.tracer.count("subtract_on_evict.compactions")

    # ------------------------------------------------------------------
    # public API (FlatFAT-compatible)

    def __len__(self) -> int:
        return len(self._leaves) - self._start

    def leaf(self, index: int) -> Any:
        if not 0 <= index < len(self):
            raise IndexError(f"leaf index {index} out of range (size {len(self)})")
        return self._leaves[self._start + index]

    def leaves(self) -> List[Any]:
        return self._leaves[self._start :]

    def append(self, partial: Any) -> None:
        self._leaves.append(partial)
        self._prefix.append(self._merge(self._prefix[-1], partial))
        self._counts.append(self._counts[-1] + (0 if partial is None else 1))

    def extend(self, partials: Sequence[Any]) -> None:
        for partial in partials:
            self.append(partial)

    def update(self, index: int, partial: Any) -> None:
        if not 0 <= index < len(self):
            raise IndexError(f"leaf index {index} out of range (size {len(self)})")
        physical = self._start + index
        self._leaves[physical] = partial
        # O(1) for the hot-path update of the newest leaf; O(suffix)
        # otherwise (only forced out-of-order usage reaches the middle).
        self._recompute_from(physical)

    def insert(self, index: int, partial: Any) -> None:
        if not 0 <= index <= len(self):
            raise IndexError(f"insert index {index} out of range (size {len(self)})")
        physical = self._start + index
        self._leaves.insert(physical, partial)
        self._recompute_from(physical)

    def remove(self, index: int) -> Any:
        if not 0 <= index < len(self):
            raise IndexError(f"leaf index {index} out of range (size {len(self)})")
        physical = self._start + index
        removed = self._leaves.pop(physical)
        self._recompute_from(physical)
        return removed

    def remove_front(self, count: int) -> None:
        if count <= 0:
            return
        if count > len(self):
            raise IndexError(f"cannot remove {count} of {len(self)} leaves")
        self._start += count
        if self._start >= self._COMPACT_MIN and self._start * 2 >= len(self._leaves):
            self._compact()

    def query(self, lo: int, hi: int) -> Any:
        size = len(self)
        if lo < 0 or hi > size:
            raise IndexError(f"query range [{lo}, {hi}) out of bounds (size {size})")
        if lo >= hi:
            return None
        if self.tracer is not None:
            self.tracer.count("subtract_on_evict.queries")
        a = self._start + lo
        b = self._start + hi
        counts = self._counts
        if counts[b] == counts[a]:
            return None  # only empty leaves in range
        prefix_b = self._prefix[b]
        if counts[a] == 0:
            return prefix_b
        return self._function.invert(prefix_b, self._prefix[a])

    def root(self) -> Any:
        if len(self) == 0:
            return None
        return self.query(0, len(self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SubtractOnEvictKernel(size={len(self)}, "
            f"evicted={self._start}, fn={self._function.name})"
        )


def make_kernel(kind: Union[KernelKind, str], function: AggregateFunction):
    """Instantiate the kernel backing one function's slice partials.

    Raises :class:`ValueError` for combinations that cannot be correct
    (subtract-on-evict without an ``invert``); combinations that are
    merely slow (two-stacks under splits) are allowed, so forced
    overrides can exercise every kernel on every stream.
    """
    kind = KernelKind.coerce(kind)
    if kind is KernelKind.FLAT_FAT:
        return FlatFAT(function.combine)
    if kind is KernelKind.TWO_STACKS:
        return TwoStacksKernel(function.combine)
    if not function.invertible:
        raise ValueError(
            f"kernel {kind.value!r} requires an invertible aggregation, "
            f"got {function.name!r}"
        )
    return SubtractOnEvictKernel(function)
