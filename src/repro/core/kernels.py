"""Pluggable slice-aggregation kernels for the eager store.

The eager aggregate store maintains one incremental structure per
distinct aggregate function over the slice partials.  The paper uses a
FlatFAT aggregate tree (O(log s) per operation) because it supports
every workload; this module adds two specialised kernels that exploit
workload characteristics (Section 4) for O(1) amortised work on the
in-order hot path:

* :class:`TwoStacksKernel` -- the two-stacks sliding-window algorithm of
  Tangwongsan et al. (*In-Order Sliding-Window Aggregation in Worst-Case
  Constant Time*): a *front* stack of suffix aggregates (popped on
  eviction) and a *back* stack of prefix aggregates (pushed on append).
  Append, evict, update-last, and boundary-straddling range queries are
  all amortised O(1); only associativity is required, so it covers
  non-commutative functions too.
* :class:`SubtractOnEvictKernel` -- for invertible functions: absolute
  prefix aggregates plus an eviction offset, answering any range query
  in O(1) via one ``invert``.  Restricted to functions whose inversion
  is exact on the partial domain (``exact_invert``) so results stay
  bit-identical to recomputation.
* :class:`FingerTreeKernel` -- a FiBA-style finger B-tree (Tangwongsan
  et al., *Out-of-Order Sliding-Window Aggregation with Efficient Bulk
  Evictions and Insertions*) for associative functions on out-of-order
  streams: positional inserts cost O(log d) for distance ``d`` from the
  nearer end, in-order appends and front evictions touch only a spine,
  subtree aggregates are cached with lazy up-propagation (updates mark
  the root path dirty and queries repair it), and an expired prefix is
  evicted in a single top-down walk that drops whole subtrees.

All kernels implement the same surface as
:class:`~repro.core.flatfat.FlatFAT` (which remains the general-purpose
kernel): ``append`` / ``extend`` / ``insert`` / ``remove`` /
``remove_front`` / ``update`` / ``query`` / ``root`` / ``leaf`` /
``leaves`` / ``__len__`` plus a ``tracer`` attribute.  Structural middle
operations (``insert`` / ``remove``) degrade to O(n) rebuilds on the
specialised kernels -- legal but slow, which is why
:func:`~repro.core.characteristics.select_kernel` only picks them for
workloads that never split slices.

Range queries accumulate strictly left-to-right on every kernel, so all
kernels return bit-identical partials for exact (integer-valued)
arithmetic regardless of which one the characteristics select.
"""

from __future__ import annotations

import enum
from typing import Any, List, Optional, Sequence, Tuple, Union

from ..aggregations.base import AggregateFunction
from .flatfat import FlatFAT

__all__ = [
    "KernelKind",
    "TwoStacksKernel",
    "SubtractOnEvictKernel",
    "FingerTreeKernel",
    "make_kernel",
]


class KernelKind(enum.Enum):
    """Which incremental structure backs one function's slice partials."""

    #: FlatFAT aggregate tree: O(log s) everything, any workload.
    FLAT_FAT = "flatfat"
    #: Two-stacks: amortised O(1) append/evict/query, in-order only.
    TWO_STACKS = "two_stacks"
    #: Prefix aggregates + invert: O(1) everything, invertible functions.
    SUBTRACT_ON_EVICT = "subtract_on_evict"
    #: Finger B-tree: O(log d) positional inserts, bulk prefix eviction.
    FINGER_TREE = "finger_tree"

    @classmethod
    def coerce(cls, value: Union["KernelKind", str]) -> "KernelKind":
        """Accept both enum members and their string values (CLI/tests)."""
        if isinstance(value, cls):
            return value
        try:
            return cls(value)
        except ValueError:
            names = ", ".join(sorted(k.value for k in cls))
            raise ValueError(
                f"unknown kernel {value!r}; expected one of: {names}"
            ) from None


class TwoStacksKernel:
    """Two-stacks sliding-window aggregation over slice partials.

    The logical leaf sequence is split into a *front* region (evicted
    first) and a *back* region (appended to).  ``_front[k]`` stores
    ``(value, agg)`` for leaf ``m-1-k`` (``m`` = front length) where
    ``agg`` combines leaves ``m-1-k .. m-1`` left-to-right; ``_back[j]``
    stores ``(value, agg)`` for leaf ``m+j`` where ``agg`` combines
    leaves ``m .. m+j``.  Evicting with an empty front *flips* the back
    stack -- every element but the newest moves to the front with suffix
    aggregates -- so each element is moved at most once (amortised O(1))
    and the newest element stays in the back, keeping the per-record
    ``update(size-1)`` of the eager hot path O(1) as well.

    Range queries are O(1) whenever the range touches or spans the
    front/back boundary (every emission query on a sliding window does);
    ranges strictly inside one region fall back to an exact
    left-to-right scan of the stored values.
    """

    __slots__ = ("_combine", "_front", "_back", "tracer")

    def __init__(self, combine) -> None:
        self._combine = combine
        self._front: List[Tuple[Any, Any]] = []
        self._back: List[Tuple[Any, Any]] = []
        #: Observability sink (``two_stacks.*`` counters); ``None`` off.
        self.tracer = None

    # ------------------------------------------------------------------
    # internal helpers

    def _merge(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return self._combine(left, right)

    def _flip(self) -> None:
        """Move all back elements but the newest onto the empty front."""
        back = self._back
        newest = back[-1]
        front = self._front
        agg: Any = None
        for value, _ in reversed(back[:-1]):
            agg = self._merge(value, agg)
            front.append((value, agg))
        self._back = [(newest[0], newest[0])]
        if self.tracer is not None:
            self.tracer.count("two_stacks.flips")

    def _rebuild(self, leaves: Sequence[Any]) -> None:
        """Reset from a full leaf list (middle insert/remove): O(n)."""
        self._front = []
        back: List[Tuple[Any, Any]] = []
        agg: Any = None
        for value in leaves:
            agg = self._merge(agg, value)
            back.append((value, agg))
        self._back = back
        if self.tracer is not None:
            self.tracer.count("two_stacks.rebuilds")

    # ------------------------------------------------------------------
    # public API (FlatFAT-compatible)

    def __len__(self) -> int:
        return len(self._front) + len(self._back)

    def leaf(self, index: int) -> Any:
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"leaf index {index} out of range (size {size})")
        m = len(self._front)
        if index < m:
            return self._front[m - 1 - index][0]
        return self._back[index - m][0]

    def leaves(self) -> List[Any]:
        return [entry[0] for entry in reversed(self._front)] + [
            entry[0] for entry in self._back
        ]

    def append(self, partial: Any) -> None:
        back = self._back
        agg = self._merge(back[-1][1] if back else None, partial)
        back.append((partial, agg))

    def extend(self, partials: Sequence[Any]) -> None:
        for partial in partials:
            self.append(partial)

    def update(self, index: int, partial: Any) -> None:
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"leaf index {index} out of range (size {size})")
        m = len(self._front)
        if index >= m:
            # Back region: repair prefix aggregates from the changed
            # element on.  The hot path updates the newest leaf -- O(1).
            back = self._back
            j = index - m
            agg = back[j - 1][1] if j > 0 else None
            back[j] = (partial, self._merge(agg, partial))
            for jj in range(j + 1, len(back)):
                value = back[jj][0]
                back[jj] = (value, self._merge(back[jj - 1][1], value))
        else:
            # Front region: repair suffix aggregates from the changed
            # element toward older entries (only forced out-of-order
            # usage reaches this branch).
            front = self._front
            k = m - 1 - index
            front[k] = (partial, self._merge(partial, front[k - 1][1] if k > 0 else None))
            for kk in range(k + 1, m):
                value = front[kk][0]
                front[kk] = (value, self._merge(value, front[kk - 1][1]))

    def insert(self, index: int, partial: Any) -> None:
        size = len(self)
        if not 0 <= index <= size:
            raise IndexError(f"insert index {index} out of range (size {size})")
        if index == size:
            self.append(partial)
            return
        leaves = self.leaves()
        leaves.insert(index, partial)
        self._rebuild(leaves)

    def remove(self, index: int) -> Any:
        size = len(self)
        if not 0 <= index < size:
            raise IndexError(f"leaf index {index} out of range (size {size})")
        if index == 0:
            removed = self.leaf(0)
            self.remove_front(1)
            return removed
        leaves = self.leaves()
        removed = leaves.pop(index)
        self._rebuild(leaves)
        return removed

    def remove_front(self, count: int) -> None:
        if count <= 0:
            return
        size = len(self)
        if count > size:
            raise IndexError(f"cannot remove {count} of {size} leaves")
        front, back = self._front, self._back
        for _ in range(count):
            if not front:
                if len(back) == 1:
                    back.pop()
                    continue
                self._flip()
                front = self._front
                back = self._back
            front.pop()

    def query(self, lo: int, hi: int) -> Any:
        """Combine leaves ``[lo, hi)`` left-to-right.

        O(1) when the range touches or spans the front/back boundary;
        exact linear scan otherwise.
        """
        size = len(self)
        if lo < 0 or hi > size:
            raise IndexError(f"query range [{lo}, {hi}) out of bounds (size {size})")
        if lo >= hi:
            return None
        if self.tracer is not None:
            self.tracer.count("two_stacks.queries")
        m = len(self._front)
        front_part: Any = None
        if lo < m:
            front_hi = min(hi, m)
            if front_hi == m:
                # Suffix of the front region: precomputed aggregate.
                front_part = self._front[m - 1 - lo][1]
            else:
                for i in range(lo, front_hi):
                    front_part = self._merge(front_part, self._front[m - 1 - i][0])
        back_part: Any = None
        if hi > m:
            a = max(lo, m) - m
            b = hi - m
            if a == 0:
                # Prefix of the back region: precomputed aggregate.
                back_part = self._back[b - 1][1]
            else:
                for j in range(a, b):
                    back_part = self._merge(back_part, self._back[j][0])
        return self._merge(front_part, back_part)

    def root(self) -> Any:
        if len(self) == 0:
            return None
        return self.query(0, len(self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"TwoStacksKernel(front={len(self._front)}, back={len(self._back)})"


class SubtractOnEvictKernel:
    """Prefix-aggregate kernel for invertible functions.

    Keeps the physical leaf list plus *absolute* prefix aggregates
    (``_prefix[p]`` combines physical leaves ``0..p-1``, skipping
    ``None``) and prefix counts of non-``None`` leaves.  Eviction just
    advances ``_start``; a range query combines in O(1) as
    ``invert(prefix[b], prefix[a])``, with the counts distinguishing a
    genuinely empty range (result ``None``) from a zero-valued
    aggregate.  The physical arrays are compacted once the evicted
    prefix outgrows the live suffix, keeping memory proportional to the
    live slice count.

    Only safe for commutative invertible functions whose ``invert``
    reverses ``combine`` exactly on the partial domain
    (:attr:`~repro.aggregations.base.AggregateFunction.exact_invert`).
    """

    __slots__ = ("_function", "_leaves", "_prefix", "_counts", "_start", "tracer")

    #: Keep at least this many evicted physical leaves before compacting.
    _COMPACT_MIN = 32

    def __init__(self, function: AggregateFunction) -> None:
        if not function.invertible:
            raise ValueError(
                f"SubtractOnEvictKernel requires an invertible function, "
                f"got {function.name!r}"
            )
        self._function = function
        self._leaves: List[Any] = []
        self._prefix: List[Any] = [None]
        self._counts: List[int] = [0]
        self._start = 0
        #: Observability sink (``subtract_on_evict.*`` counters).
        self.tracer = None

    # ------------------------------------------------------------------
    # internal helpers

    def _merge(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return self._function.combine(left, right)

    def _recompute_from(self, physical: int) -> None:
        """Repair prefixes/counts for physical indices ``>= physical``."""
        leaves, prefix, counts = self._leaves, self._prefix, self._counts
        del prefix[physical + 1 :]
        del counts[physical + 1 :]
        agg = prefix[physical]
        n = counts[physical]
        for value in leaves[physical:]:
            agg = self._merge(agg, value)
            n += 0 if value is None else 1
            prefix.append(agg)
            counts.append(n)

    def _compact(self) -> None:
        self._leaves = self._leaves[self._start :]
        self._start = 0
        self._prefix = [None]
        self._counts = [0]
        self._recompute_from(0)
        if self.tracer is not None:
            self.tracer.count("subtract_on_evict.compactions")

    # ------------------------------------------------------------------
    # public API (FlatFAT-compatible)

    def __len__(self) -> int:
        return len(self._leaves) - self._start

    def leaf(self, index: int) -> Any:
        if not 0 <= index < len(self):
            raise IndexError(f"leaf index {index} out of range (size {len(self)})")
        return self._leaves[self._start + index]

    def leaves(self) -> List[Any]:
        return self._leaves[self._start :]

    def append(self, partial: Any) -> None:
        self._leaves.append(partial)
        self._prefix.append(self._merge(self._prefix[-1], partial))
        self._counts.append(self._counts[-1] + (0 if partial is None else 1))

    def extend(self, partials: Sequence[Any]) -> None:
        for partial in partials:
            self.append(partial)

    def update(self, index: int, partial: Any) -> None:
        if not 0 <= index < len(self):
            raise IndexError(f"leaf index {index} out of range (size {len(self)})")
        physical = self._start + index
        self._leaves[physical] = partial
        # O(1) for the hot-path update of the newest leaf; O(suffix)
        # otherwise (only forced out-of-order usage reaches the middle).
        self._recompute_from(physical)

    def insert(self, index: int, partial: Any) -> None:
        if not 0 <= index <= len(self):
            raise IndexError(f"insert index {index} out of range (size {len(self)})")
        physical = self._start + index
        self._leaves.insert(physical, partial)
        self._recompute_from(physical)

    def remove(self, index: int) -> Any:
        if not 0 <= index < len(self):
            raise IndexError(f"leaf index {index} out of range (size {len(self)})")
        physical = self._start + index
        removed = self._leaves.pop(physical)
        self._recompute_from(physical)
        return removed

    def remove_front(self, count: int) -> None:
        if count <= 0:
            return
        if count > len(self):
            raise IndexError(f"cannot remove {count} of {len(self)} leaves")
        self._start += count
        if self._start >= self._COMPACT_MIN and self._start * 2 >= len(self._leaves):
            self._compact()

    def query(self, lo: int, hi: int) -> Any:
        size = len(self)
        if lo < 0 or hi > size:
            raise IndexError(f"query range [{lo}, {hi}) out of bounds (size {size})")
        if lo >= hi:
            return None
        if self.tracer is not None:
            self.tracer.count("subtract_on_evict.queries")
        a = self._start + lo
        b = self._start + hi
        counts = self._counts
        if counts[b] == counts[a]:
            return None  # only empty leaves in range
        prefix_b = self._prefix[b]
        if counts[a] == 0:
            return prefix_b
        return self._function.invert(prefix_b, self._prefix[a])

    def root(self) -> Any:
        if len(self) == 0:
            return None
        return self.query(0, len(self))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"SubtractOnEvictKernel(size={len(self)}, "
            f"evicted={self._start}, fn={self._function.name})"
        )


class _FingerNode:
    """One finger-tree node: a leaf bucket of partials or an inner fan-out.

    ``sizes[i]`` mirrors ``items[i].size`` on inner nodes so positional
    descent never touches grandchildren; ``agg`` caches the merged
    aggregate of all non-``None`` partials below and is repaired lazily
    (``dirty``) so bursts of point updates between queries cost zero
    combines.
    """

    __slots__ = ("leaf", "items", "sizes", "size", "agg", "dirty")

    def __init__(self, leaf: bool, items: list, sizes: Optional[List[int]] = None) -> None:
        self.leaf = leaf
        self.items = items
        self.sizes = sizes
        self.size = len(items) if leaf else sum(sizes or ())
        self.agg: Any = None
        self.dirty = True

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "leaf" if self.leaf else f"inner×{len(self.items)}"
        return f"_FingerNode({kind}, size={self.size})"


class FingerTreeKernel:
    """Finger B-tree over slice partials for out-of-order workloads.

    A counted B-tree keyed by *position*: every inner node stores its
    children's subtree sizes, so ``insert(index, ...)`` descends directly
    to the owning leaf bucket in O(height) with no per-leaf shifting --
    the FiBA regime where a late record at distance ``d`` from the tail
    costs O(log d) instead of FlatFAT's O(s) leaf shift + full rebuild.
    Three properties carry the out-of-order hot path:

    * **Lazy up-propagation**: mutations only invalidate the cached
      aggregates on the root path (``dirty`` flags, zero combines);
      the next range query repairs exactly the still-dirty nodes it
      touches (counted as ``finger_tree.spine_repairs``).  A burst of k
      point updates between two watermarks therefore costs k spine
      *markings* but at most one spine *repair*.
    * **Bulk eviction**: ``remove_front(count)`` drops the expired
      prefix in one top-down walk, unlinking whole subtrees instead of
      popping leaves one by one -- O(height + dropped nodes), against
      FlatFAT's full O(s) rebuild per watermark.
    * **Finger appends**: in-order appends descend the right spine only
      and fill the tail bucket in place; a bucket split touches just
      that spine, so sustained in-order load is amortised O(1) combines
      (none -- aggregates stay lazy) plus an O(height) size walk.

    Deletions never rebalance (they only unlink emptied nodes and
    collapse single-child roots): tree height is bounded by the insert
    history, which keeps ``remove`` simple and safe for the slice
    manager's merge traffic while preserving balance under the
    grow-at-the-tail / evict-at-the-head streaming lifecycle.

    Only associativity is required; combine order is preserved
    everywhere, so non-commutative functions are legal.
    """

    __slots__ = ("_combine", "_root", "tracer")

    #: Leaf buckets split above this many partials.
    _LEAF_MAX = 32
    #: Inner nodes split above this many children.
    _NODE_MAX = 16

    def __init__(self, combine) -> None:
        self._combine = combine
        self._root = _FingerNode(True, [])
        #: Observability sink (``finger_tree.*`` counters); ``None`` off.
        self.tracer = None

    # ------------------------------------------------------------------
    # internal helpers

    def _merge(self, left: Any, right: Any) -> Any:
        if left is None:
            return right
        if right is None:
            return left
        return self._combine(left, right)

    def _node_agg(self, node: _FingerNode) -> Any:
        """The node's cached aggregate, repairing it if stale."""
        if not node.dirty:
            return node.agg
        agg: Any = None
        if node.leaf:
            for value in node.items:
                agg = self._merge(agg, value)
        else:
            for child in node.items:
                agg = self._merge(agg, self._node_agg(child))
        node.agg = agg
        node.dirty = False
        if self.tracer is not None:
            self.tracer.count("finger_tree.spine_repairs")
        return agg

    @staticmethod
    def _locate(node: _FingerNode, index: int) -> Tuple[int, int]:
        """Child position owning leaf ``index`` (index < node.size)."""
        sizes = node.sizes
        i = 0
        while index >= sizes[i]:
            index -= sizes[i]
            i += 1
        return i, index

    def _split(self, node: _FingerNode) -> _FingerNode:
        """Split an overfull node in half; returns the new right sibling."""
        half = len(node.items) // 2
        if node.leaf:
            right = _FingerNode(True, node.items[half:])
        else:
            right = _FingerNode(False, node.items[half:], node.sizes[half:])
            del node.sizes[half:]
        del node.items[half:]
        node.size = len(node.items) if node.leaf else sum(node.sizes)
        node.dirty = True
        return right

    def _insert_into(self, node: _FingerNode, index: int, partial: Any) -> Optional[_FingerNode]:
        """Recursive positional insert; returns a split-off right sibling."""
        node.dirty = True
        if node.leaf:
            node.items.insert(index, partial)
            node.size += 1
            if len(node.items) > self._LEAF_MAX:
                return self._split(node)
            return None
        sizes = node.sizes
        # index == node.size (append) must land at the tail of the last
        # child, so the strict scan stops at the final position.
        i = 0
        last = len(sizes) - 1
        while i < last and index > sizes[i]:
            index -= sizes[i]
            i += 1
        child = node.items[i]
        sibling = self._insert_into(child, index, partial)
        node.size += 1
        sizes[i] = child.size
        if sibling is not None:
            node.items.insert(i + 1, sibling)
            sizes.insert(i + 1, sibling.size)
            if len(node.items) > self._NODE_MAX:
                return self._split(node)
        return None

    def _insert_at(self, index: int, partial: Any) -> None:
        sibling = self._insert_into(self._root, index, partial)
        if sibling is not None:
            old = self._root
            self._root = _FingerNode(False, [old, sibling], [old.size, sibling.size])

    def _collapse_root(self) -> None:
        """Shrink the root while it is an inner node with a single child."""
        while not self._root.leaf and len(self._root.items) == 1:
            self._root = self._root.items[0]
        if self._root.size == 0 and not self._root.leaf:  # pragma: no cover - guard
            self._root = _FingerNode(True, [])

    # ------------------------------------------------------------------
    # public API (FlatFAT-compatible)

    def __len__(self) -> int:
        return self._root.size

    @property
    def height(self) -> int:
        """Tree height in levels (1 = a single leaf bucket)."""
        levels = 1
        node = self._root
        while not node.leaf:
            levels += 1
            node = node.items[0]
        return levels

    def leaf(self, index: int) -> Any:
        if not 0 <= index < self._root.size:
            raise IndexError(f"leaf index {index} out of range (size {self._root.size})")
        node = self._root
        while not node.leaf:
            i, index = self._locate(node, index)
            node = node.items[i]
        return node.items[index]

    def leaves(self) -> List[Any]:
        out: List[Any] = []
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.leaf:
                out.extend(node.items)
            else:
                stack.extend(reversed(node.items))
        return out

    def append(self, partial: Any) -> None:
        self._insert_at(self._root.size, partial)

    def extend(self, partials: Sequence[Any]) -> None:
        for partial in partials:
            self._insert_at(self._root.size, partial)

    def insert(self, index: int, partial: Any) -> None:
        size = self._root.size
        if not 0 <= index <= size:
            raise IndexError(f"insert index {index} out of range (size {size})")
        if index < size and self.tracer is not None:
            self.tracer.count("finger_tree.ooo_inserts")
        self._insert_at(index, partial)

    def update(self, index: int, partial: Any) -> None:
        if not 0 <= index < self._root.size:
            raise IndexError(f"leaf index {index} out of range (size {self._root.size})")
        node = self._root
        while not node.leaf:
            node.dirty = True
            i, index = self._locate(node, index)
            node = node.items[i]
        node.dirty = True
        node.items[index] = partial

    def _remove_from(self, node: _FingerNode, index: int) -> Any:
        node.dirty = True
        if node.leaf:
            removed = node.items.pop(index)
            node.size -= 1
            return removed
        i, inner = self._locate(node, index)
        child = node.items[i]
        removed = self._remove_from(child, inner)
        node.size -= 1
        if child.size == 0:
            node.items.pop(i)
            node.sizes.pop(i)
        else:
            node.sizes[i] = child.size
        return removed

    def remove(self, index: int) -> Any:
        if not 0 <= index < self._root.size:
            raise IndexError(f"leaf index {index} out of range (size {self._root.size})")
        removed = self._remove_from(self._root, index)
        self._collapse_root()
        return removed

    def remove_front(self, count: int) -> None:
        """Evict the oldest ``count`` leaves in one top-down walk.

        Whole subtrees covered by the expired prefix are unlinked
        without visiting their leaves; only the one boundary path is
        descended.  This is the FiBA bulk-eviction result: cost
        O(height + unlinked children), independent of the kernel size.
        """
        size = self._root.size
        if count <= 0:
            return
        if count > size:
            raise IndexError(f"cannot remove {count} of {size} leaves")
        if self.tracer is not None:
            self.tracer.count("finger_tree.bulk_evictions")
        if count == size:
            self._root = _FingerNode(True, [])
            return
        node = self._root
        remaining = count
        while True:
            node.dirty = True
            node.size -= remaining
            if node.leaf:
                del node.items[:remaining]
                break
            drop = 0
            while node.sizes[drop] <= remaining:
                remaining -= node.sizes[drop]
                drop += 1
            if drop:
                del node.items[:drop]
                del node.sizes[:drop]
            if remaining == 0:
                break
            node.sizes[0] -= remaining
            node = node.items[0]
        self._collapse_root()

    def _query_node(self, node: _FingerNode, lo: int, hi: int) -> Any:
        """Combine leaves ``[lo, hi)`` below ``node``, left-to-right."""
        if lo <= 0 and hi >= node.size:
            return self._node_agg(node)
        if node.leaf:
            acc: Any = None
            for value in node.items[lo:hi]:
                acc = self._merge(acc, value)
            return acc
        acc = None
        for child, child_size in zip(node.items, node.sizes):
            if hi <= 0:
                break
            if lo < child_size:
                part = self._query_node(child, max(lo, 0), min(hi, child_size))
                acc = self._merge(acc, part)
            lo -= child_size
            hi -= child_size
        return acc

    def query(self, lo: int, hi: int) -> Any:
        size = self._root.size
        if lo < 0 or hi > size:
            raise IndexError(f"query range [{lo}, {hi}) out of bounds (size {size})")
        if lo >= hi:
            return None
        if self.tracer is not None:
            self.tracer.count("finger_tree.queries")
        return self._query_node(self._root, lo, hi)

    def root(self) -> Any:
        if self._root.size == 0:
            return None
        return self._node_agg(self._root)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"FingerTreeKernel(size={self._root.size}, height={self.height})"


def make_kernel(kind: Union[KernelKind, str], function: AggregateFunction):
    """Instantiate the kernel backing one function's slice partials.

    Raises :class:`ValueError` for combinations that cannot be correct
    (subtract-on-evict without an ``invert``); combinations that are
    merely slow (two-stacks under splits) are allowed, so forced
    overrides can exercise every kernel on every stream.
    """
    kind = KernelKind.coerce(kind)
    if kind is KernelKind.FLAT_FAT:
        return FlatFAT(function.combine)
    if kind is KernelKind.TWO_STACKS:
        return TwoStacksKernel(function.combine)
    if kind is KernelKind.FINGER_TREE:
        if not function.associative:
            raise ValueError(
                f"kernel {kind.value!r} requires an associative aggregation "
                f"(its cached subtree aggregates regroup the combines), "
                f"got {function.name!r}"
            )
        return FingerTreeKernel(function.combine)
    if not function.invertible:
        raise ValueError(
            f"kernel {kind.value!r} requires an invertible aggregation, "
            f"got {function.name!r}"
        )
    return SubtractOnEvictKernel(function)
