"""The Slice Manager -- Step 2 of the slicing pipeline (Section 5.3).

The slice manager triggers all merge, split, and update operations on
slices.  It keeps the invariant that *slice edges match window edges*:

* in-order records are appended to the open head slice with one
  incremental aggregation step;
* out-of-order records are routed to the slice covering their timestamp
  (or a new slice created in a gap), updating aggregates incrementally
  for commutative functions and by recomputation otherwise;
* session workloads split at record-free points (no recomputation) and
  merge slices when a late record bridges two sessions;
* count-measure workloads shift the last record of every affected slice
  one slice onward when a late record changes record positions
  (Figure 6), using the aggregation's invert where available;
* late window edges (punctuations, context changes) split slices with a
  full recomputation from stored records (Figure 5 / Figure 15).

Every mutation is reported to an ``on_modified`` callback so the window
manager can emit updates for already-triggered windows.
"""

from __future__ import annotations

import bisect
from typing import Callable, List, Optional, Sequence

from ..aggregations.base import AggregateFunction
from .aggregate_store import AggregateStore
from .slice_ import Slice
from .tracing import Tracer
from .types import Record

__all__ = ["SliceManager", "Modification"]


class Modification:
    """Describes a change to already-sliced stream regions.

    ``ts`` is the event-time of the change; ``count_position`` the global
    record position of an inserted record (count chains only).
    """

    __slots__ = ("ts", "count_position")

    def __init__(self, ts: int, count_position: Optional[int] = None) -> None:
        self.ts = ts
        self.count_position = count_position

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Modification(ts={self.ts}, count_position={self.count_position})"


class SliceManager:
    """Coordinates merge / split / update operations on the slice store."""

    def __init__(
        self,
        store: AggregateStore,
        *,
        store_records: bool = False,
        track_counts: bool = False,
        session_gap: Optional[int] = None,
        floor_time_edge: Callable[[int], Optional[int]] = lambda ts: None,
        ceil_time_edge: Callable[[int], Optional[int]] = lambda ts: None,
        edge_in_region: Callable[[int, int], bool] = lambda lo, hi: False,
        is_count_edge: Callable[[int], bool] = lambda count: False,
        on_modified: Optional[Callable[[Modification], None]] = None,
    ) -> None:
        self._store = store
        self.store_records = store_records
        self.track_counts = track_counts
        #: Minimum gap over all registered session queries (None = no sessions).
        self.session_gap = session_gap
        self._floor_time_edge = floor_time_edge
        self._ceil_time_edge = ceil_time_edge
        self._edge_in_region = edge_in_region
        self._is_count_edge = is_count_edge
        self._on_modified = on_modified or (lambda modification: None)
        #: Observability sink; ``None`` (the default) is the no-op fast
        #: path -- attached by ``WindowOperator.enable_tracing()``.
        self.tracer: Optional[Tracer] = None

    @property
    def functions(self) -> Sequence[AggregateFunction]:
        return self._store.functions

    # ------------------------------------------------------------------
    # in-order path

    def add_inorder(self, record: Record, head: Slice) -> None:
        """Append an in-order record to the open head slice: one ⊕ per fn."""
        head.add_inorder(record, self.functions)
        self._store.slice_updated(len(self._store.slices) - 1)

    # ------------------------------------------------------------------
    # out-of-order path

    def add_out_of_order(self, record: Record) -> Modification:
        """Route a late record to its slice; trigger merges/shifts as needed."""
        index = self._store.find_index(record.ts)
        if index is None:
            index = self._create_gap_slice(record.ts)
        if self.track_counts:
            # Equal-timestamp ties order by arrival: the new record goes
            # after every existing record with the same timestamp, which
            # earlier count shifts may have moved into later slices
            # (possibly past empty slices).
            slices = self._store.slices
            scan = index + 1
            while scan < len(slices):
                following = slices[scan]
                if following.record_count == 0:
                    scan += 1
                    continue
                if following.first_ts is not None and following.first_ts <= record.ts:
                    index = scan
                    scan += 1
                    continue
                break
        if self.session_gap is not None:
            index = self._session_place(index, record)
        slice_ = self._store.slices[index]
        count_position: Optional[int] = None
        if self.track_counts:
            count_position = self._count_position(slice_, record.ts)
        slice_.add_out_of_order(record, self.functions)
        self._store.slice_updated(index)
        if self.session_gap is not None:
            index = self._merge_bridged_sessions(index)
        if self.track_counts:
            self._count_cascade(index)
        if self.tracer is not None:
            self.tracer.count("slice_manager.ooo_records")
        modification = Modification(record.ts, count_position)
        self._on_modified(modification)
        return modification

    def _count_position(self, slice_: Slice, ts: int) -> int:
        base = slice_.count_start if slice_.count_start is not None else 0
        if slice_.records is None:
            return base + slice_.record_count
        offset = bisect.bisect_right(slice_.records, ts, key=lambda r: r.ts)
        return base + offset

    def _create_gap_slice(self, ts: int) -> int:
        """Create a slice covering ``ts`` inside a record-free region."""
        before, after = self._store.neighbors(ts)
        slices = self._store.slices
        start_bounds: List[int] = []
        end_bounds: List[int] = []
        if before is not None and slices[before].end is not None:
            start_bounds.append(slices[before].end)
        floor = self._floor_time_edge(ts)
        if floor is not None:
            start_bounds.append(floor)
        start = max(start_bounds) if start_bounds else ts
        if start > ts:  # floor edge beyond ts cannot happen; guard anyway
            start = ts
        if after is not None:
            end_bounds.append(slices[after].start)
        ceil = self._ceil_time_edge(ts)
        if ceil is not None:
            end_bounds.append(ceil)
        end = min(end_bounds) if end_bounds else None
        gap = Slice(
            start,
            end,
            len(self.functions),
            store_records=self.store_records,
            count_start=(
                slices[before].count_end
                if (self.track_counts and before is not None)
                else (0 if self.track_counts else None)
            ),
        )
        if self.track_counts:
            gap.count_end = gap.count_start if end is not None else None
            if end is not None and gap.count_end is not None and self._is_count_edge(gap.count_end):
                gap.end_kind = Slice.END_COUNT
        index = (before + 1) if before is not None else 0
        self._store.insert_slice(index, gap)
        if self.tracer is not None:
            self.tracer.count("slice_manager.gap_slices")
        return index

    # ------------------------------------------------------------------
    # session handling (merge-only context awareness, Section 5.1)

    def _session_place(self, index: int, record: Record) -> int:
        """Ensure session separation inside the target slice.

        If the late record opens a *new* session inside an existing
        slice (its distance to the slice's records exceeds the session
        gap), the slice is split at a record-free point -- a pure
        metadata operation that never recomputes aggregates.
        Returns the index of the slice that should receive the record.
        """
        gap = self.session_gap
        assert gap is not None
        slice_ = self._store.slices[index]
        if slice_.is_empty():
            return index
        assert slice_.first_ts is not None and slice_.last_ts is not None
        ts = record.ts
        if slice_.first_ts <= ts <= slice_.last_ts:
            return index  # inside the activity span: same session
        if ts > slice_.last_ts:
            if ts - slice_.last_ts < gap:
                return index  # extends the session forward
            split_point = slice_.last_ts + gap
            right = slice_.split_empty_at(split_point, self.functions)
            self._insert_after(index, right)
            return index + 1
        # ts < slice_.first_ts
        if slice_.first_ts - ts < gap:
            return index  # extends the session backward
        split_point = ts + gap
        right = slice_.split_empty_at(split_point, self.functions)
        self._insert_after(index, right)
        return index  # record goes to the (now empty) left part

    def _insert_after(self, index: int, right: Slice) -> None:
        left = self._store.slices[index]
        # The store variants track trees by index; re-sync both positions.
        self._store.insert_slice(index + 1, right)
        self._store.slice_updated(index)
        self._store.slice_updated(index + 1)
        if self.tracer is not None:
            # Every _insert_after follows a split (session separation,
            # late window edge, or count boundary).
            self.tracer.count("slice_manager.splits")
        del left  # aggregates already re-homed by split_empty_at

    def _merge_bridged_sessions(self, index: int) -> int:
        """Merge adjacent slices when a record closed a session gap.

        A merge only happens when no registered window has an edge in
        the region the merge would swallow (``edge_in_region``), which
        keeps the minimal-slice invariant without breaking context-free
        queries that share the slice chain.
        """
        gap = self.session_gap
        assert gap is not None
        index = self._maybe_merge(index - 1, index, gap)
        self._maybe_merge(index, index + 1, gap)
        return index

    def _maybe_merge(self, left_index: int, right_index: int, gap: int) -> int:
        slices = self._store.slices
        if left_index < 0 or right_index >= len(slices) or left_index >= right_index:
            return max(left_index, 0) if right_index >= len(slices) else right_index
        left, right = slices[left_index], slices[right_index]
        if left.is_empty() or right.is_empty():
            return right_index
        assert left.last_ts is not None and right.first_ts is not None
        if right.first_ts - left.last_ts >= gap:
            return right_index
        boundary = left.end
        if boundary is None:
            return right_index
        # The merge erases every boundary in [left.end, right.start]; it
        # must not swallow any other window's edge (e.g. a tumbling edge
        # inside a record-free gap between the two session fragments).
        if self._edge_in_region(boundary, right.start):
            return right_index
        if left.end_kind == Slice.END_COUNT:
            return right_index  # count edges must keep their boundary
        left.merge_from(right, self.functions)
        self._store.remove_slice(right_index)
        self._store.slice_updated(left_index)
        if self.tracer is not None:
            self.tracer.count("slice_manager.merges")
        return left_index

    # ------------------------------------------------------------------
    # splits for late window edges (FCF/FCA on out-of-order streams)

    def split_time(self, ts: int) -> bool:
        """Ensure a slice boundary exists at time ``ts``.

        Returns ``True`` when a split was performed.  Splitting requires
        stored records when records straddle the point (Figure 15's
        recomputation cost); record-free points use the cheap path.
        """
        index = self._store.find_index(ts)
        if index is None:
            return False  # gap: boundary implicitly exists
        slice_ = self._store.slices[index]
        if slice_.start == ts:
            return False  # boundary already present
        straddles = (
            slice_.first_ts is not None
            and slice_.last_ts is not None
            and slice_.first_ts < ts <= slice_.last_ts
        )
        if straddles:
            right = slice_.split_at(ts, self.functions)
            if self.tracer is not None:
                # The expensive Figure 15 path: both halves recompute
                # their aggregates from stored records.
                self.tracer.count("slice_manager.split_recomputes")
        else:
            right = slice_.split_empty_at(ts, self.functions)
        self._insert_after(index, right)
        self._on_modified(Modification(ts))
        return True

    def ensure_count_boundary(self, count: int) -> bool:
        """Ensure a slice boundary exists at count position ``count``.

        Used by multi-measure (FCA) windows whose starts land mid-slice;
        requires stored records (the decision tree guarantees them).
        Returns ``True`` when a split was performed.
        """
        slices = self._store.slices
        for index, slice_ in enumerate(slices):
            if slice_.count_start is None:
                continue
            if slice_.count_start == count:
                return False
            within_closed = slice_.count_end is not None and slice_.count_start < count < slice_.count_end
            within_open = slice_.count_end is None and count < slice_.count_start + slice_.record_count
            if within_closed or within_open:
                offset = count - slice_.count_start
                if offset <= 0 or offset >= slice_.record_count:
                    return False  # boundary in a record-free margin
                right = slice_.split_at_count(offset, self.functions)
                self._insert_after(index, right)
                return True
        return False

    # ------------------------------------------------------------------
    # count-measure shift cascade (Figure 6)

    def _count_cascade(self, index: int) -> None:
        """Repair count boundaries after an insertion at slice ``index``.

        Count-pinned boundaries keep their value by moving the last
        record of the left slice one slice onward; time-pinned
        boundaries keep their position and shift their cumulative count.
        """
        slices = self._store.slices
        j = index
        while j < len(slices):
            slice_ = slices[j]
            if j > index and slices[j - 1].end_kind != Slice.END_COUNT:
                if slice_.count_start is not None:
                    slice_.count_start += 1
            if slice_.count_end is None:
                break
            if slice_.end_kind == Slice.END_COUNT:
                if j + 1 >= len(slices):
                    break  # nothing to shift into; head cut will fix counts
                moved = slice_.remove_last_record(self.functions)
                slices[j + 1].prepend_record(moved, self.functions)
                self._store.slice_updated(j)
                self._store.slice_updated(j + 1)
                if self.tracer is not None:
                    self.tracer.count("slice_manager.count_shifts")
            else:
                slice_.count_end += 1
            j += 1

    # ------------------------------------------------------------------
    # merges requested by context-aware window types

    def merge_boundary(self, ts: int) -> bool:
        """Merge the two slices meeting at boundary ``ts`` (if allowed)."""
        slices = self._store.slices
        position = bisect.bisect_left(slices, ts, key=lambda s: s.start)
        if position <= 0 or position >= len(slices):
            return False
        left, right = slices[position - 1], slices[position]
        if left.end != ts or right.start != ts:
            return False
        if self._edge_in_region(ts, ts) or left.end_kind == Slice.END_COUNT:
            return False
        left.merge_from(right, self.functions)
        self._store.remove_slice(position)
        self._store.slice_updated(position - 1)
        if self.tracer is not None:
            self.tracer.count("slice_manager.merges")
        return True
