"""The stream slice: the unit of partial aggregation (Section 5.2).

A slice covers a half-open timestamp interval ``[start, end)`` of the
stream and holds one incrementally maintained partial aggregate per
registered aggregate function.  Besides its boundaries, a slice tracks
the timestamps of the first and last record it actually contains
(``first_ts`` / ``last_ts``) -- these need not coincide with the
boundaries and drive session-window derivation.

When the workload requires it (Figure 4), the slice also retains its raw
records, sorted by event-time, enabling the expensive operations:
recomputation after a split, order-preserving aggregation for
non-commutative functions, and record shifting for count-based measures.

The three fundamental operations of Section 5.2 map to
:meth:`Slice.merge_from`, :meth:`Slice.split_at` /
:meth:`Slice.split_at_count`, and the ``add_*`` / ``remove_*`` update
methods.
"""

from __future__ import annotations

import bisect
from typing import Any, List, Optional, Sequence

from ..aggregations.base import AggregateFunction
from .types import Record

__all__ = ["Slice"]

_TS_KEY = lambda record: record.ts  # noqa: E731 - bisect key


class Slice:
    """One stream slice with per-function partial aggregates."""

    #: Boundary kinds: the slice's ``end`` boundary is pinned either to a
    #: fixed time point (``"time"``) or to a fixed count value
    #: (``"count"``).  Count-pinned boundaries shift records when
    #: out-of-order arrivals change record positions (Figure 6).
    END_TIME = "time"
    END_COUNT = "count"

    __slots__ = (
        "start",
        "end",
        "first_ts",
        "last_ts",
        "aggs",
        "records",
        "record_count",
        "count_start",
        "count_end",
        "end_kind",
    )

    def __init__(
        self,
        start: int,
        end: Optional[int],
        num_functions: int,
        store_records: bool,
        count_start: Optional[int] = None,
    ) -> None:
        #: Slice boundaries in the primary (time) measure; ``end`` is
        #: ``None`` while the slice is the open head of the stream.
        self.start = start
        self.end = end
        #: Event-times of the first/last contained record (None if empty).
        self.first_ts: Optional[int] = None
        self.last_ts: Optional[int] = None
        #: One partial aggregate per registered function (None if empty).
        self.aggs: List[Any] = [None] * num_functions
        #: Raw records sorted by event-time, or None when not retained.
        self.records: Optional[List[Record]] = [] if store_records else None
        #: Number of records in the slice (maintained even without records).
        self.record_count = 0
        #: Count-measure boundaries (None when no count query is active).
        self.count_start = count_start
        self.count_end: Optional[int] = None
        #: What the ``end`` boundary is pinned to ("time" or "count").
        self.end_kind = Slice.END_TIME

    # ------------------------------------------------------------------
    # predicates

    @property
    def is_open(self) -> bool:
        """Whether this is the unbounded head slice."""
        return self.end is None

    def covers(self, ts: int) -> bool:
        """Whether ``ts`` falls into ``[start, end)``."""
        if ts < self.start:
            return False
        return self.end is None or ts < self.end

    def is_empty(self) -> bool:
        """Whether the slice contains no records."""
        return self.record_count == 0

    # ------------------------------------------------------------------
    # update operations

    def add_inorder(self, record: Record, functions: Sequence[AggregateFunction]) -> None:
        """Append a record arriving in event-time order (one ⊕ per function)."""
        for index, function in enumerate(functions):
            lifted = function.lift(record.value)
            current = self.aggs[index]
            self.aggs[index] = lifted if current is None else function.combine(current, lifted)
        if self.records is not None:
            self.records.append(record)
        self.record_count += 1
        if self.first_ts is None:
            self.first_ts = record.ts
        self.last_ts = record.ts

    def add_run(self, records: Sequence[Record], functions: Sequence[AggregateFunction]) -> None:
        """Append a run of records arriving in event-time order (bulk path).

        Equivalent to calling :meth:`add_inorder` once per record, but
        with one partial-aggregate update per function for the whole run
        (via :meth:`~repro.aggregations.base.AggregateFunction.fold_values`).
        Record-storing slices extend their record list in one step; the
        per-function fold degrades gracefully to the per-record loop for
        holistic aggregations, whose partials grow with every value.
        """
        if not records:
            return
        values = [record.value for record in records]
        aggs = self.aggs
        for index, function in enumerate(functions):
            aggs[index] = function.fold_values(aggs[index], values)
        if self.records is not None:
            self.records.extend(records)
        self.record_count += len(records)
        if self.first_ts is None:
            self.first_ts = records[0].ts
        self.last_ts = records[-1].ts

    def add_out_of_order(self, record: Record, functions: Sequence[AggregateFunction]) -> None:
        """Insert a late record.

        Commutative functions update incrementally; non-commutative ones
        recompute from the stored records to retain aggregation order
        (Section 5.3, Step 2).
        """
        if self.records is not None:
            bisect.insort_right(self.records, record, key=_TS_KEY)
        self.record_count += 1
        if self.first_ts is None or record.ts < self.first_ts:
            self.first_ts = record.ts
        if self.last_ts is None or record.ts > self.last_ts:
            self.last_ts = record.ts
        for index, function in enumerate(functions):
            if function.commutative:
                lifted = function.lift(record.value)
                current = self.aggs[index]
                self.aggs[index] = (
                    lifted if current is None else function.combine(current, lifted)
                )
            else:
                self.aggs[index] = self._fold_records(function)

    def recompute(self, functions: Sequence[AggregateFunction]) -> None:
        """Rebuild every partial aggregate from the stored records."""
        if self.records is None:
            raise ValueError("cannot recompute a slice that does not retain records")
        for index, function in enumerate(functions):
            self.aggs[index] = self._fold_records(function)

    def _fold_records(self, function: AggregateFunction) -> Any:
        if self.records is None:
            raise ValueError("cannot fold: records not retained")
        partial = None
        for record in self.records:
            lifted = function.lift(record.value)
            partial = lifted if partial is None else function.combine(partial, lifted)
        return partial

    def remove_last_record(self, functions: Sequence[AggregateFunction]) -> Record:
        """Remove and return the record with the largest event-time.

        Aggregates are maintained per function following Figure 6:
        invert when available; skip the update when the function can
        prove the removal does not affect the aggregate (min/max family);
        recompute from records otherwise.
        """
        if self.records is None or not self.records:
            raise ValueError("cannot remove from a slice without stored records")
        removed = self.records.pop()
        self.record_count -= 1
        self.last_ts = self.records[-1].ts if self.records else None
        if not self.records:
            self.first_ts = None
        for index, function in enumerate(functions):
            current = self.aggs[index]
            if self.record_count == 0:
                self.aggs[index] = None
                continue
            lifted = function.lift(removed.value)
            if function.invertible:
                self.aggs[index] = function.invert(current, lifted)
            elif hasattr(function, "unaffected_by_removal") and function.unaffected_by_removal(
                current, lifted
            ):
                continue  # removal provably cannot change the aggregate
            else:
                self.aggs[index] = self._fold_records(function)
        return removed

    def prepend_record(self, record: Record, functions: Sequence[AggregateFunction]) -> None:
        """Add a record that precedes every record in this slice.

        Used by the count-shift: the record removed from the previous
        slice has an event-time no larger than any record here, so the
        incremental update is ``lift(record) ⊕ agg`` (order preserved
        even for non-commutative functions).
        """
        if self.records is not None:
            self.records.insert(0, record)
        self.record_count += 1
        if self.last_ts is None:
            self.last_ts = record.ts
        self.first_ts = record.ts if self.first_ts is None else min(self.first_ts, record.ts)
        for index, function in enumerate(functions):
            lifted = function.lift(record.value)
            current = self.aggs[index]
            self.aggs[index] = lifted if current is None else function.combine(lifted, current)

    # ------------------------------------------------------------------
    # merge and split (Section 5.2)

    def merge_from(self, other: "Slice", functions: Sequence[AggregateFunction]) -> None:
        """Absorb the directly following slice ``other`` into this one.

        Implements the paper's three merge steps: extend the end, combine
        the aggregates (``a ← a ⊕ b``), and let the caller delete
        ``other`` from the store.
        """
        if other.start < self.start:
            raise ValueError("merge target must follow this slice")
        self.end = other.end
        for index, function in enumerate(functions):
            left, right = self.aggs[index], other.aggs[index]
            if left is None:
                self.aggs[index] = right
            elif right is None:
                self.aggs[index] = left
            else:
                self.aggs[index] = function.combine(left, right)
        if self.records is not None and other.records is not None:
            self.records.extend(other.records)
        self.record_count += other.record_count
        if other.first_ts is not None and self.first_ts is None:
            self.first_ts = other.first_ts
        if other.last_ts is not None:
            self.last_ts = other.last_ts
        if other.count_end is not None or other.count_start is not None:
            self.count_end = other.count_end

    def split_at(self, ts: int, functions: Sequence[AggregateFunction]) -> "Slice":
        """Split this slice at timestamp ``ts``; return the new right part.

        ``self`` keeps ``[start, ts)``; the returned slice covers
        ``[ts, old_end)``.  Both aggregates are recomputed from records
        (the expensive operation the paper measures in Figure 15).
        """
        if self.records is None:
            raise ValueError("cannot split a slice that does not retain records")
        if not (self.start < ts and (self.end is None or ts < self.end)):
            raise ValueError(
                f"split point {ts} outside slice ({self.start}, {self.end})"
            )
        boundary = bisect.bisect_left(self.records, ts, key=_TS_KEY)
        right = Slice(ts, self.end, len(functions), store_records=True)
        right.end_kind = self.end_kind
        right.records = self.records[boundary:]
        self.records = self.records[:boundary]
        self.end = ts
        self.end_kind = Slice.END_TIME
        self._refresh_after_split(functions)
        right._refresh_after_split(functions)
        if self.count_start is not None:
            right.count_start = self.count_start + self.record_count
            right.count_end = self.count_end
            self.count_end = right.count_start
        return right

    def split_at_count(
        self, count: int, functions: Sequence[AggregateFunction]
    ) -> "Slice":
        """Split at a count position (``count`` records stay on the left)."""
        if self.records is None:
            raise ValueError("cannot split a slice that does not retain records")
        if not 0 < count < len(self.records):
            raise ValueError(
                f"count split {count} outside slice with {len(self.records)} records"
            )
        boundary_ts = self.records[count].ts
        right = Slice(boundary_ts, self.end, len(functions), store_records=True)
        right.end_kind = self.end_kind
        right.records = self.records[count:]
        self.records = self.records[:count]
        self.end = boundary_ts
        self.end_kind = Slice.END_COUNT
        self._refresh_after_split(functions)
        right._refresh_after_split(functions)
        if self.count_start is not None:
            right.count_start = self.count_start + count
            right.count_end = self.count_end
            self.count_end = right.count_start
        return right

    def split_empty_at(self, ts: int, functions: Sequence[AggregateFunction]) -> "Slice":
        """Split at a point with all records strictly on one side.

        This is the session-window split: because no record crosses the
        split point, aggregates move wholesale to one side and *no
        recomputation* is needed -- the reason sessions escape record
        retention in the Figure 4 decision tree.  Works with or without
        stored records.
        """
        if not (self.start < ts and (self.end is None or ts < self.end)):
            raise ValueError(f"split point {ts} outside slice ({self.start}, {self.end})")
        left_side = self.last_ts is not None and self.last_ts < ts
        right_side = self.first_ts is not None and self.first_ts >= ts
        if not (left_side or right_side or self.is_empty()):
            raise ValueError(
                f"records straddle {ts}: [{self.first_ts}, {self.last_ts}] -- use split_at"
            )
        right = Slice(ts, self.end, len(functions), store_records=self.records is not None)
        right.end_kind = self.end_kind
        self.end = ts
        self.end_kind = Slice.END_TIME
        if right_side:
            right.aggs = self.aggs
            right.records = self.records if self.records is not None else None
            right.record_count = self.record_count
            right.first_ts, right.last_ts = self.first_ts, self.last_ts
            self.aggs = [None] * len(functions)
            self.records = [] if self.records is not None else None
            self.record_count = 0
            self.first_ts = self.last_ts = None
        if self.count_start is not None:
            right.count_start = self.count_start + self.record_count
            right.count_end = self.count_end
            self.count_end = right.count_start
        return right

    def _refresh_after_split(self, functions: Sequence[AggregateFunction]) -> None:
        records = self.records or []
        self.record_count = len(records)
        self.first_ts = records[0].ts if records else None
        self.last_ts = records[-1].ts if records else None
        self.recompute(functions)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        end = "open" if self.end is None else self.end
        counts = ""
        if self.count_start is not None:
            count_end = "open" if self.count_end is None else self.count_end
            counts = f", counts=[{self.count_start}, {count_end})"
        return f"Slice([{self.start}, {end}), n={self.record_count}{counts})"
