"""Stream element types shared by every operator in the library.

A stream is a (possibly unbounded) iterable of *stream elements*.  The
library distinguishes three kinds of elements, mirroring Section 2 of the
paper:

* :class:`Record` -- a data tuple carrying an event-time timestamp and a
  payload value.  Records may arrive out-of-order with respect to their
  event-times.
* :class:`Watermark` -- a low-watermark punctuation: a promise by the
  source that no record with an event-time smaller than the watermark's
  timestamp will arrive later.  Window operators use watermarks to decide
  when windows may safely be emitted on out-of-order streams.
* :class:`Punctuation` -- a window punctuation marking a window start or
  end position inside the stream (used by forward-context-free
  punctuation-based windows, Section 4.4).

Timestamps are plain integers.  Following Section 4.3 of the paper, a
"timestamp" can represent event-time (e.g. milliseconds), a tuple count,
or any other monotonically advancing measure; the slicing logic never
interprets the unit.
"""

from __future__ import annotations

from typing import Any, Iterable, Iterator, Union

__all__ = [
    "Record",
    "Watermark",
    "Punctuation",
    "StreamElement",
    "WindowResult",
    "is_in_order",
    "max_event_time",
]


class Record:
    """A single data tuple of the stream.

    Parameters
    ----------
    ts:
        Event-time timestamp (or any advancing measure) of the record.
    value:
        The aggregated payload.  Most aggregate functions expect a number
        but any value accepted by the aggregation's ``lift`` works.
    key:
        Optional partitioning key (used by key-partitioned parallelism).
    """

    __slots__ = ("ts", "value", "key")

    def __init__(self, ts: int, value: Any, key: Any = None) -> None:
        self.ts = ts
        self.value = value
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        if self.key is None:
            return f"Record(ts={self.ts}, value={self.value!r})"
        return f"Record(ts={self.ts}, value={self.value!r}, key={self.key!r})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Record)
            and self.ts == other.ts
            and self.value == other.value
            and self.key == other.key
        )

    def __hash__(self) -> int:
        return hash((self.ts, self.value, self.key))


class Watermark:
    """A low-watermark: no later record will have ``record.ts < ts``."""

    __slots__ = ("ts",)

    def __init__(self, ts: int) -> None:
        self.ts = ts

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Watermark(ts={self.ts})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Watermark) and self.ts == other.ts

    def __hash__(self) -> int:
        return hash(("wm", self.ts))


class Punctuation:
    """A window punctuation embedded in the stream.

    ``kind`` is ``"start"`` or ``"end"``; the punctuation marks a window
    edge at timestamp ``ts`` for punctuation-based (forward context free)
    window types.
    """

    __slots__ = ("ts", "kind")

    START = "start"
    END = "end"

    def __init__(self, ts: int, kind: str = END) -> None:
        if kind not in (self.START, self.END):
            raise ValueError(f"punctuation kind must be 'start' or 'end', got {kind!r}")
        self.ts = ts
        self.kind = kind

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Punctuation(ts={self.ts}, kind={self.kind!r})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Punctuation) and self.ts == other.ts and self.kind == other.kind

    def __hash__(self) -> int:
        return hash(("punct", self.ts, self.kind))


StreamElement = Union[Record, Watermark, Punctuation]


class WindowResult:
    """One emitted window aggregate.

    Attributes
    ----------
    query_id:
        Identifier of the query this window belongs to (assigned when the
        query is registered with an operator).
    start, end:
        Window boundaries, half-open interval ``[start, end)`` in the
        query's windowing measure.
    value:
        The final (lowered) aggregate of the window.
    is_update:
        ``True`` when this result revises a window that was already
        emitted (a late, in-allowed-lateness record changed the aggregate).
    """

    __slots__ = ("query_id", "start", "end", "value", "is_update", "key")

    def __init__(
        self,
        query_id: int,
        start: int,
        end: int,
        value: Any,
        is_update: bool = False,
        key: Any = None,
    ) -> None:
        self.query_id = query_id
        self.start = start
        self.end = end
        self.value = value
        self.is_update = is_update
        #: Partitioning key when emitted by a keyed operator (else None).
        self.key = key

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        upd = ", update" if self.is_update else ""
        keyed = f", key={self.key!r}" if self.key is not None else ""
        return f"WindowResult(q={self.query_id}, [{self.start}, {self.end}), {self.value!r}{upd}{keyed})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, WindowResult)
            and self.query_id == other.query_id
            and self.start == other.start
            and self.end == other.end
            and self.value == other.value
            and self.is_update == other.is_update
        )

    def __hash__(self) -> int:
        return hash((self.query_id, self.start, self.end, repr(self.value), self.is_update))

    def as_tuple(self) -> tuple:
        """Return ``(query_id, start, end, value)`` for compact assertions."""
        return (self.query_id, self.start, self.end, self.value)


def is_in_order(elements: Iterable[StreamElement]) -> bool:
    """Return ``True`` iff all records appear in non-decreasing event-time.

    Watermarks and punctuations are ignored for the order check (a
    watermark lagging behind the newest record is legal).
    """
    last = None
    for element in elements:
        if isinstance(element, Record):
            if last is not None and element.ts < last:
                return False
            last = element.ts
    return True


def max_event_time(elements: Iterable[StreamElement]) -> int | None:
    """Return the largest record event-time in ``elements`` (None if empty)."""
    best: int | None = None
    for element in elements:
        if isinstance(element, Record) and (best is None or element.ts > best):
            best = element.ts
    return best


def records_only(elements: Iterable[StreamElement]) -> Iterator[Record]:
    """Yield only the :class:`Record` elements of a stream."""
    for element in elements:
        if isinstance(element, Record):
            yield element
