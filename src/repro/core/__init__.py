"""Core of the reproduction: general stream slicing (Section 5).

Public entry point: :class:`GeneralSlicingOperator`.  The submodules
mirror the paper's architecture (Figure 7): stream slicer, slice
manager, window manager, and the shared aggregate store, plus the
workload characterization of Section 4.
"""

from .aggregate_store import (
    AggregateStore,
    EagerAggregateStore,
    LazyAggregateStore,
    SharedQueryPlan,
)
from .characteristics import (
    Query,
    RemovalStrategy,
    WorkloadCharacteristics,
    removal_strategy,
    requires_splits,
    requires_tuple_storage,
    select_kernel,
)
from .flatfat import FlatFAT
from .kernels import KernelKind, SubtractOnEvictKernel, TwoStacksKernel, make_kernel
from .measures import (
    AttributeMeasure,
    CountMeasure,
    EventTimeMeasure,
    MeasureKind,
    MeasureVector,
    ProcessingTimeMeasure,
)
from .operator_ import GeneralSlicingOperator
from .operator_base import StreamOrderViolation, WindowOperator
from .slice_ import Slice
from .slice_manager import Modification, SliceManager
from .stream_slicer import StreamSlicer
from .tracing import SpanStats, Tracer
from .types import Punctuation, Record, StreamElement, Watermark, WindowResult, is_in_order
from .window_manager import ManagedQuery, WindowManager

__all__ = [
    "GeneralSlicingOperator",
    "WindowOperator",
    "StreamOrderViolation",
    "Query",
    "WorkloadCharacteristics",
    "RemovalStrategy",
    "requires_tuple_storage",
    "requires_splits",
    "removal_strategy",
    "Record",
    "Watermark",
    "Punctuation",
    "StreamElement",
    "WindowResult",
    "is_in_order",
    "MeasureKind",
    "MeasureVector",
    "EventTimeMeasure",
    "ProcessingTimeMeasure",
    "CountMeasure",
    "AttributeMeasure",
    "Slice",
    "SliceManager",
    "Modification",
    "StreamSlicer",
    "Tracer",
    "SpanStats",
    "WindowManager",
    "ManagedQuery",
    "AggregateStore",
    "LazyAggregateStore",
    "EagerAggregateStore",
    "SharedQueryPlan",
    "FlatFAT",
    "KernelKind",
    "TwoStacksKernel",
    "SubtractOnEvictKernel",
    "make_kernel",
    "select_kernel",
]
