"""General stream slicing -- the paper's core contribution (Section 5).

:class:`GeneralSlicingOperator` is the drop-in window operator that
assembles the slicing pipeline of Figure 7 (Stream Slicer → Slice
Manager → Window Manager over a shared Aggregate Store) and adapts to
the workload characteristics of Section 4 via the Figure 4-6 decision
logic:

* records are retained only when the workload requires it;
* the aggregate store is lazy (slice list) or eager (FlatFAT over
  slices), selectable via ``eager=``;
* queries can be added and removed at runtime; characteristics are
  re-derived on every change (never on data properties);
* all queries share one slice chain per windowing measure.  Time-based
  and count-based queries use separate chains because out-of-order
  count shifts move records across *count* boundaries, which must not
  disturb time-aligned partials (this replaces the paper's
  vector-timestamp slicing with an equivalent per-dimension chain; see
  DESIGN.md).

The operator understands in-order and out-of-order streams.  On
in-order streams every record doubles as a watermark and windows are
emitted immediately; on out-of-order streams, emission follows explicit
watermarks and late records within the allowed lateness yield update
results.
"""

from __future__ import annotations

import bisect
from typing import Callable, Dict, List, Optional, Sequence

from ..aggregations.base import AggregateFunction
from ..windows.base import WindowEdges, WindowType
from ..windows.multimeasure import LastNEveryWindow
from ..windows.punctuation import PunctuationWindow
from ..windows.session import SessionWindow
from .aggregate_store import AggregateStore, EagerAggregateStore, LazyAggregateStore
from .characteristics import Query, WorkloadCharacteristics
from .kernels import KernelKind
from .measures import MeasureKind
from .operator_base import StreamOrderViolation, WindowOperator
from .slice_manager import Modification, SliceManager
from .stream_slicer import StreamSlicer
from .types import Punctuation, Record, StreamElement, Watermark, WindowResult
from .window_manager import ManagedQuery, WindowManager

__all__ = ["GeneralSlicingOperator"]

_TS_KEY = lambda record: record.ts  # noqa: E731 - bisect key


class _Chain:
    """One slicing pipeline serving all queries of a single measure."""

    def __init__(
        self,
        queries: List[Query],
        *,
        measure_kind: MeasureKind,
        in_order: bool,
        eager: bool,
        emit_empty: bool,
        share_aggregates: bool = True,
        share_windows: bool = True,
        kernel: Optional[KernelKind] = None,
    ) -> None:
        self.measure_kind = measure_kind
        self.queries = queries
        # Deduplicate aggregate functions by signature so equivalent
        # queries share one partial per slice (the aggregate-sharing core
        # of the paper: one ⊕ per record regardless of the query count).
        # ``share_aggregates=False`` disables the dedup for ablations.
        self.functions: List[AggregateFunction] = []
        self._fn_index: Dict[tuple, int] = {}
        self._fn_index_of_query: List[int] = []
        for index, query in enumerate(queries):
            key = (
                query.aggregation.signature()
                if share_aggregates
                else (index, query.aggregation.signature())
            )
            if key not in self._fn_index:
                self._fn_index[key] = len(self.functions)
                self.functions.append(query.aggregation)
            self._fn_index_of_query.append(self._fn_index[key])
        self._share_aggregates = share_aggregates

        characteristics = WorkloadCharacteristics(queries, in_order)
        self.characteristics = characteristics
        #: Eager-store kernel per shared function: auto-selected from
        #: the workload characteristics, or forced by the override.
        self.kernel_kinds: tuple = ()
        if eager:
            if kernel is not None:
                kinds = [kernel] * len(self.functions)
            else:
                kinds = [characteristics.kernel_for(fn) for fn in self.functions]
            self.store: AggregateStore = EagerAggregateStore(
                self.functions, kernel_kinds=kinds
            )
            self.kernel_kinds = tuple(kinds)
        else:
            self.store = LazyAggregateStore(self.functions)
        self.eager_store = eager

        self._windows = [query.window for query in queries]
        self.session_windows = [w for w in self._windows if isinstance(w, SessionWindow)]
        session_gaps = [w.gap for w in self.session_windows]
        track_counts = measure_kind is MeasureKind.COUNT

        self.manager = SliceManager(
            self.store,
            store_records=characteristics.store_tuples,
            track_counts=track_counts,
            session_gap=min(session_gaps) if session_gaps else None,
            floor_time_edge=self.floor_time_edge,
            ceil_time_edge=self.ceil_time_edge,
            edge_in_region=self.edge_in_region,
            is_count_edge=self.is_count_edge,
            on_modified=self._record_modification,
        )
        self.edges_move = bool(session_gaps) or any(
            isinstance(w, PunctuationWindow) for w in self._windows
        )
        self.slicer = StreamSlicer(
            self.store,
            next_time_edge=self.next_time_edge,
            floor_time_edge=self.floor_time_edge,
            next_count_edge=self.next_count_edge if track_counts else None,
            store_records=characteristics.store_tuples,
            track_counts=track_counts,
            edges_move=self.edges_move,
        )
        self.window_manager = WindowManager(
            self.store, self.manager, emit_empty=emit_empty, share_windows=share_windows
        )
        for query_pos, query in enumerate(queries):
            self.window_manager.add_query(
                ManagedQuery(
                    query.query_id,
                    query.window,
                    query.aggregation,
                    self._fn_index_of_query[query_pos],
                )
            )
        self._pending_modifications: List[Modification] = []

    # ------------------------------------------------------------------
    # edge callbacks (aggregate over all windows of this chain)

    def _time_edge_windows(self) -> List[WindowType]:
        if self.measure_kind is MeasureKind.TIME:
            return self._windows
        # Count chains cut at the trigger (time) edges of FCA windows only.
        return [w for w in self._windows if isinstance(w, LastNEveryWindow)]

    def _count_edge_windows(self) -> List[WindowType]:
        return [
            w
            for w in self._windows
            if w.measure_kind is MeasureKind.COUNT and not isinstance(w, LastNEveryWindow)
        ]

    def next_time_edge(self, ts: int) -> Optional[int]:
        best: Optional[int] = None
        for window in self._time_edge_windows():
            edge = window.get_next_edge(ts)
            if edge is not None and (best is None or edge < best):
                best = edge
        return best

    def floor_time_edge(self, ts: int) -> Optional[int]:
        best: Optional[int] = None
        for window in self._time_edge_windows():
            edge = window.get_floor_edge(ts)
            if edge is not None and (best is None or edge > best):
                best = edge
        return best

    def ceil_time_edge(self, ts: int) -> Optional[int]:
        return self.next_time_edge(ts)

    def next_count_edge(self, count: int) -> Optional[int]:
        best: Optional[int] = None
        for window in self._count_edge_windows():
            edge = window.get_next_edge(count)
            if edge is not None and (best is None or edge < best):
                best = edge
        return best

    def edge_needed(self, ts: int) -> bool:
        return any(window.is_edge(ts) for window in self._time_edge_windows())

    def edge_in_region(self, lo: int, hi: int) -> bool:
        """Whether any window has an edge in the closed interval [lo, hi].

        Session tentative edges are excluded (``get_floor_edge`` is None
        for sessions): only fixed edges forbid slice merges.
        """
        for window in self._time_edge_windows():
            floor = window.get_floor_edge(hi)
            if floor is not None and floor >= lo:
                return True
        return False

    def is_count_edge(self, count: int) -> bool:
        return any(window.is_edge(count) for window in self._count_edge_windows())

    def _record_modification(self, modification: Modification) -> None:
        self._pending_modifications.append(modification)

    def drain_modifications(self) -> List[Modification]:
        """Take and clear the modifications recorded since the last drain."""
        pending, self._pending_modifications = self._pending_modifications, []
        return pending

    # ------------------------------------------------------------------

    def max_window_extent(self) -> int:
        """Upper bound on how far back a window can reach (for eviction)."""
        extent = 0
        for window in self._windows:
            length = getattr(window, "length", None)
            if length is not None:
                extent = max(extent, length)
            gap = getattr(window, "gap", None)
            if gap is not None:
                extent = max(extent, gap)
            count = getattr(window, "count", None)
            if count is not None:
                extent = max(extent, count)
        return extent


class GeneralSlicingOperator(WindowOperator):
    """General stream slicing window operator (lazy or eager).

    Parameters
    ----------
    stream_in_order:
        Declare the input stream as guaranteed in-order.  In-order
        operators emit windows immediately (no watermarks needed) and
        raise :class:`StreamOrderViolation` on a late record.
    eager:
        Maintain an incremental kernel per function over slice partials
        (eager slicing): lower output latency, slightly lower throughput
        (Figure 11 vs 8/9).  The kernel is auto-selected from the
        workload characteristics (FlatFAT / finger-tree / two-stacks /
        subtract-on-evict); ``kernel=`` forces one for ablations.
    allowed_lateness:
        How long after the watermark late records still produce update
        results.  Records later than this are dropped.
    emit_empty:
        Emit results for windows containing no records (off by default,
        matching Flink's behaviour).
    kernel:
        Force one eager-store kernel for every function instead of the
        characteristics-driven selection.  Accepts a
        :class:`~repro.core.kernels.KernelKind` or its string value
        (``"flatfat"``, ``"finger_tree"``, ``"two_stacks"``,
        ``"subtract_on_evict"``).
        Requires ``eager=True``; illegal combinations (subtract without
        an invert) raise on query registration.
    share_windows:
        Batch each watermark's time-window queries so concurrently-open
        windows reuse each other's slice-range partials (on by
        default; off for ablations).
    """

    def __init__(
        self,
        *,
        stream_in_order: bool = False,
        eager: bool = False,
        allowed_lateness: int = 0,
        emit_empty: bool = False,
        timestamp_of: Optional[Callable[[Record], int]] = None,
        share_aggregates: bool = True,
        share_windows: bool = True,
        kernel: Optional[object] = None,
    ) -> None:
        super().__init__()
        self.stream_in_order = stream_in_order
        self.eager = eager
        self.allowed_lateness = allowed_lateness
        self.emit_empty = emit_empty
        #: Ablation switch: when False, every query keeps its own partial
        #: per slice instead of sharing by aggregation signature.
        self.share_aggregates = share_aggregates
        #: Ablation switch: shared-window partial reuse on watermarks.
        self.share_windows = share_windows
        if kernel is not None and not eager:
            raise ValueError("kernel override requires eager=True")
        #: Forced eager-store kernel, or None for auto-selection.
        self.kernel: Optional[KernelKind] = (
            KernelKind.coerce(kernel) if kernel is not None else None
        )
        #: Optional arbitrary-advancing-measure extractor (Section 4.3):
        #: when set, records are re-timestamped with this measure before
        #: slicing, so windows are defined on kilometres, transaction
        #: counters, invoice numbers, ... instead of event-time.
        self._timestamp_of = timestamp_of
        self._chains: Dict[MeasureKind, _Chain] = {}
        self._chain_list: tuple = ()
        self._max_ts: Optional[int] = None
        self._watermark: Optional[int] = None
        self._arrived = 0

    # ------------------------------------------------------------------
    # adaptivity (Section 5: re-derive characteristics on query changes)

    def _on_queries_changed(self) -> None:
        grouped: Dict[MeasureKind, List[Query]] = {}
        for query in self.queries:
            grouped.setdefault(query.window.measure_kind, []).append(query)
        rebuilt: Dict[MeasureKind, _Chain] = {}
        for kind, queries in grouped.items():
            existing = self._chains.get(kind)
            if existing is not None and [q.query_id for q in existing.queries] == [
                q.query_id for q in queries
            ]:
                rebuilt[kind] = existing
                continue
            rebuilt[kind] = _Chain(
                queries,
                measure_kind=kind,
                in_order=self.stream_in_order,
                eager=self.eager,
                emit_empty=self.emit_empty,
                share_aggregates=self.share_aggregates,
                share_windows=self.share_windows,
                kernel=self.kernel,
            )
        self._chains = rebuilt
        self._chain_list = tuple(rebuilt.values())
        self._on_tracing_changed()

    def _on_tracing_changed(self) -> None:
        """Thread the tracer through every chain's pipeline components.

        Rebuilding chains on query changes reattaches the tracer, so
        counters survive ``add_query``/``remove_query`` (they live on
        the tracer, not on the discarded components).
        """
        tracer = self._tracer
        for chain in self._chain_list:
            chain.slicer.tracer = tracer
            chain.manager.tracer = tracer
            chain.store.tracer = tracer

    @property
    def characteristics(self) -> Dict[MeasureKind, WorkloadCharacteristics]:
        """Per-chain workload characteristics (for introspection/tests)."""
        return {kind: chain.characteristics for kind, chain in self._chains.items()}

    @property
    def kernel_selection(self) -> Dict[MeasureKind, tuple]:
        """Per-chain eager-store kernel kinds (empty tuples when lazy)."""
        return {kind: chain.kernel_kinds for kind, chain in self._chains.items()}

    @property
    def stores_records(self) -> bool:
        """Whether any chain currently retains raw records."""
        return any(chain.characteristics.store_tuples for chain in self._chains.values())

    # ------------------------------------------------------------------
    # record processing

    def process_record(self, record: Record) -> List[WindowResult]:
        if self._timestamp_of is not None:
            record = Record(self._timestamp_of(record), record.value, record.key)
        return self._process_record_inner(record)

    def _process_record_inner(self, record: Record) -> List[WindowResult]:
        """Per-record processing after measure extraction has been applied."""
        results: List[WindowResult] = []
        in_order = self._max_ts is None or record.ts >= self._max_ts
        if not in_order and self.stream_in_order:
            raise StreamOrderViolation(
                f"record at ts={record.ts} arrived after ts={self._max_ts} "
                "on an operator declared in-order"
            )
        if not in_order and self._watermark is not None:
            if record.ts < self._watermark - self.allowed_lateness:
                self._drop_late(record)
                return results  # beyond the allowed lateness: dropped

        count_position = self._arrived
        self._arrived += 1
        tracer = self._tracer
        if tracer is not None:
            tracer.count("operator.records")
            if not in_order:
                tracer.count("operator.ooo_records")

        emitted_progress = False
        for chain in self._chain_list:
            if in_order:
                slicer = chain.slicer
                head = slicer.ensure_open_slice(record.ts, count_position)
                # Inlined slice-manager update: one incremental ⊕ per
                # distinct function (the per-record hot path).
                head.add_inorder(record, chain.functions)
                if chain.eager_store:
                    chain.store.slice_updated(len(chain.store.slices) - 1)
                if chain.session_windows:
                    for session in chain.session_windows:
                        session.observe(record.ts)
                    slicer.after_record(record.ts)
                elif chain.edges_move:
                    slicer.after_record(record.ts)
                if slicer.cut_performed:
                    emitted_progress = True
            else:
                chain.manager.add_out_of_order(record)
                for modification in chain.drain_modifications():
                    results.extend(chain.window_manager.on_modification(modification))

        if in_order:
            self._max_ts = record.ts
            if self.stream_in_order and emitted_progress:
                # Every record acts as a watermark on in-order streams.
                results.extend(self._advance_all(record.ts))
        return results

    # ------------------------------------------------------------------
    # batched ingestion fast path

    def process_batch(self, elements: Sequence[StreamElement]) -> List[WindowResult]:
        """Process a batch with run-based slice-edge amortization.

        Consecutive in-order records form a *run*; within a run, records
        that provably do not cross any chain's cached slice edge are
        bulk-folded into the open head slice with one partial-aggregate
        update per function (:meth:`Slice.add_run`), so the slice-edge
        lookup happens once per run instead of once per record.  Records
        that cross an edge, out-of-order records, watermarks, and
        punctuations all take the exact per-record path, keeping window
        results and emission order bit-identical to :meth:`process`.
        """
        results: List[WindowResult] = []
        n = len(elements)
        ts_of = self._timestamp_of
        i = 0
        while i < n:
            element = elements[i]
            if isinstance(element, Record):
                # Gather the maximal in-order record run starting here
                # (measure extraction applied up front, as process_record
                # would, so ordering is judged on the slicing measure).
                run: List[Record] = []
                prev = self._max_ts
                j = i
                while j < n:
                    e = elements[j]
                    if not isinstance(e, Record):
                        break
                    mapped = e if ts_of is None else Record(ts_of(e), e.value, e.key)
                    if prev is not None and mapped.ts < prev:
                        break
                    run.append(mapped)
                    prev = mapped.ts
                    j += 1
                if run:
                    self._process_inorder_run(run, results)
                    i = j
                    continue
            results.extend(self.process(element))
            i += 1
        return results

    def _process_inorder_run(self, run: List[Record], results: List[WindowResult]) -> None:
        """Ingest a run of in-order (measure-extracted) records."""
        chains = self._chain_list
        inner = self._process_record_inner
        fast = bool(chains)
        for chain in chains:
            # Moving (session / punctuation) edges shift with every
            # record, so the cached edge cannot bound a whole sub-run.
            if chain.session_windows or chain.edges_move:
                fast = False
                break
        if not fast:
            for record in run:
                results.extend(inner(record))
            return
        n = len(run)
        i = 0
        while i < n:
            # Edge-crossing records take the exact per-record path
            # (slice cuts, eager-tree maintenance, emission) ...
            results.extend(inner(run[i]))
            i += 1
            if i >= n:
                break
            # ... then everything strictly before every chain's cached
            # next edge is bulk-added to the open head slices.
            limit = n
            for chain in chains:
                edge = chain.slicer.cached_time_edge
                if edge is not None:
                    hi = bisect.bisect_left(run, edge, lo=i, hi=limit, key=_TS_KEY)
                    if hi < limit:
                        limit = hi
                count_edge = chain.slicer.cached_count_edge
                if count_edge is not None:
                    hi = i + (count_edge - self._arrived)
                    if hi < limit:
                        limit = hi
            if limit <= i:
                continue
            chunk = run[i:limit]
            for chain in chains:
                store = chain.store
                store.head.add_run(chunk, chain.functions)
                if chain.eager_store:
                    store.slice_updated(len(store.slices) - 1)
            self._arrived += len(chunk)
            self._max_ts = chunk[-1].ts
            if self._tracer is not None:
                self._tracer.count("batch.bulk_runs")
                self._tracer.count("batch.bulk_records", len(chunk))
                self._tracer.count("operator.records", len(chunk))
            i = limit

    # ------------------------------------------------------------------
    # watermarks and punctuations

    def process_watermark(self, watermark: Watermark) -> List[WindowResult]:
        if self._watermark is not None and watermark.ts <= self._watermark:
            return []
        self._watermark = watermark.ts
        results = self._advance_all(watermark.ts)
        self._evict(watermark.ts)
        return results

    def _advance_all(self, wm: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        for chain in self._chain_list:
            results.extend(chain.window_manager.advance(wm))
        return results

    def process_punctuation(self, punctuation: Punctuation) -> List[WindowResult]:
        results: List[WindowResult] = []
        # A punctuation marks a boundary *before* the records at its
        # timestamp, so one arriving at or behind the newest record is
        # late: it must split already-created slices.
        late = self._max_ts is not None and punctuation.ts <= self._max_ts
        if late and self.stream_in_order:
            raise StreamOrderViolation(
                f"punctuation at ts={punctuation.ts} arrived at/behind the newest "
                f"record (ts={self._max_ts}); in-order streams require strictly "
                "leading punctuations"
            )
        for chain in self._chains.values():
            for window in chain._windows:
                if not isinstance(window, PunctuationWindow):
                    continue
                edges = WindowEdges()
                window.on_punctuation(edges, punctuation)
                if not edges:
                    continue
                if late:
                    for ts in edges.added:
                        chain.manager.split_time(ts)
                    for modification in chain.drain_modifications():
                        results.extend(chain.window_manager.on_modification(modification))
                else:
                    chain.slicer.invalidate_cache()
        if self.stream_in_order and self._max_ts is not None:
            results.extend(self._advance_all(self._max_ts))
        return results

    # ------------------------------------------------------------------
    # eviction

    def _evict(self, wm: int) -> None:
        for chain in self._chains.values():
            horizon = wm - self.allowed_lateness - chain.max_window_extent()
            for first_ts, last_ts, lo, hi in self._open_sessions(chain, wm):
                horizon = min(horizon, first_ts - 1)
            evicted = chain.store.evict_before(horizon)
            if evicted:
                chain.window_manager.prune_emitted(horizon)
                chain.slicer.invalidate_cache()

    def _open_sessions(self, chain: _Chain, wm: int):
        gaps = [w.gap for w in chain._windows if isinstance(w, SessionWindow)]
        if not gaps:
            return []
        gap = max(gaps)
        return [
            session
            for session in chain.window_manager.current_sessions(gap)
            if session[1] + gap > wm
        ]

    # ------------------------------------------------------------------
    # introspection

    def state_objects(self) -> list:
        return [chain.store for chain in self._chains.values()]

    def total_slices(self) -> int:
        """Total slices currently held across all chains."""
        return sum(len(chain.store) for chain in self._chains.values())

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        mode = "eager" if self.eager else "lazy"
        order = "in-order" if self.stream_in_order else "out-of-order"
        return (
            f"GeneralSlicingOperator({mode}, {order}, queries={len(self.queries)}, "
            f"slices={self.total_slices()})"
        )
