"""The Stream Slicer -- Step 1 of the slicing pipeline (Section 5.3).

The slicer initializes slices on the fly while in-order records arrive.
It caches the timestamp of the next upcoming window edge; the common
case is a single comparison per record ("the majority of tuples do not
end a slice").  When a record passes the cached edge, the open slice is
closed at the edge and a new slice begins.

For out-of-order streams, slices start at window *starts and ends* so
late records can be attributed exactly; for in-order streams, starts
suffice -- both fall out naturally here because ``next_edge`` callbacks
enumerate every registered window edge.

Count-measure edges are tracked separately: the record count advances by
exactly one per record, so count slices close precisely when the
cumulative count reaches the next count edge.

The slicer never sees out-of-order records or watermarks; the operator
routes those straight to the slice manager (Figure 7).
"""

from __future__ import annotations

from typing import Callable, Optional

from .aggregate_store import AggregateStore
from .slice_ import Slice
from .tracing import Tracer

__all__ = ["StreamSlicer"]


class StreamSlicer:
    """On-the-fly slice initialization for in-order records.

    Parameters
    ----------
    store:
        The shared aggregate store that receives new slices.
    next_time_edge:
        Callback returning the smallest registered window edge strictly
        greater than a timestamp (or ``None``).  Supplied by the
        operator, which knows all registered window types.
    floor_time_edge:
        Callback returning the largest window edge at or before a
        timestamp (used to align the first slice of a stream / gap).
    next_count_edge:
        Like ``next_time_edge`` but in the count measure (or ``None``
        when no count-based query is registered).
    store_records, track_counts:
        Workload-characteristic switches from the decision tree.
    edges_move:
        ``True`` when a registered window (e.g. a session) has tentative
        edges that move as records arrive; the cached edge is then
        refreshed after every record instead of being reused.
    """

    def __init__(
        self,
        store: AggregateStore,
        next_time_edge: Callable[[int], Optional[int]],
        floor_time_edge: Callable[[int], Optional[int]],
        next_count_edge: Optional[Callable[[int], Optional[int]]] = None,
        store_records: bool = False,
        track_counts: bool = False,
        edges_move: bool = False,
    ) -> None:
        self._store = store
        self._next_time_edge = next_time_edge
        self._floor_time_edge = floor_time_edge
        self._next_count_edge = next_count_edge
        self._store_records = store_records
        self._track_counts = track_counts
        self._edges_move = edges_move
        self._cached_time_edge: Optional[int] = None
        self._cached_count_edge: Optional[int] = None
        self._cache_valid = False
        #: Whether the last ensure_open_slice call closed/opened a slice
        #: (windows can only end at slice cuts, so emission checks key off it).
        self.cut_performed = False
        #: Ablation switch: disable the cached next-edge so every record
        #: recomputes the upcoming window edge (the paper's Step 1
        #: optimization turned off; see benchmarks/test_ablations.py).
        self.cache_edges = True
        #: Observability sink; ``None`` (the default) is the no-op fast
        #: path -- attached by ``WindowOperator.enable_tracing()``.
        self.tracer: Optional[Tracer] = None

    # ------------------------------------------------------------------

    @property
    def store_records(self) -> bool:
        return self._store_records

    @store_records.setter
    def store_records(self, value: bool) -> None:
        self._store_records = value

    def invalidate_cache(self) -> None:
        """Force recomputation of the cached edges (workload changed)."""
        self._cache_valid = False

    def _num_functions(self) -> int:
        return len(self._store.functions)

    def _open_new_head(self, start_ts: int, count_start: Optional[int]) -> Slice:
        head = Slice(
            start_ts,
            None,
            self._num_functions(),
            store_records=self._store_records,
            count_start=count_start if self._track_counts else None,
        )
        self._store.append_slice(head)
        if self.tracer is not None:
            self.tracer.count("slicer.slices_created")
        return head

    def _close_head(self, end_ts: int, count_end: Optional[int], kind: str = Slice.END_TIME) -> None:
        head = self._store.head
        if head is None or head.end is not None:
            return
        head.end = end_ts
        head.end_kind = kind
        if self._track_counts:
            head.count_end = count_end

    def ensure_open_slice(self, ts: int, count_position: int) -> Slice:
        """Guarantee an open head slice covering ``ts``; cut passed edges.

        ``count_position`` is the number of records processed before the
        incoming one (its zero-based count).  Returns the slice that the
        incoming record belongs to.
        """
        self.cut_performed = False
        if not self.cache_edges:
            self._cache_valid = False
        head = self._store.head
        if head is None or head.end is not None:
            self.cut_performed = True
            floor = self._floor_time_edge(ts)
            start = floor if floor is not None else ts
            if head is not None and head.end is not None and start < head.end:
                start = head.end
            head = self._open_new_head(start, count_position)
            self._refresh_time_cache(start)
            self._refresh_count_cache(count_position)
            self._cache_valid = True

        if not self._cache_valid:
            # Edges up to the last processed record (or the slice start)
            # have already been cut; resume the search from there.
            base = head.start if head.last_ts is None else max(head.start, head.last_ts)
            self._refresh_time_cache(base)
            self._refresh_count_cache(count_position)
            self._cache_valid = True

        # --- time-measure cuts ------------------------------------------
        if self._cached_time_edge is not None and ts >= self._cached_time_edge:
            self.cut_performed = True
            first_edge = self._cached_time_edge
            # Find the last edge <= ts so empty regions get no slices.
            last_edge = first_edge
            while True:
                nxt = self._next_time_edge(last_edge)
                if nxt is None or nxt > ts:
                    break
                last_edge = nxt
            self._close_head(first_edge, count_position)
            head = self._open_new_head(last_edge, count_position)
            self._refresh_time_cache(last_edge)

        # --- count-measure cuts -----------------------------------------
        if self._cached_count_edge is not None and count_position >= self._cached_count_edge:
            # Counts advance by one, so equality holds on the in-order path.
            self.cut_performed = True
            head = self._store.head
            if head is not None and head.end is None and head.record_count > 0:
                boundary_ts = ts
                self._close_head(boundary_ts, count_position, kind=Slice.END_COUNT)
                head = self._open_new_head(boundary_ts, count_position)
            elif head is not None:
                head.count_start = count_position if self._track_counts else None
            self._refresh_count_cache(count_position)

        head = self._store.head
        assert head is not None and head.end is None
        if self.cut_performed and self.tracer is not None:
            self.tracer.count("slicer.cuts")
        return head

    def after_record(self, ts: int) -> None:
        """Post-record hook: refresh moving (session) edges."""
        if self._edges_move:
            self._refresh_time_cache(ts)

    def _refresh_time_cache(self, base: int) -> None:
        self._cached_time_edge = self._next_time_edge(base)
        if self.tracer is not None:
            self.tracer.count("slicer.edge_lookups")

    def _refresh_count_cache(self, count_position: int) -> None:
        if self._next_count_edge is None:
            self._cached_count_edge = None
        else:
            self._cached_count_edge = self._next_count_edge(count_position)

    @property
    def cached_time_edge(self) -> Optional[int]:
        """The cached upcoming window edge (exposed for tests)."""
        return self._cached_time_edge

    @property
    def cached_count_edge(self) -> Optional[int]:
        return self._cached_count_edge
