"""The shared aggregate store: ordered slices + optional aggregate tree.

The Aggregate Store (Figure 7) is the data structure shared by the
stream slicer (creates slices), the slice manager (updates slices), and
the window manager (computes window aggregates).

Two variants correspond to the paper's lazy and eager slicing:

* :class:`LazyAggregateStore` keeps only the ordered slice list; window
  aggregates are combined on demand from the covered slices -- highest
  throughput, latency linear in the slice count (Figure 11).
* :class:`EagerAggregateStore` additionally maintains a
  :class:`~repro.core.flatfat.FlatFAT` per aggregate function over the
  slice partials, trading update work for O(log s) window queries.

Slices are kept sorted by their start timestamp and never overlap, but
gaps between slices are legal (empty stream regions get no slice).
"""

from __future__ import annotations

import bisect
from typing import Any, Iterator, List, Optional, Sequence

from ..aggregations.base import AggregateFunction
from .flatfat import FlatFAT
from .slice_ import Slice
from .tracing import Tracer

__all__ = ["AggregateStore", "LazyAggregateStore", "EagerAggregateStore"]


class AggregateStore:
    """Base class: an ordered, gap-tolerant collection of slices."""

    def __init__(self, functions: Sequence[AggregateFunction]) -> None:
        self.functions = list(functions)
        self.slices: List[Slice] = []
        self._tracer: Optional[Tracer] = None

    # ------------------------------------------------------------------
    # observability

    @property
    def tracer(self) -> Optional[Tracer]:
        """Observability sink; ``None`` (default) is the no-op fast path."""
        return self._tracer

    @tracer.setter
    def tracer(self, value: Optional[Tracer]) -> None:
        self._tracer = value

    # ------------------------------------------------------------------
    # structure queries

    def __len__(self) -> int:
        return len(self.slices)

    def __iter__(self) -> Iterator[Slice]:
        return iter(self.slices)

    @property
    def head(self) -> Optional[Slice]:
        """The open (most recent) slice, if any."""
        return self.slices[-1] if self.slices else None

    def find_index(self, ts: int) -> Optional[int]:
        """Index of the slice covering ``ts``, or ``None`` (gap / before)."""
        position = bisect.bisect_right(self.slices, ts, key=lambda s: s.start) - 1
        if position < 0:
            return None
        candidate = self.slices[position]
        return position if candidate.covers(ts) else None

    def find_slice(self, ts: int) -> Optional[Slice]:
        """The slice covering ``ts``, or ``None``."""
        index = self.find_index(ts)
        return self.slices[index] if index is not None else None

    def neighbors(self, ts: int) -> tuple[Optional[int], Optional[int]]:
        """Indices of the last slice ending at/before ``ts`` and the first
        slice starting after ``ts`` (for gap insertion)."""
        position = bisect.bisect_right(self.slices, ts, key=lambda s: s.start)
        before = position - 1 if position > 0 else None
        after = position if position < len(self.slices) else None
        return before, after

    def index_of(self, slice_: Slice) -> int:
        """Index of a slice known to be in the store."""
        position = bisect.bisect_left(self.slices, slice_.start, key=lambda s: s.start)
        while position < len(self.slices):
            if self.slices[position] is slice_:
                return position
            position += 1
        raise ValueError("slice not found in store")

    # ------------------------------------------------------------------
    # structural mutation (overridden by the eager variant)

    def append_slice(self, slice_: Slice) -> None:
        """Append a new head slice (the common, cheap path)."""
        if self.slices and self.slices[-1].end is not None and slice_.start < self.slices[-1].end:
            raise ValueError("appended slice overlaps the current head")
        self.slices.append(slice_)

    def insert_slice(self, index: int, slice_: Slice) -> None:
        """Insert a slice at ``index`` (gap fill or split result)."""
        self.slices.insert(index, slice_)

    def remove_slice(self, index: int) -> Slice:
        """Remove and return the slice at ``index`` (merge cleanup)."""
        return self.slices.pop(index)

    def slice_updated(self, index: int) -> None:
        """Notification that the slice at ``index`` changed its aggregates."""

    def evict_before(self, ts: int) -> int:
        """Drop all slices that end at or before ``ts``; return the count."""
        keep = 0
        while keep < len(self.slices):
            end = self.slices[keep].end
            if end is None or end > ts:
                break
            keep += 1
        if keep:
            del self.slices[:keep]
            if self._tracer is not None:
                self._tracer.count("store.slices_evicted", keep)
        return keep

    # ------------------------------------------------------------------
    # aggregate queries

    def _combine_range(self, lo: int, hi: int, fn_index: int) -> Any:
        function = self.functions[fn_index]
        if self._tracer is not None and hi > lo:
            self._tracer.count("store.range_queries")
            self._tracer.count("store.slices_combined", hi - lo)
        partial = None
        for slice_ in self.slices[lo:hi]:
            agg = slice_.aggs[fn_index]
            if agg is None:
                continue
            partial = agg if partial is None else function.combine(partial, agg)
        return partial

    def range_indices(self, start: int, end: int) -> tuple[int, int]:
        """Slice index range fully contained in time interval ``[start, end)``."""
        lo = bisect.bisect_left(self.slices, start, key=lambda s: s.start)
        hi = lo
        while hi < len(self.slices):
            slice_end = self.slices[hi].end
            if slice_end is None or slice_end > end:
                break
            hi += 1
        return lo, hi

    def query_time(self, start: int, end: int, fn_index: int) -> Any:
        """Combine all slices inside the time interval ``[start, end)``.

        Assumes slice edges align with ``start``/``end`` (the slicer
        guarantees this for registered window types).
        """
        lo, hi = self.range_indices(start, end)
        return self.query_slices(lo, hi, fn_index)

    def query_slices(self, lo: int, hi: int, fn_index: int) -> Any:
        """Combine slices ``[lo, hi)`` by index -- lazy: O(hi - lo)."""
        return self._combine_range(lo, hi, fn_index)

    def count_range_indices(self, count_start: int, count_end: int) -> tuple[int, int]:
        """Slice index range fully contained in a count interval."""
        lo = 0
        while lo < len(self.slices):
            cs = self.slices[lo].count_start
            if cs is not None and cs >= count_start:
                break
            lo += 1
        hi = lo
        while hi < len(self.slices):
            ce = self.slices[hi].count_end
            if ce is None or ce > count_end:
                break
            hi += 1
        return lo, hi

    def query_count(self, count_start: int, count_end: int, fn_index: int) -> Any:
        """Combine all slices inside the count interval ``[start, end)``."""
        lo, hi = self.count_range_indices(count_start, count_end)
        return self.query_slices(lo, hi, fn_index)

    def total_records(self) -> int:
        """Total number of records across all slices."""
        return sum(slice_.record_count for slice_ in self.slices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(slices={len(self.slices)})"


class LazyAggregateStore(AggregateStore):
    """Slice list only; window aggregates combined on demand (lazy slicing)."""


class EagerAggregateStore(AggregateStore):
    """Slice list plus a FlatFAT per function over slice partials.

    Structural changes (insert/remove/split/merge) rebuild the affected
    trees; in-place aggregate updates repair one root path per tree.
    The trees are small -- one leaf per *slice*, not per record -- which
    is why eager slicing rarely suffers from out-of-order input
    (Section 6.2.2).
    """

    def __init__(self, functions: Sequence[AggregateFunction]) -> None:
        super().__init__(functions)
        self.trees: List[FlatFAT] = [FlatFAT(fn.combine) for fn in self.functions]

    @AggregateStore.tracer.setter
    def tracer(self, value: Optional[Tracer]) -> None:
        self._tracer = value
        for tree in self.trees:
            tree.tracer = value

    def append_slice(self, slice_: Slice) -> None:
        super().append_slice(slice_)
        for fn_index, tree in enumerate(self.trees):
            tree.append(slice_.aggs[fn_index])

    def insert_slice(self, index: int, slice_: Slice) -> None:
        super().insert_slice(index, slice_)
        for fn_index, tree in enumerate(self.trees):
            tree.insert(index, slice_.aggs[fn_index])

    def remove_slice(self, index: int) -> Slice:
        removed = super().remove_slice(index)
        for tree in self.trees:
            tree.remove(index)
        return removed

    def slice_updated(self, index: int) -> None:
        slice_ = self.slices[index]
        for fn_index, tree in enumerate(self.trees):
            tree.update(index, slice_.aggs[fn_index])

    def evict_before(self, ts: int) -> int:
        evicted = super().evict_before(ts)
        if evicted:
            for tree in self.trees:
                tree.remove_front(evicted)
        return evicted

    def query_slices(self, lo: int, hi: int, fn_index: int) -> Any:
        """Combine slices ``[lo, hi)`` via the aggregate tree: O(log s)."""
        if lo >= hi:
            return None
        if self._tracer is not None:
            self._tracer.count("store.range_queries")
        return self.trees[fn_index].query(lo, hi)
