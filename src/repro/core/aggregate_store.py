"""The shared aggregate store: ordered slices + optional aggregate tree.

The Aggregate Store (Figure 7) is the data structure shared by the
stream slicer (creates slices), the slice manager (updates slices), and
the window manager (computes window aggregates).

Two variants correspond to the paper's lazy and eager slicing:

* :class:`LazyAggregateStore` keeps only the ordered slice list; window
  aggregates are combined on demand from the covered slices -- highest
  throughput, latency linear in the slice count (Figure 11).
* :class:`EagerAggregateStore` additionally maintains one incremental
  *kernel* per aggregate function over the slice partials -- a
  :class:`~repro.core.flatfat.FlatFAT` tree in the general case, or one
  of the O(1) kernels from :mod:`repro.core.kernels` when the workload
  characteristics allow (in-order stream, no splits).

:class:`SharedQueryPlan` batches the window manager's per-watermark
range queries so concurrently-open windows over the same slice chain
reuse each other's partials: queries ending at the same slice differ
only in how far left they reach, so the longest shared suffix is folded
once and shorter windows extend it leftward (Factor-Windows-style
sharing, counted as ``share.hits``).

Slices are kept sorted by their start timestamp and never overlap, but
gaps between slices are legal (empty stream regions get no slice).
"""

from __future__ import annotations

import bisect
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple, Union

from ..aggregations.base import AggregateFunction
from .flatfat import FlatFAT
from .kernels import KernelKind, make_kernel
from .slice_ import Slice
from .tracing import Tracer

__all__ = [
    "AggregateStore",
    "LazyAggregateStore",
    "EagerAggregateStore",
    "SharedQueryPlan",
]


class AggregateStore:
    """Base class: an ordered, gap-tolerant collection of slices."""

    #: Whether :class:`SharedQueryPlan` should answer batched queries by
    #: folding shared suffixes once and extending leftward.  True where
    #: range queries cost O(range) (lazy); the eager kernels answer each
    #: query in O(1)/O(log s) already, so only duplicates are shared.
    shared_suffix_folding = True

    def __init__(self, functions: Sequence[AggregateFunction]) -> None:
        self.functions = list(functions)
        self.slices: List[Slice] = []
        self._tracer: Optional[Tracer] = None

    # ------------------------------------------------------------------
    # observability

    @property
    def tracer(self) -> Optional[Tracer]:
        """Observability sink; ``None`` (default) is the no-op fast path."""
        return self._tracer

    @tracer.setter
    def tracer(self, value: Optional[Tracer]) -> None:
        self._tracer = value

    # ------------------------------------------------------------------
    # structure queries

    def __len__(self) -> int:
        return len(self.slices)

    def __iter__(self) -> Iterator[Slice]:
        return iter(self.slices)

    @property
    def head(self) -> Optional[Slice]:
        """The open (most recent) slice, if any."""
        return self.slices[-1] if self.slices else None

    def find_index(self, ts: int) -> Optional[int]:
        """Index of the slice covering ``ts``, or ``None`` (gap / before)."""
        position = bisect.bisect_right(self.slices, ts, key=lambda s: s.start) - 1
        if position < 0:
            return None
        candidate = self.slices[position]
        return position if candidate.covers(ts) else None

    def find_slice(self, ts: int) -> Optional[Slice]:
        """The slice covering ``ts``, or ``None``."""
        index = self.find_index(ts)
        return self.slices[index] if index is not None else None

    def neighbors(self, ts: int) -> tuple[Optional[int], Optional[int]]:
        """Indices of the last slice ending at/before ``ts`` and the first
        slice starting after ``ts`` (for gap insertion)."""
        position = bisect.bisect_right(self.slices, ts, key=lambda s: s.start)
        before = position - 1 if position > 0 else None
        after = position if position < len(self.slices) else None
        return before, after

    def index_of(self, slice_: Slice) -> int:
        """Index of a slice known to be in the store."""
        position = bisect.bisect_left(self.slices, slice_.start, key=lambda s: s.start)
        while position < len(self.slices):
            if self.slices[position] is slice_:
                return position
            position += 1
        raise ValueError("slice not found in store")

    # ------------------------------------------------------------------
    # structural mutation (overridden by the eager variant)

    def append_slice(self, slice_: Slice) -> None:
        """Append a new head slice (the common, cheap path)."""
        if self.slices and self.slices[-1].end is not None and slice_.start < self.slices[-1].end:
            raise ValueError("appended slice overlaps the current head")
        self.slices.append(slice_)

    def insert_slice(self, index: int, slice_: Slice) -> None:
        """Insert a slice at ``index`` (gap fill or split result)."""
        self.slices.insert(index, slice_)

    def remove_slice(self, index: int) -> Slice:
        """Remove and return the slice at ``index`` (merge cleanup)."""
        return self.slices.pop(index)

    def slice_updated(self, index: int) -> None:
        """Notification that the slice at ``index`` changed its aggregates."""

    def evict_before(self, ts: int) -> int:
        """Drop all slices that end at or before ``ts``; return the count."""
        keep = 0
        while keep < len(self.slices):
            end = self.slices[keep].end
            if end is None or end > ts:
                break
            keep += 1
        if keep:
            del self.slices[:keep]
            if self._tracer is not None:
                self._tracer.count("store.slices_evicted", keep)
        return keep

    # ------------------------------------------------------------------
    # aggregate queries

    def _combine_range(self, lo: int, hi: int, fn_index: int) -> Any:
        function = self.functions[fn_index]
        if self._tracer is not None and hi > lo:
            self._tracer.count("store.range_queries")
            self._tracer.count("store.slices_combined", hi - lo)
        partial = None
        for slice_ in self.slices[lo:hi]:
            agg = slice_.aggs[fn_index]
            if agg is None:
                continue
            partial = agg if partial is None else function.combine(partial, agg)
        return partial

    def range_indices(self, start: int, end: int) -> tuple[int, int]:
        """Slice index range fully contained in time interval ``[start, end)``."""
        lo = bisect.bisect_left(self.slices, start, key=lambda s: s.start)
        hi = lo
        while hi < len(self.slices):
            slice_end = self.slices[hi].end
            if slice_end is None or slice_end > end:
                break
            hi += 1
        return lo, hi

    def query_time(self, start: int, end: int, fn_index: int) -> Any:
        """Combine all slices inside the time interval ``[start, end)``.

        Assumes slice edges align with ``start``/``end`` (the slicer
        guarantees this for registered window types).
        """
        lo, hi = self.range_indices(start, end)
        return self.query_slices(lo, hi, fn_index)

    def query_slices(self, lo: int, hi: int, fn_index: int) -> Any:
        """Combine slices ``[lo, hi)`` by index -- lazy: O(hi - lo)."""
        return self._combine_range(lo, hi, fn_index)

    def count_range_indices(self, count_start: int, count_end: int) -> tuple[int, int]:
        """Slice index range fully contained in a count interval."""
        lo = 0
        while lo < len(self.slices):
            cs = self.slices[lo].count_start
            if cs is not None and cs >= count_start:
                break
            lo += 1
        hi = lo
        while hi < len(self.slices):
            ce = self.slices[hi].count_end
            if ce is None or ce > count_end:
                break
            hi += 1
        return lo, hi

    def query_count(self, count_start: int, count_end: int, fn_index: int) -> Any:
        """Combine all slices inside the count interval ``[start, end)``."""
        lo, hi = self.count_range_indices(count_start, count_end)
        return self.query_slices(lo, hi, fn_index)

    def total_records(self) -> int:
        """Total number of records across all slices."""
        return sum(slice_.record_count for slice_ in self.slices)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}(slices={len(self.slices)})"


class LazyAggregateStore(AggregateStore):
    """Slice list only; window aggregates combined on demand (lazy slicing)."""


class EagerAggregateStore(AggregateStore):
    """Slice list plus one incremental kernel per function.

    Each kernel maintains the slice partials of one shared aggregate
    function: a FlatFAT tree in the general case (O(log s) everything),
    or a two-stacks / subtract-on-evict kernel (amortised O(1)) when the
    workload characteristics permit (:func:`~repro.core.characteristics.
    select_kernel`).  Structural changes (insert/remove/split/merge)
    propagate to every kernel; in-place aggregate updates repair one
    entry per kernel.  The kernels are small -- one leaf per *slice*,
    not per record -- which is why eager slicing rarely suffers from
    out-of-order input (Section 6.2.2).
    """

    shared_suffix_folding = False

    def __init__(
        self,
        functions: Sequence[AggregateFunction],
        kernel_kinds: Optional[Sequence[Union[KernelKind, str]]] = None,
    ) -> None:
        super().__init__(functions)
        if kernel_kinds is None:
            kinds = [KernelKind.FLAT_FAT] * len(self.functions)
        else:
            kinds = [KernelKind.coerce(kind) for kind in kernel_kinds]
            if len(kinds) != len(self.functions):
                raise ValueError(
                    f"got {len(kinds)} kernel kinds for {len(self.functions)} functions"
                )
        self.kernel_kinds: Tuple[KernelKind, ...] = tuple(kinds)
        self.kernels = [
            make_kernel(kind, fn) for kind, fn in zip(kinds, self.functions)
        ]

    @property
    def trees(self) -> list:
        """Backwards-compatible alias from the FlatFAT-only era."""
        return self.kernels

    @AggregateStore.tracer.setter
    def tracer(self, value: Optional[Tracer]) -> None:
        self._tracer = value
        for kernel in self.kernels:
            kernel.tracer = value

    def append_slice(self, slice_: Slice) -> None:
        super().append_slice(slice_)
        for fn_index, kernel in enumerate(self.kernels):
            kernel.append(slice_.aggs[fn_index])
        if self._tracer is not None:
            self._tracer.count("kernel.appends")

    def insert_slice(self, index: int, slice_: Slice) -> None:
        super().insert_slice(index, slice_)
        for fn_index, kernel in enumerate(self.kernels):
            kernel.insert(index, slice_.aggs[fn_index])

    def remove_slice(self, index: int) -> Slice:
        removed = super().remove_slice(index)
        for kernel in self.kernels:
            kernel.remove(index)
        return removed

    def slice_updated(self, index: int) -> None:
        slice_ = self.slices[index]
        for fn_index, kernel in enumerate(self.kernels):
            kernel.update(index, slice_.aggs[fn_index])

    def evict_before(self, ts: int) -> int:
        evicted = super().evict_before(ts)
        if evicted:
            for kernel in self.kernels:
                kernel.remove_front(evicted)
            if self._tracer is not None:
                self._tracer.count("kernel.evictions", evicted)
        return evicted

    def query_slices(self, lo: int, hi: int, fn_index: int) -> Any:
        """Combine slices ``[lo, hi)`` via the function's kernel."""
        if lo >= hi:
            return None
        if self._tracer is not None:
            self._tracer.count("store.range_queries")
        return self.kernels[fn_index].query(lo, hi)


class SharedQueryPlan:
    """One watermark's batch of slice-range queries with partial reuse.

    The window manager collects every time-window query triggered by a
    watermark advance as ``(lo, hi, fn_index)`` requests, then calls
    :meth:`execute` once.  Requests over the same function ending at the
    same slice index share their suffix: the shortest range is folded
    first, and each wider range only folds its extra leftward slices and
    combines them *in front of* the cached suffix, preserving stream
    order for non-commutative functions.  On stores whose point queries
    are already cheap (eager kernels), only exact duplicates are shared.

    Counters: ``share.requests`` (batched queries), ``share.hits``
    (queries answered from a shared partial instead of a full fold).
    """

    __slots__ = ("_store", "_requests", "_results")

    def __init__(self, store: AggregateStore) -> None:
        self._store = store
        self._requests: List[Tuple[int, int, int]] = []
        self._results: List[Any] = []

    def request(self, lo: int, hi: int, fn_index: int) -> int:
        """Enqueue a query over slices ``[lo, hi)``; returns its token."""
        self._requests.append((lo, hi, fn_index))
        return len(self._requests) - 1

    def result(self, token: int) -> Any:
        return self._results[token]

    def execute(self) -> None:
        """Answer all enqueued requests (in one pass per share group)."""
        store = self._store
        tracer = store.tracer
        requests = self._requests
        self._results = results = [None] * len(requests)
        if not requests:
            return
        if tracer is not None:
            tracer.count("share.requests", len(requests))
        if not store.shared_suffix_folding:
            memo: Dict[Tuple[int, int, int], Any] = {}
            for token, key in enumerate(requests):
                if key in memo:
                    results[token] = memo[key]
                    if tracer is not None:
                        tracer.count("share.hits")
                else:
                    memo[key] = results[token] = store.query_slices(*key)
            return
        # Group by (function, right edge); nested ranges share suffixes.
        groups: Dict[Tuple[int, int], Dict[int, List[int]]] = {}
        for token, (lo, hi, fn_index) in enumerate(requests):
            groups.setdefault((fn_index, hi), {}).setdefault(lo, []).append(token)
        for (fn_index, hi), by_lo in groups.items():
            combine = store.functions[fn_index].combine
            partial: Any = None
            prev_lo = hi
            first = True
            for lo in sorted(by_lo, reverse=True):
                extension = store._combine_range(lo, prev_lo, fn_index)
                if partial is None:
                    partial = extension
                elif extension is not None:
                    # The extension covers strictly earlier slices.
                    partial = combine(extension, partial)
                if tracer is not None and not first:
                    tracer.count("share.hits", len(by_lo[lo]))
                elif tracer is not None and len(by_lo[lo]) > 1:
                    tracer.count("share.hits", len(by_lo[lo]) - 1)
                first = False
                prev_lo = lo
                for token in by_lo[lo]:
                    results[token] = partial
