"""The Window Manager -- Step 3 of the slicing pipeline (Section 5.3).

The window manager computes final window aggregates from slice
aggregates.  On in-order streams every record acts as a watermark with
the record's timestamp; on out-of-order streams, explicit watermarks
drive emission and late records (within the allowed lateness) produce
*update* results for windows that were already emitted.

Responsibilities:

* enumerate windows that ended in ``(prev_wm, curr_wm]`` for every
  registered query and emit their aggregates (one final ``lower`` each);
* derive session windows from slice activity metadata (``first_ts`` /
  ``last_ts``) and emit sessions whose gap timed out before the
  watermark;
* resolve count-measure windows against the cumulative record counts
  maintained on slices, splitting slices on demand for multi-measure
  (FCA) window starts;
* re-emit updated aggregates when the slice manager reports a
  modification inside the already-emitted region.
"""

from __future__ import annotations

import bisect
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..aggregations.base import AggregateFunction
from ..windows.base import ContextClass
from ..windows.multimeasure import LastNEveryWindow
from ..windows.session import SessionWindow
from .aggregate_store import AggregateStore, SharedQueryPlan
from .measures import MeasureKind
from .slice_manager import Modification, SliceManager
from .types import WindowResult

__all__ = ["WindowManager", "ManagedQuery"]


class ManagedQuery:
    """A query as seen by the window manager of one slicing chain."""

    __slots__ = ("query_id", "window", "function", "fn_index")

    def __init__(self, query_id: int, window, function: AggregateFunction, fn_index: int) -> None:
        self.query_id = query_id
        self.window = window
        self.function = function
        self.fn_index = fn_index


class WindowManager:
    """Final aggregation and emission for one slicing chain."""

    #: Minimum upper-bound on saved slice combines (total spanned slices
    #: minus the widest range) before a trigger batch goes through the
    #: :class:`SharedQueryPlan`; below it, direct per-window queries are
    #: cheaper than the plan's grouping.  Results are identical either
    #: way -- this is purely a cost crossover.
    share_min_savings = 8

    def __init__(
        self,
        store: AggregateStore,
        slice_manager: SliceManager,
        *,
        emit_empty: bool = False,
        share_windows: bool = True,
    ) -> None:
        self._store = store
        self._manager = slice_manager
        self._emit_empty = emit_empty
        #: Batch each watermark's time-window queries through a
        #: :class:`SharedQueryPlan` so overlapping windows reuse
        #: partials.  Off only for ablations.
        self._share_windows = share_windows
        self._queries: List[ManagedQuery] = []
        self._prev_wm: Optional[int] = None
        #: Emitted (start, end) pairs per query, pruned on eviction.
        self._emitted: Dict[int, Set[Tuple[int, int]]] = {}
        #: Emitted high-water mark in the count domain per count query.
        self._count_hwm: Dict[int, int] = {}
        #: Emitted trigger edges per multi-measure query.
        self._emitted_edges: Dict[int, Set[int]] = {}

    # ------------------------------------------------------------------
    # registration

    def add_query(self, managed: ManagedQuery) -> None:
        self._queries.append(managed)
        self._emitted.setdefault(managed.query_id, set())
        if isinstance(managed.window, LastNEveryWindow):
            self._emitted_edges.setdefault(managed.query_id, set())

    def remove_query(self, query_id: int) -> None:
        self._queries = [q for q in self._queries if q.query_id != query_id]
        self._emitted.pop(query_id, None)
        self._count_hwm.pop(query_id, None)
        self._emitted_edges.pop(query_id, None)

    @property
    def queries(self) -> Sequence[ManagedQuery]:
        return self._queries

    @property
    def watermark(self) -> Optional[int]:
        return self._prev_wm

    # ------------------------------------------------------------------
    # emission on watermark progress

    def advance(self, wm: int) -> List[WindowResult]:
        """Emit all windows that ended at or before ``wm``.

        Time-window queries are collected into one
        :class:`SharedQueryPlan` and answered together so overlapping
        windows (across all queries of this chain) reuse each other's
        slice-range partials; placeholder slots keep the emission order
        identical to per-window evaluation.
        """
        prev = self._prev_wm
        if prev is not None and wm <= prev:
            return []
        results: List[WindowResult] = []
        if prev is not None:
            lower_bound = prev
        else:
            # First advance: no window ending before the first slice can
            # contain records, so start enumerating there.
            earliest = self._store.slices[0].start if self._store.slices else wm
            lower_bound = min(earliest, wm) - 1
        share = self._share_windows
        pending: List[Tuple[int, ManagedQuery, int, int, int, int]] = []
        for managed in self._queries:
            window = managed.window
            if isinstance(window, SessionWindow):
                results.extend(self._trigger_sessions(managed, wm))
            elif isinstance(window, LastNEveryWindow):
                results.extend(self._trigger_multimeasure(managed, lower_bound, wm))
            elif window.measure_kind is MeasureKind.COUNT:
                results.extend(self._trigger_count(managed, wm))
            else:
                self._trigger_time(managed, lower_bound, wm, share, pending, results)
        if pending:
            # Sharing pays when the trigger batch re-covers slice ranges
            # (nested sliding windows, many queries); for one window, or
            # a few short disjoint ranges, the plan's grouping machinery
            # costs more than the handful of combines it saves.  The
            # upper bound on saved combines is the total spanned length
            # minus the widest range (perfect nesting).
            spans = [hi - lo for _, _, _, _, lo, hi in pending]
            if len(pending) >= 2 and sum(spans) - max(spans) >= self.share_min_savings:
                plan = SharedQueryPlan(self._store)
                tokens = [
                    plan.request(lo, hi, managed.fn_index)
                    for _, managed, _, _, lo, hi in pending
                ]
                plan.execute()
                partials = [plan.result(token) for token in tokens]
            else:
                partials = [
                    self._store.query_slices(lo, hi, managed.fn_index)
                    for _, managed, _, _, lo, hi in pending
                ]
            for (slot, managed, start, end, _, _), partial in zip(pending, partials):
                if partial is None and not self._emit_empty:
                    continue
                value = managed.function.lower_or_default(partial)
                self._emitted[managed.query_id].add((start, end))
                results[slot] = WindowResult(managed.query_id, start, end, value)
            results = [r for r in results if r is not None]
        self._prev_wm = wm
        return results

    def _trigger_time(
        self,
        managed: ManagedQuery,
        prev: int,
        wm: int,
        share: bool,
        pending: List[Tuple[int, ManagedQuery, int, int, int, int]],
        results: List[WindowResult],
    ) -> None:
        emitted = self._emitted[managed.query_id]
        for start, end in managed.window.trigger_windows(prev, wm):
            if (start, end) in emitted:
                continue
            if not share:
                result = self._time_window_result(managed, start, end, is_update=False)
                if result is not None:
                    emitted.add((start, end))
                    results.append(result)
            else:
                lo, hi = self._query_range(start, end)
                # Reserve the emission slot now; resolved after the
                # whole trigger batch is collected.
                pending.append((len(results), managed, start, end, lo, hi))
                results.append(None)  # type: ignore[arg-type]

    def _query_range(self, start: int, end: int) -> Tuple[int, int]:
        """Slice index range covering time window ``[start, end)``.

        The open head slice has no end yet, but the slicer guarantees it
        holds no record at/after the next uncut window edge, so it is
        included whenever its records provably precede the window end.
        """
        lo, hi = self._store.range_indices(start, end)
        slices = self._store.slices
        if hi < len(slices):
            head = slices[hi]
            if (
                head.end is None
                and head.start >= start
                and (head.last_ts is None or head.last_ts < end)
            ):
                hi += 1
        return lo, hi

    def _time_window_result(
        self, managed: ManagedQuery, start: int, end: int, is_update: bool
    ) -> Optional[WindowResult]:
        lo, hi = self._query_range(start, end)
        partial = self._store.query_slices(lo, hi, managed.fn_index)
        if partial is None and not self._emit_empty:
            return None
        value = managed.function.lower_or_default(partial)
        return WindowResult(managed.query_id, start, end, value, is_update)

    # ------------------------------------------------------------------
    # sessions

    def current_sessions(self, gap: int) -> List[Tuple[int, int, int, int]]:
        """Group slices into sessions by activity gaps.

        Returns ``(first_ts, last_ts, lo_index, hi_index)`` per session,
        where ``[lo, hi)`` is the covered slice index range (non-empty
        slices only at the boundaries, empties inside are skipped).
        """
        sessions: List[Tuple[int, int, int, int]] = []
        current: Optional[List[int]] = None  # [first_ts, last_ts, lo, hi]
        for index, slice_ in enumerate(self._store.slices):
            if slice_.is_empty():
                continue
            assert slice_.first_ts is not None and slice_.last_ts is not None
            if current is not None and slice_.first_ts - current[1] < gap:
                current[1] = max(current[1], slice_.last_ts)
                current[3] = index + 1
            else:
                if current is not None:
                    sessions.append(tuple(current))  # type: ignore[arg-type]
                current = [slice_.first_ts, slice_.last_ts, index, index + 1]
        if current is not None:
            sessions.append(tuple(current))  # type: ignore[arg-type]
        return sessions

    def _trigger_sessions(self, managed: ManagedQuery, wm: int) -> List[WindowResult]:
        window: SessionWindow = managed.window
        results: List[WindowResult] = []
        emitted = self._emitted[managed.query_id]
        for first_ts, last_ts, lo, hi in self.current_sessions(window.gap):
            end = last_ts + window.gap
            if end > wm:
                continue  # session not yet timed out
            if (first_ts, end) in emitted:
                continue
            partial = self._store.query_slices(lo, hi, managed.fn_index)
            value = managed.function.lower_or_default(partial)
            emitted.add((first_ts, end))
            results.append(WindowResult(managed.query_id, first_ts, end, value))
        return results

    # ------------------------------------------------------------------
    # count-measure windows

    def completed_count(self, wm: int) -> int:
        """Largest cumulative count whose records are all at/before ``wm``."""
        total = 0
        for slice_ in self._store.slices:
            if slice_.record_count == 0:
                continue
            assert slice_.last_ts is not None
            if slice_.last_ts <= wm:
                base = slice_.count_start if slice_.count_start is not None else total
                total = base + slice_.record_count
            else:
                if slice_.records is not None:
                    base = slice_.count_start if slice_.count_start is not None else total
                    within = bisect.bisect_right(slice_.records, wm, key=lambda r: r.ts)
                    total = base + within
                break
        return total

    def _trigger_count(self, managed: ManagedQuery, wm: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        completed = self.completed_count(wm)
        previous = self._count_hwm.get(managed.query_id, 0)
        if completed <= previous:
            return results
        for start, end in managed.window.trigger_windows(previous, completed):
            value = self._count_window_value(managed, start, end)
            if value is None and not self._emit_empty:
                continue
            results.append(WindowResult(managed.query_id, start, end, value))
        self._count_hwm[managed.query_id] = completed
        return results

    def _count_window_value(self, managed: ManagedQuery, start: int, end: int):
        partial = self._query_count_exact(start, end, managed.fn_index)
        if partial is None:
            return managed.function.empty_result() if self._emit_empty else None
        return managed.function.lower(partial)

    def _query_count_exact(self, count_start: int, count_end: int, fn_index: int):
        """Combine the records with positions in ``[count_start, count_end)``.

        Full slices contribute their precomputed partial; a partially
        covered slice (possible only for the open head or mid-slice FCA
        starts) contributes a fold over its stored records.
        """
        function = self._store.functions[fn_index]
        partial = None
        slices = self._store.slices
        # Slices are ordered by cumulative count; skip straight to the
        # first slice that can intersect the queried range.
        lo = bisect.bisect_right(
            slices, count_start, key=lambda s: (s.count_start or 0) + s.record_count
        )
        for slice_ in slices[lo:]:
            base = slice_.count_start
            if base is None:
                continue
            hi = base + slice_.record_count
            if hi <= count_start:
                continue
            if base >= count_end:
                break
            if base >= count_start and hi <= count_end and (
                slice_.count_end is not None or hi <= count_end
            ):
                piece = slice_.aggs[fn_index]
            else:
                if slice_.records is None:
                    piece = slice_.aggs[fn_index]  # best effort without records
                else:
                    lo_off = max(0, count_start - base)
                    hi_off = min(slice_.record_count, count_end - base)
                    piece = None
                    for record in slice_.records[lo_off:hi_off]:
                        lifted = function.lift(record.value)
                        piece = lifted if piece is None else function.combine(piece, lifted)
            if piece is None:
                continue
            partial = piece if partial is None else function.combine(partial, piece)
        return partial

    # ------------------------------------------------------------------
    # multi-measure (FCA) windows

    def _cumulative_count_at(self, edge_ts: int) -> int:
        """Number of records with event-time strictly before ``edge_ts``."""
        total = 0
        for slice_ in self._store.slices:
            if slice_.end is not None and slice_.end <= edge_ts:
                total += slice_.record_count
            elif slice_.start < edge_ts:
                if slice_.records is not None:
                    total += bisect.bisect_left(slice_.records, edge_ts, key=lambda r: r.ts)
                else:
                    total += slice_.record_count
            else:
                break
        return total

    def _trigger_multimeasure(
        self, managed: ManagedQuery, prev: int, wm: int
    ) -> List[WindowResult]:
        window: LastNEveryWindow = managed.window
        results: List[WindowResult] = []
        emitted = self._emitted_edges[managed.query_id]
        for edge in window.time_edges_between(prev, wm):
            if edge in emitted:
                continue
            cumulative = self._cumulative_count_at(edge)
            window.record_edge_count(edge, cumulative)
            count_range = window.window_for_edge(edge)
            if count_range is None:
                continue
            start, end = count_range
            if end <= start:
                continue
            # Exercise the split path for interior window starts.
            self._manager.ensure_count_boundary(start)
            value = self._count_window_value(managed, start, end)
            if value is None and not self._emit_empty:
                emitted.add(edge)
                continue
            emitted.add(edge)
            results.append(WindowResult(managed.query_id, start, end, value))
        return results

    # ------------------------------------------------------------------
    # late updates (allowed lateness)

    def on_modification(self, modification: Modification) -> List[WindowResult]:
        """Re-emit windows already triggered that the modification touches."""
        wm = self._prev_wm
        if wm is None or modification.ts >= wm:
            # Every emitted window ends at or before the watermark and all
            # its records precede it; a modification at/after the watermark
            # cannot touch any of them (this also covers count positions:
            # emitted count windows contain only records with ts <= wm).
            return []
        results: List[WindowResult] = []
        ts = modification.ts
        for managed in self._queries:
            window = managed.window
            if isinstance(window, SessionWindow):
                results.extend(self._update_sessions(managed, ts, wm))
            elif isinstance(window, LastNEveryWindow):
                results.extend(self._update_multimeasure(managed, ts))
            elif window.measure_kind is MeasureKind.COUNT:
                if modification.count_position is not None:
                    results.extend(
                        self._update_count(managed, modification.count_position)
                    )
            else:
                results.extend(self._update_time(managed, ts, wm))
        return results

    def _update_time(self, managed: ManagedQuery, ts: int, wm: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        emitted = self._emitted[managed.query_id]
        window = managed.window
        if window.context is ContextClass.CONTEXT_FREE:
            candidates = list(window.assign_windows(ts))
        else:
            # A late edge (e.g. punctuation) changes the windows on *both*
            # sides of the modification point: re-derive them.
            pairs = set(window.assign_windows(ts))
            pairs.update(window.assign_windows(ts - 1))
            candidates = sorted(pairs)
        context_free = window.context is ContextClass.CONTEXT_FREE
        for start, end in candidates:
            if end > wm:
                continue  # not emitted yet; the regular trigger will cover it
            overlapped: List[Tuple[int, int]] = []
            if not context_free:
                # Context-aware windows never overlap each other: emitted
                # windows overlapping the re-derived one were replaced by
                # the new edge and must be retracted.
                overlapped = [
                    pair
                    for pair in emitted
                    if pair != (start, end) and not (pair[1] <= start or pair[0] >= end)
                ]
                for pair in overlapped:
                    emitted.discard(pair)
            was_known = (start, end) in emitted or bool(overlapped) or context_free
            result = self._time_window_result(managed, start, end, is_update=was_known)
            if result is not None:
                emitted.add((start, end))
                results.append(result)
        return results

    def _update_sessions(self, managed: ManagedQuery, ts: int, wm: int) -> List[WindowResult]:
        window: SessionWindow = managed.window
        results: List[WindowResult] = []
        emitted = self._emitted[managed.query_id]
        for first_ts, last_ts, lo, hi in self.current_sessions(window.gap):
            end = last_ts + window.gap
            if not (first_ts - window.gap <= ts < end):
                continue
            if end > wm:
                # Session now reopened/extended past the watermark: retract
                # bookkeeping so the regular trigger re-emits it later.
                stale = [pair for pair in emitted if pair[0] <= ts < pair[1]]
                for pair in stale:
                    emitted.discard(pair)
                continue
            overlapped = [pair for pair in emitted if not (pair[1] <= first_ts or pair[0] >= end)]
            partial = self._store.query_slices(lo, hi, managed.fn_index)
            value = managed.function.lower_or_default(partial)
            is_update = bool(overlapped)
            for pair in overlapped:
                emitted.discard(pair)
            emitted.add((first_ts, end))
            results.append(
                WindowResult(managed.query_id, first_ts, end, value, is_update=is_update)
            )
        return results

    def _update_count(self, managed: ManagedQuery, position: int) -> List[WindowResult]:
        results: List[WindowResult] = []
        hwm = self._count_hwm.get(managed.query_id, 0)
        if position >= hwm:
            return results
        for start, end in managed.window.trigger_windows(position, hwm):
            if end <= position:
                continue
            value = self._count_window_value(managed, start, end)
            if value is None:
                continue
            results.append(WindowResult(managed.query_id, start, end, value, is_update=True))
        # The insertion shifted counts: windows previously beyond the high
        # water mark may now be complete; re-derive on the next watermark.
        return results

    def _update_multimeasure(self, managed: ManagedQuery, ts: int) -> List[WindowResult]:
        window: LastNEveryWindow = managed.window
        results: List[WindowResult] = []
        for edge in sorted(self._emitted_edges[managed.query_id]):
            if edge <= ts:
                continue
            cumulative = self._cumulative_count_at(edge)
            if window.count_at_edge(edge) == cumulative:
                continue
            window.record_edge_count(edge, cumulative)
            count_range = window.window_for_edge(edge)
            if count_range is None:
                continue
            start, end = count_range
            self._manager.ensure_count_boundary(start)
            value = self._count_window_value(managed, start, end)
            if value is None:
                continue
            results.append(WindowResult(managed.query_id, start, end, value, is_update=True))
        return results

    # ------------------------------------------------------------------
    # housekeeping

    def prune_emitted(self, horizon: int) -> None:
        """Forget emitted windows entirely before the eviction horizon."""
        for query_id, pairs in self._emitted.items():
            self._emitted[query_id] = {pair for pair in pairs if pair[1] > horizon}
        for query_id, edges in self._emitted_edges.items():
            self._emitted_edges[query_id] = {edge for edge in edges if edge > horizon}
