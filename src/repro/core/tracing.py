"""Runtime observability: counters and spans for the slicing hot paths.

The paper's argument is quantitative -- which technique is fast, and
*why*.  The why is invisible from throughput numbers alone: it lives in
how many slices the slicer cut, how many merges the slice manager
performed, how many FlatFAT nodes an eager update touched, which kernel
absorbed the slice traffic (``kernel.appends`` / ``kernel.evictions``)
and how often overlapping windows reused a shared partial
(``share.hits``).  This module makes those visible without making them
expensive.

Design rules
------------

* **Disabled tracing is the absence of a tracer.**  Every instrumented
  component holds a ``tracer`` attribute that is ``None`` by default;
  the hot-path guard is a single ``if tracer is not None`` identity
  check, there is no no-op object whose method calls would still pay
  Python's dispatch cost, and no counter storage is allocated until a
  tracer is attached (:func:`WindowOperator.enable_tracing`).
* **Counters are plain dict entries**, created on first increment.  The
  counter names form a small stable glossary (see
  ``docs/observability.md``); components never pre-register names, so
  a snapshot contains exactly the events that actually happened.
* **Spans are for coarse phases** (a checkpoint, a batch, a bench
  scenario), never for per-record work: a span costs two clock reads.

Example::

    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(10), Sum())
    tracer = operator.enable_tracing()
    operator.run(stream)
    tracer.value("slicer.slices_created")   # -> e.g. 12
    tracer.snapshot()                        # JSON-ready dict
"""

from __future__ import annotations

import time
from typing import Dict, Iterable, List

__all__ = ["Tracer", "SpanStats"]


class SpanStats:
    """Accumulated timing of one named span: call count + total time."""

    __slots__ = ("calls", "total_ns")

    def __init__(self) -> None:
        self.calls = 0
        self.total_ns = 0

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.calls if self.calls else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {"calls": self.calls, "total_ns": self.total_ns}

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"SpanStats(calls={self.calls}, total_ns={self.total_ns})"


class _Span:
    """Context manager that adds its wall time to a :class:`SpanStats`."""

    __slots__ = ("_stats", "_begin")

    def __init__(self, stats: SpanStats) -> None:
        self._stats = stats
        self._begin = 0

    def __enter__(self) -> "_Span":
        self._begin = time.perf_counter_ns()
        return self

    def __exit__(self, *exc_info: object) -> None:
        stats = self._stats
        stats.calls += 1
        stats.total_ns += time.perf_counter_ns() - self._begin


class Tracer:
    """A counter + span sink shared by all components of one operator.

    One tracer instance is threaded through the whole slicing pipeline
    (slicer, slice manager, aggregate store, FlatFATs, checkpointing),
    so a single snapshot shows the full picture.  Tracers are plain
    picklable state: a checkpointed operator restores with its counters
    intact.
    """

    __slots__ = ("counters", "spans")

    def __init__(self) -> None:
        #: name -> cumulative integer count.
        self.counters: Dict[str, int] = {}
        #: name -> :class:`SpanStats`.
        self.spans: Dict[str, SpanStats] = {}

    # ------------------------------------------------------------------
    # recording

    def count(self, name: str, n: int = 1) -> None:
        """Add ``n`` to counter ``name`` (created at zero on first use)."""
        counters = self.counters
        counters[name] = counters.get(name, 0) + n

    def span(self, name: str) -> _Span:
        """Context manager timing one invocation of phase ``name``."""
        stats = self.spans.get(name)
        if stats is None:
            stats = self.spans[name] = SpanStats()
        return _Span(stats)

    # ------------------------------------------------------------------
    # reading

    def value(self, name: str) -> int:
        """Current value of a counter (0 when it never fired)."""
        return self.counters.get(name, 0)

    def matching(self, prefix: str) -> Dict[str, int]:
        """All counters whose name starts with ``prefix``."""
        return {
            name: value
            for name, value in self.counters.items()
            if name.startswith(prefix)
        }

    def snapshot(self) -> Dict[str, object]:
        """JSON-ready copy of all counters and span statistics."""
        return {
            "counters": dict(sorted(self.counters.items())),
            "spans": {
                name: stats.as_dict() for name, stats in sorted(self.spans.items())
            },
        }

    def reset(self) -> None:
        """Zero every counter and span (storage is released, not kept)."""
        self.counters.clear()
        self.spans.clear()

    def merge_from(self, others: Iterable["Tracer"]) -> None:
        """Fold other tracers' totals into this one (keyed/partitioned runs)."""
        for other in others:
            for name, value in other.counters.items():
                self.count(name, value)
            for name, stats in other.spans.items():
                mine = self.spans.get(name)
                if mine is None:
                    mine = self.spans[name] = SpanStats()
                mine.calls += stats.calls
                mine.total_ns += stats.total_ns

    def format(self) -> str:
        """Human-readable multi-line counter report (widest value aligned)."""
        lines: List[str] = []
        if self.counters:
            width = max(len(name) for name in self.counters)
            for name, value in sorted(self.counters.items()):
                lines.append(f"{name.ljust(width)}  {value:,}")
        for name, stats in sorted(self.spans.items()):
            lines.append(
                f"{name}: {stats.calls} calls, "
                f"{stats.total_ns / 1e6:.2f}ms total, {stats.mean_ns:.0f}ns mean"
            )
        return "\n".join(lines) if lines else "(no events recorded)"

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Tracer(counters={len(self.counters)}, spans={len(self.spans)})"
