"""Windowing measures (Section 4.3 of the paper).

Windows can be defined over different monotonically advancing measures:
event-time, processing-time, arbitrary advancing attributes (odometer
kilometres, invoice numbers, ...), or a tuple count.  The slicing core is
measure-agnostic: it works on abstract integer "timestamps".  A
:class:`Measure` maps an incoming :class:`~repro.core.types.Record` to its
timestamp in that measure's domain.

Count-based measures are special (Section 4.3): when a record arrives
out-of-order, it changes the count of every record with a larger
event-time.  The slicing core therefore treats the count measure
explicitly (see :mod:`repro.core.slice_manager`); this module only
provides the per-record position bookkeeping.

When queries with different measures run concurrently, timestamps become
vectors with one dimension per measure.  :class:`MeasureVector` captures
the (event-time, count) vector used throughout the library.
"""

from __future__ import annotations

import enum
import time as _time
from typing import Callable

from .types import Record

__all__ = [
    "MeasureKind",
    "Measure",
    "EventTimeMeasure",
    "ProcessingTimeMeasure",
    "CountMeasure",
    "AttributeMeasure",
    "MeasureVector",
]


class MeasureKind(enum.Enum):
    """Classification of windowing measures used by the decision logic.

    ``TIME`` covers event-time, processing-time, and arbitrary advancing
    measures: the paper treats them identically because the timestamp of
    a record never changes retroactively.  ``COUNT`` marks tuple-count
    measures whose positions shift when out-of-order records arrive.
    """

    TIME = "time"
    COUNT = "count"


class Measure:
    """Base class for windowing measures."""

    #: The decision-tree classification of this measure.
    kind: MeasureKind = MeasureKind.TIME

    def timestamp(self, record: Record) -> int:
        """Return the record's timestamp in this measure's domain."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}()"


class EventTimeMeasure(Measure):
    """The record's embedded event-time (the default measure)."""

    kind = MeasureKind.TIME

    def timestamp(self, record: Record) -> int:
        return record.ts


class ProcessingTimeMeasure(Measure):
    """Wall-clock time at which the operator processes the record.

    A ``clock`` callable can be injected for deterministic tests; it
    defaults to a monotonic nanosecond clock.
    """

    kind = MeasureKind.TIME

    def __init__(self, clock: Callable[[], int] | None = None) -> None:
        self._clock = clock if clock is not None else _time.monotonic_ns

    def timestamp(self, record: Record) -> int:
        return self._clock()


class AttributeMeasure(Measure):
    """An arbitrary advancing measure read from the record payload.

    ``extract`` maps a record to its measure value -- e.g. a transaction
    counter or kilometres driven.  Arbitrary advancing measures are
    processed exactly like event-time (Section 6.3.4): the measure value
    of a record never changes, no matter in which order records arrive.
    """

    kind = MeasureKind.TIME

    def __init__(self, extract: Callable[[Record], int], name: str = "attribute") -> None:
        self._extract = extract
        self.name = name

    def timestamp(self, record: Record) -> int:
        return self._extract(record)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"AttributeMeasure(name={self.name!r})"


class CountMeasure(Measure):
    """Tuple-count measure: the i-th record (in event-time order) has count i.

    The count of a record is its zero-based position in the event-time
    order of the stream, *not* its arrival position.  An out-of-order
    arrival therefore shifts the count of every record behind it; the
    slice manager compensates by shifting records between slices
    (Figure 6 of the paper).  ``timestamp`` returns the position the
    record receives *on arrival*; shift corrections are the slice
    manager's job.
    """

    kind = MeasureKind.COUNT

    def __init__(self) -> None:
        self._arrived = 0

    def timestamp(self, record: Record) -> int:
        position = self._arrived
        self._arrived += 1
        return position

    @property
    def arrived(self) -> int:
        """Number of records counted so far."""
        return self._arrived

    def reset(self) -> None:
        """Reset the counter (used when an operator is restarted)."""
        self._arrived = 0


class MeasureVector:
    """An (event-time, count) timestamp vector.

    Multi-query workloads mixing time- and count-based windows share one
    slice chain; every slice boundary carries its position in both
    dimensions.  The vector is ordered by event-time (the primary
    dimension along which streams are sliced).
    """

    __slots__ = ("ts", "count")

    def __init__(self, ts: int, count: int) -> None:
        self.ts = ts
        self.count = count

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MeasureVector(ts={self.ts}, count={self.count})"

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, MeasureVector)
            and self.ts == other.ts
            and self.count == other.count
        )

    def __lt__(self, other: "MeasureVector") -> bool:
        return (self.ts, self.count) < (other.ts, other.count)

    def __hash__(self) -> int:
        return hash((self.ts, self.count))

    def component(self, kind: MeasureKind) -> int:
        """Return the vector component for ``kind``."""
        return self.count if kind is MeasureKind.COUNT else self.ts
