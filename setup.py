"""Setuptools shim.

Metadata lives in pyproject.toml; this file exists so that legacy
editable installs (``pip install -e .``) work in offline environments
where PEP 517 build isolation cannot fetch build dependencies.
"""

from setuptools import setup

setup()
