#!/usr/bin/env python3
"""The paper's motivating application: a live-visualization dashboard.

Section 6.4 drives a dashboard that renders the football stream at many
zoom levels: 80 concurrent tumbling windows (lengths 1-20 s) computing
the M4 visualization aggregate (min / max / first / last per window --
exactly the four values a pixel column of a line chart needs).

This example runs the workload on one operator instance, prints a
sample of the emitted M4 tuples, and then compares general slicing
against the bucket-per-window approach used by stock Flink -- the
Figure 17 comparison at parallelism 1.

Run with::

    python examples/dashboard_m4.py
"""

from repro import GeneralSlicingOperator
from repro.aggregations import M4
from repro.baselines import AggregateBucketsOperator
from repro.data import SECOND_MS, dashboard_windows, football_stream
from repro.runtime import measure_throughput


def build_slicing_operator() -> GeneralSlicingOperator:
    operator = GeneralSlicingOperator(stream_in_order=True)
    aggregation = M4()  # shared instance: one partial per slice
    for window in dashboard_windows(80):
        operator.add_query(window, aggregation)
    return operator


def build_buckets_operator() -> AggregateBucketsOperator:
    operator = AggregateBucketsOperator(stream_in_order=True)
    aggregation = M4()
    for window in dashboard_windows(80):
        operator.add_query(window, aggregation)
    return operator


def main() -> None:
    print("generating ~5 seconds of football sensor data (2000 Hz)...")
    stream = football_stream(10_000)

    print("running the M4 dashboard workload (80 concurrent windows)\n")
    operator = build_slicing_operator()
    sample_shown = 0
    emitted = 0
    for record in stream:
        for result in operator.process(record):
            emitted += 1
            if result.query_id == 0 and sample_shown < 5:
                minimum, maximum, first, last = result.value
                print(
                    f"  1s window [{result.start / SECOND_MS:5.1f}s, "
                    f"{result.end / SECOND_MS:5.1f}s): "
                    f"min={minimum:5.2f} max={maximum:5.2f} "
                    f"first={first:5.2f} last={last:5.2f}"
                )
                sample_shown += 1
    print(f"\n{emitted} window aggregates emitted for the dashboard")
    print(f"slices held at the end: {operator.total_slices()}")

    print("\nthroughput shoot-out (same workload, fresh operators):")
    slicing = measure_throughput(build_slicing_operator(), stream)
    buckets = measure_throughput(build_buckets_operator(), stream)
    print(f"  general slicing : {slicing.records_per_second:>12,.0f} records/s")
    print(f"  buckets (Flink) : {buckets.records_per_second:>12,.0f} records/s")
    print(
        f"  speedup         : {slicing.records_per_second / buckets.records_per_second:.1f}x"
        "  (the paper reports an order of magnitude at 80 windows)"
    )


if __name__ == "__main__":
    main()
