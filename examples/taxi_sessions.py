#!/usr/bin/env python3
"""Out-of-order session windows: taxi trips.

The paper names taxi trips as a canonical session use case: a trip is a
period of GPS activity followed by inactivity.  Positions arrive over a
cellular network, so a healthy fraction shows up late.  This example

* builds a synthetic fleet of taxis emitting fare meter ticks,
* injects 20 % out-of-order records with up to 2 s delay (the paper's
  Section 6.2.2 knobs),
* runs session windows (gap 1 s) summing the fare per trip, and
* shows how late records first produce *update* results for trips that
  were already emitted, and how a late tick can even bridge two trips
  into one.

Run with::

    python examples/taxi_sessions.py
"""

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum
from repro.core.types import WindowResult
from repro.data import SECOND_MS
from repro.runtime import inject_disorder, with_watermarks
from repro.windows import SessionWindow


def taxi_trips() -> list[Record]:
    """Three trips of meter ticks (0.10 currency units each 200 ms).

    Trips 1 and 2 are separated by a 1.6 s pause -- wide enough to be
    two sessions, narrow enough that one late tick in the middle can
    bridge them.
    """
    records = []
    for trip_start_ms, duration_ms in ((0, 4000), (5400, 3000), (14000, 5000)):
        for offset in range(0, duration_ms, 200):
            records.append(Record(trip_start_ms + offset, 0.10))
    return records


def describe(result: WindowResult) -> str:
    kind = "UPDATE" if result.is_update else "trip  "
    start_s = result.start / SECOND_MS
    end_s = result.end / SECOND_MS
    return f"  {kind} [{start_s:5.1f}s - {end_s:5.1f}s]  fare total {result.value:5.2f}"


def main() -> None:
    records = taxi_trips()
    print(f"{len(records)} meter ticks across 3 trips; injecting disorder...")
    disordered = inject_disorder(records, fraction=0.2, max_delay=2 * SECOND_MS, seed=11)
    stream = list(
        with_watermarks(disordered, interval=SECOND_MS, max_delay=2 * SECOND_MS)
    )

    operator = GeneralSlicingOperator(
        stream_in_order=False, allowed_lateness=60 * SECOND_MS
    )
    operator.add_query(SessionWindow(gap=SECOND_MS), Sum())

    print("\nemissions while the stream plays:")
    for element in stream:
        for result in operator.process(element):
            print(describe(result))

    print(
        "\nnote: sessions never forced the operator to store raw records "
        f"(stores_records={operator.stores_records}) -- the Figure 4 "
        "decision-tree exception in action."
    )

    # Show a bridge: a late tick lands in the pause between the first
    # two trips (within the gap of both), merging them into one session.
    print("\na very late tick at 4.6s bridges trip 1 and trip 2:")
    for result in operator.process(Record(4600, 0.10)):
        print(describe(result))
    for result in operator.process(Watermark(120 * SECOND_MS)):
        print(describe(result))


if __name__ == "__main__":
    main()
