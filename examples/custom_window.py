#!/usr/bin/env python3
"""User-defined windows and aggregations (Section 5.4).

General slicing decouples the slicing core from window types and
aggregate functions: new ones plug in without touching merge / split /
update.  This example adds

* a custom *calendar-ish* window type whose lengths vary (short windows
  during "business hours", long ones otherwise), and
* a custom "temperature range" aggregation (max - min),

then runs them next to a stock tumbling query on one shared slice chain.

Run with::

    python examples/custom_window.py
"""

from typing import Iterator, Optional, Tuple

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import AggregateFunction, AggregationClass, Sum
from repro.windows import TumblingWindow
from repro.windows.base import ContextFreeWindow

HOUR = 100  # keep the numbers readable: one "hour" is 100 ticks


class BusinessHoursWindow(ContextFreeWindow):
    """Hourly windows from hour 8 to 18, one big window overnight.

    Edges sit at 8, 9, ..., 18 o'clock plus midnight: a deterministic,
    context-free but *aperiodic* window -- the kind of user-defined
    window Cutty introduced and general slicing inherits.
    """

    DAY = 24 * HOUR
    EDGES = [0] + [hour * HOUR for hour in range(8, 19)]

    def _day_edges(self, day: int) -> list[int]:
        return [day * self.DAY + edge for edge in self.EDGES]

    def get_next_edge(self, ts: int) -> Optional[int]:
        day = ts // self.DAY
        for edge in self._day_edges(day) + self._day_edges(day + 1):
            if edge > ts:
                return edge
        return None

    def get_floor_edge(self, ts: int) -> Optional[int]:
        day = ts // self.DAY
        best = None
        for edge in self._day_edges(day - 1) + self._day_edges(day):
            if edge <= ts:
                best = edge
        return best

    def is_edge(self, ts: int) -> bool:
        return ts % self.DAY in self.EDGES

    def trigger_windows(self, prev_wm: int, curr_wm: int) -> Iterator[Tuple[int, int]]:
        day = max(prev_wm // self.DAY, 0)
        while day * self.DAY <= curr_wm:
            edges = self._day_edges(day) + [(day + 1) * self.DAY]
            for lo, hi in zip(edges, edges[1:]):
                if prev_wm < hi <= curr_wm:
                    yield (lo, hi)
            day += 1

    def assign_windows(self, ts: int) -> Iterator[Tuple[int, int]]:
        day = ts // self.DAY
        edges = self._day_edges(day) + [(day + 1) * self.DAY]
        for lo, hi in zip(edges, edges[1:]):
            if lo <= ts < hi:
                yield (lo, hi)


class TemperatureRange(AggregateFunction):
    """max - min: algebraic, commutative, not invertible."""

    name = "range"
    commutative = True
    invertible = False
    kind = AggregationClass.ALGEBRAIC

    def lift(self, value):
        return (value, value)  # (min, max)

    def combine(self, left, right):
        return (min(left[0], right[0]), max(left[1], right[1]))

    def lower(self, partial):
        return partial[1] - partial[0]


def main() -> None:
    operator = GeneralSlicingOperator(stream_in_order=True)
    q_custom = operator.add_query(BusinessHoursWindow(), TemperatureRange())
    q_hourly = operator.add_query(TumblingWindow(2 * HOUR), Sum())
    names = {
        q_custom.query_id: "range @ business hours",
        q_hourly.query_id: "sum   @ every 2 hours ",
    }

    # A day of temperature readings every 12 ticks.
    import math

    stream = [
        Record(ts, 15.0 + 10.0 * math.sin(ts / (24 * HOUR) * 2 * math.pi))
        for ts in range(0, 24 * HOUR, 12)
    ]
    print(f"feeding {len(stream)} temperature readings covering one day\n")
    shown = 0
    for element in stream + [Watermark(48 * HOUR)]:
        for result in operator.process(element):
            label = names[result.query_id]
            print(
                f"  [{label}] [{result.start / HOUR:5.1f}h, {result.end / HOUR:5.1f}h) "
                f"-> {result.value:.2f}"
            )
            shown += 1
    print(f"\n{shown} windows emitted from one shared slice chain")
    print(f"slices remaining: {operator.total_slices()}")


if __name__ == "__main__":
    main()
