#!/usr/bin/env python3
"""A tour of the workload-adaptivity decision tree (Figure 4).

General stream slicing inspects the registered queries and the declared
stream order and decides, per workload, whether raw records must be
retained, whether splits can happen, and how records are removed from
slices.  This script walks through the paper's decision tree and prints
the derived strategy for each workload -- then proves the memory claim
by measuring operator state for two of them.

Run with::

    python examples/adaptivity_tour.py
"""

from repro import GeneralSlicingOperator, Record
from repro.aggregations import M4, Median, Sum
from repro.core.characteristics import RemovalStrategy
from repro.runtime import deep_sizeof, inject_disorder
from repro.windows import (
    CountTumblingWindow,
    LastNEveryWindow,
    PunctuationWindow,
    SessionWindow,
    TumblingWindow,
)

WORKLOADS = [
    ("tumbling + sum, in-order", True, TumblingWindow(10_000), Sum()),
    ("tumbling + sum, out-of-order", False, TumblingWindow(10_000), Sum()),
    ("tumbling + M4 (non-commutative), in-order", True, TumblingWindow(10_000), M4()),
    ("tumbling + M4 (non-commutative), out-of-order", False, TumblingWindow(10_000), M4()),
    ("session + sum, out-of-order (the exception!)", False, SessionWindow(1_000), Sum()),
    ("punctuation windows, out-of-order", False, PunctuationWindow(), Sum()),
    ("count windows + sum, in-order", True, CountTumblingWindow(100), Sum()),
    ("count windows + sum, out-of-order", False, CountTumblingWindow(100), Sum()),
    ("last-10-every-5s (FCA), in-order", True, LastNEveryWindow(10, 5_000), Sum()),
    ("tumbling + median (holistic), in-order", True, TumblingWindow(10_000), Median()),
]


def main() -> None:
    print(f"{'workload':<48} {'records?':<9} {'splits?':<8} removal")
    print("-" * 86)
    for name, in_order, window, aggregation in WORKLOADS:
        operator = GeneralSlicingOperator(stream_in_order=in_order)
        query = operator.add_query(window, aggregation)
        chars = next(iter(operator.characteristics.values()))
        removal = chars.removal_strategies[query.query_id]
        removal_text = "" if removal is RemovalStrategy.NOT_NEEDED else removal.value
        print(
            f"{name:<48} {str(chars.store_tuples):<9} "
            f"{str(chars.needs_splits):<8} {removal_text}"
        )

    print("\nand the memory consequence (10,000 records, 20% out-of-order):")
    records = inject_disorder(
        [Record(ts, float(ts % 97)) for ts in range(0, 20_000, 2)],
        fraction=0.2,
        max_delay=500,
    )
    for label, aggregation in (("sum (drops records)", Sum()), ("median (keeps them)", Median())):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=10**9)
        operator.add_query(TumblingWindow(1_000), aggregation)
        for record in records:
            operator.process(record)
        footprint = sum(deep_sizeof(obj) for obj in operator.state_objects())
        print(f"  {label:<22} {footprint:>12,} bytes, {operator.total_slices()} slices")


if __name__ == "__main__":
    main()
