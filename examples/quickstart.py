#!/usr/bin/env python3
"""Quickstart: general stream slicing in five minutes.

Builds one general slicing operator, registers three queries with
different window types -- all sharing a single slice chain -- and feeds
it a small in-order stream.  Run with::

    python examples/quickstart.py
"""

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Average, Max, Sum
from repro.windows import SessionWindow, SlidingWindow, TumblingWindow


def main() -> None:
    # One operator; the stream is declared in-order so every record also
    # acts as a watermark and windows are emitted immediately.
    operator = GeneralSlicingOperator(stream_in_order=True)

    # Three concurrent queries share the same slices:
    q_tumbling = operator.add_query(TumblingWindow(10), Sum())
    q_sliding = operator.add_query(SlidingWindow(length=20, slide=5), Average())
    q_session = operator.add_query(SessionWindow(gap=7), Max())
    names = {
        q_tumbling.query_id: "sum over tumbling(10)",
        q_sliding.query_id: "avg over sliding(20, 5)",
        q_session.query_id: "max over session(gap=7)",
    }

    # A little activity burst, a quiet period, then more activity.
    timestamps = list(range(0, 30, 2)) + list(range(45, 60, 3))
    stream = [Record(ts, float(ts % 10)) for ts in timestamps]

    print("feeding", len(stream), "records...\n")
    for element in stream:
        for result in operator.process(element):
            print(
                f"  [{names[result.query_id]:>24}] "
                f"window [{result.start:>3}, {result.end:>3}) -> {result.value}"
            )

    # A final watermark flushes everything still open.
    print("\nflushing with a final watermark...")
    for result in operator.process(Watermark(10_000)):
        print(
            f"  [{names[result.query_id]:>24}] "
            f"window [{result.start:>3}, {result.end:>3}) -> {result.value}"
        )

    print("\nworkload characteristics the operator derived:")
    for kind, chars in operator.characteristics.items():
        print(f"-- {kind.value} chain --")
        print(chars.describe())


if __name__ == "__main__":
    main()
