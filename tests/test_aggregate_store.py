"""Tests for the lazy and eager aggregate stores."""

import pytest

from repro.aggregations import M4, Sum
from repro.core.aggregate_store import EagerAggregateStore, LazyAggregateStore
from repro.core.slice_ import Slice
from repro.core.types import Record


def filled_store(cls, n=10, fn=None, width=10):
    fn = fn if fn is not None else Sum()
    store = cls([fn])
    for index in range(n):
        slice_ = Slice(index * width, (index + 1) * width, 1, store_records=False)
        slice_.add_inorder(Record(index * width + 1, float(index)), [fn])
        store.append_slice(slice_)
    return store, fn


class TestStructure:
    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_append_and_len(self, cls):
        store, _ = filled_store(cls, 5)
        assert len(store) == 5
        assert store.head.start == 40

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_find_index(self, cls):
        store, _ = filled_store(cls, 5)
        assert store.find_index(0) == 0
        assert store.find_index(15) == 1
        assert store.find_index(49) == 4
        assert store.find_index(50) is None

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_find_index_in_gap(self, cls):
        fn = Sum()
        store = cls([fn])
        a = Slice(0, 10, 1, store_records=False)
        b = Slice(20, 30, 1, store_records=False)
        store.append_slice(a)
        store.append_slice(b)
        assert store.find_index(15) is None
        assert store.find_index(25) == 1

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_neighbors(self, cls):
        fn = Sum()
        store = cls([fn])
        store.append_slice(Slice(0, 10, 1, store_records=False))
        store.append_slice(Slice(20, 30, 1, store_records=False))
        before, after = store.neighbors(15)
        assert before == 0 and after == 1
        before, after = store.neighbors(35)
        assert before == 1 and after is None

    def test_append_overlapping_rejected(self):
        store, _ = filled_store(LazyAggregateStore, 2)
        with pytest.raises(ValueError):
            store.append_slice(Slice(15, 25, 1, store_records=False))

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_insert_and_remove(self, cls):
        fn = Sum()
        store = cls([fn])
        store.append_slice(Slice(0, 10, 1, store_records=False))
        store.append_slice(Slice(20, 30, 1, store_records=False))
        gap = Slice(10, 20, 1, store_records=False)
        gap.add_inorder(Record(15, 5.0), [fn])
        store.insert_slice(1, gap)
        assert [s.start for s in store] == [0, 10, 20]
        assert store.query_time(0, 30, 0) == 5.0
        removed = store.remove_slice(1)
        assert removed is gap
        assert store.query_time(0, 30, 0) is None


class TestQueries:
    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_query_time_full(self, cls):
        store, _ = filled_store(cls, 10)
        assert store.query_time(0, 100, 0) == sum(range(10))

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_query_time_subrange(self, cls):
        store, _ = filled_store(cls, 10)
        assert store.query_time(20, 50, 0) == 2 + 3 + 4

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_query_empty_range(self, cls):
        store, _ = filled_store(cls, 10)
        assert store.query_time(20, 20, 0) is None

    def test_lazy_and_eager_agree_on_all_ranges(self):
        lazy, _ = filled_store(LazyAggregateStore, 13)
        eager, _ = filled_store(EagerAggregateStore, 13)
        for lo in range(13):
            for hi in range(lo, 14):
                assert lazy.query_slices(lo, hi, 0) == eager.query_slices(lo, hi, 0)

    def test_noncommutative_order_preserved_in_eager(self):
        fn = M4()
        store = EagerAggregateStore([fn])
        for index in range(6):
            slice_ = Slice(index * 10, (index + 1) * 10, 1, store_records=False)
            slice_.add_inorder(Record(index * 10, float(index)), [fn])
            store.append_slice(slice_)
        partial = store.query_slices(1, 5, 0)
        assert fn.lower(partial) == (1.0, 4.0, 1.0, 4.0)

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_slice_updated_refreshes_eager_tree(self, cls):
        store, fn = filled_store(cls, 4)
        store.slices[1].add_inorder(Record(19, 100.0), [fn])
        store.slice_updated(1)
        assert store.query_time(0, 40, 0) == 0 + 1 + 2 + 3 + 100.0


class TestCountQueries:
    def _count_store(self, cls):
        fn = Sum()
        store = cls([fn])
        for index in range(5):
            slice_ = Slice(index * 10, (index + 1) * 10, 1, store_records=True)
            slice_.count_start = index * 2
            slice_.count_end = index * 2 + 2
            for position in range(2):
                slice_.add_inorder(
                    Record(index * 10 + position, float(index * 2 + position)), [fn]
                )
            store.append_slice(slice_)
        return store

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_query_count(self, cls):
        store = self._count_store(cls)
        assert store.query_count(0, 10, 0) == sum(range(10))
        assert store.query_count(2, 6, 0) == 2 + 3 + 4 + 5

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_count_range_indices(self, cls):
        store = self._count_store(cls)
        assert store.count_range_indices(2, 8) == (1, 4)


class TestEviction:
    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_evict_before(self, cls):
        store, _ = filled_store(cls, 10)
        evicted = store.evict_before(35)
        assert evicted == 3
        assert len(store) == 7
        assert store.slices[0].start == 30
        assert store.query_time(30, 100, 0) == sum(range(3, 10))

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_evict_spares_open_slice(self, cls):
        fn = Sum()
        store = cls([fn])
        open_slice = Slice(0, None, 1, store_records=False)
        store.append_slice(open_slice)
        assert store.evict_before(10**9) == 0
        assert len(store) == 1

    @pytest.mark.parametrize("cls", [LazyAggregateStore, EagerAggregateStore])
    def test_evict_nothing(self, cls):
        store, _ = filled_store(cls, 3)
        assert store.evict_before(-1) == 0
        assert len(store) == 3

    def test_total_records(self):
        store, _ = filled_store(LazyAggregateStore, 4)
        assert store.total_records() == 4
