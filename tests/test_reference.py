"""Tests for the brute-force reference oracle itself."""

import pytest

from repro.aggregations import Average, Sum
from repro.core.types import Punctuation, Record
from repro.reference import reference_results, reference_windows
from repro.windows import (
    CountTumblingWindow,
    LastNEveryWindow,
    PunctuationWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)


class TestTimeWindows:
    def test_tumbling_contents(self):
        records = [Record(t, 1.0) for t in range(25)]
        windows = reference_windows(TumblingWindow(10), records)
        assert [(s, e, len(rs)) for s, e, rs in windows] == [
            (0, 10, 10),
            (10, 20, 10),
        ]

    def test_horizon_extends_coverage(self):
        records = [Record(t, 1.0) for t in range(25)]
        windows = reference_windows(TumblingWindow(10), records, horizon=100)
        assert [(s, e) for s, e, _ in windows] == [(0, 10), (10, 20), (20, 30)]

    def test_empty_windows_skipped(self):
        records = [Record(5, 1.0), Record(35, 1.0)]
        windows = reference_windows(TumblingWindow(10), records, horizon=50)
        assert [(s, e) for s, e, _ in windows] == [(0, 10), (30, 40)]

    def test_sliding_overlap(self):
        records = [Record(t, 1.0) for t in range(20)]
        windows = reference_windows(SlidingWindow(10, 5), records)
        # Default horizon is max_ts + 1 = 20, so (10, 20) is included.
        assert [(s, e) for s, e, _ in windows] == [(0, 10), (5, 15), (10, 20)]

    def test_empty_stream(self):
        assert reference_windows(TumblingWindow(10), []) == []


class TestSessionWindows:
    def test_session_grouping(self):
        records = [Record(t, 1.0) for t in [1, 2, 3, 20, 21, 40]]
        windows = reference_windows(SessionWindow(5), records, horizon=100)
        assert [(s, e) for s, e, _ in windows] == [(1, 8), (20, 26), (40, 45)]

    def test_exact_gap_separates(self):
        records = [Record(0, 1.0), Record(5, 1.0)]
        windows = reference_windows(SessionWindow(5), records, horizon=100)
        assert [(s, e) for s, e, _ in windows] == [(0, 5), (5, 10)]

    def test_unfinished_session_beyond_horizon_skipped(self):
        records = [Record(0, 1.0)]
        assert reference_windows(SessionWindow(5), records, horizon=3) == []


class TestCountWindows:
    def test_count_positions_by_event_time(self):
        # Arrival order scrambled; count positions follow event-time.
        records = [Record(4, 40.0), Record(0, 0.0), Record(2, 20.0), Record(6, 60.0)]
        windows = reference_windows(CountTumblingWindow(2), records, horizon=100)
        assert [[r.value for r in rs] for _, _, rs in windows] == [
            [0.0, 20.0],
            [40.0, 60.0],
        ]

    def test_tie_break_by_arrival(self):
        records = [Record(0, 1.0), Record(0, 2.0), Record(0, 3.0)]
        windows = reference_windows(CountTumblingWindow(3), records, horizon=100)
        assert [r.value for r in windows[0][2]] == [1.0, 2.0, 3.0]


class TestPunctuationWindows:
    def test_windows_between_punctuations(self):
        elements = [
            Record(1, 1.0),
            Punctuation(5),
            Record(7, 1.0),
            Punctuation(9),
        ]
        windows = reference_windows(PunctuationWindow(), elements, horizon=100)
        assert [(s, e) for s, e, _ in windows] == [(0, 5), (5, 9)]


class TestMultiMeasure:
    def test_last_n_every(self):
        records = [Record(t, 1.0) for t in range(0, 25, 2)]
        windows = reference_windows(
            LastNEveryWindow(count=3, every=10), records, horizon=24
        )
        assert [(s, e) for s, e, _ in windows] == [(2, 5), (7, 10)]


class TestReferenceResults:
    def test_values_lowered(self):
        records = [Record(t, float(t)) for t in range(10)]
        expected = reference_results([(TumblingWindow(5), Average())], records, horizon=10)
        assert expected == {(0, 0, 5): 2.0, (0, 5, 10): 7.0}

    def test_query_indices(self):
        records = [Record(t, 1.0) for t in range(10)]
        expected = reference_results(
            [(TumblingWindow(5), Sum()), (TumblingWindow(10), Sum())],
            records,
            horizon=10,
        )
        assert (0, 0, 5) in expected
        assert (1, 0, 10) in expected
