"""Tests for window types (repro.windows)."""

import pytest

from repro.core.measures import MeasureKind
from repro.core.types import Punctuation, Record
from repro.windows import (
    ContextClass,
    CountSlidingWindow,
    CountTumblingWindow,
    LastNEveryWindow,
    PunctuationWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
    WindowEdges,
)


class TestTumbling:
    def test_next_edge(self):
        window = TumblingWindow(10)
        assert window.get_next_edge(0) == 10
        assert window.get_next_edge(9) == 10
        assert window.get_next_edge(10) == 20

    def test_next_edge_with_offset(self):
        window = TumblingWindow(10, offset=3)
        assert window.get_next_edge(3) == 13
        assert window.get_next_edge(2) == 3

    def test_trigger_windows(self):
        window = TumblingWindow(10)
        assert list(window.trigger_windows(-1, 25)) == [(0, 10), (10, 20)]

    def test_trigger_includes_exact_end(self):
        window = TumblingWindow(10)
        assert (10, 20) in list(window.trigger_windows(10, 20))

    def test_trigger_excludes_already_reported(self):
        window = TumblingWindow(10)
        assert list(window.trigger_windows(20, 25)) == []

    def test_assign_windows(self):
        window = TumblingWindow(10)
        assert list(window.assign_windows(15)) == [(10, 20)]
        assert list(window.assign_windows(10)) == [(10, 20)]

    def test_is_edge(self):
        window = TumblingWindow(10)
        assert window.is_edge(20)
        assert not window.is_edge(21)

    def test_floor_edge(self):
        window = TumblingWindow(10)
        assert window.get_floor_edge(25) == 20
        assert window.get_floor_edge(20) == 20

    def test_invalid_length(self):
        with pytest.raises(ValueError):
            TumblingWindow(0)

    def test_context_free(self):
        assert TumblingWindow(10).context is ContextClass.CONTEXT_FREE

    def test_negative_timestamps(self):
        window = TumblingWindow(10)
        assert window.get_next_edge(-5) == 0
        assert window.get_floor_edge(-5) == -10


class TestSliding:
    def test_next_edge_aligned(self):
        window = SlidingWindow(10, 5)
        # Starts at 0,5,10,...; ends at 10,15,20,...
        assert window.get_next_edge(0) == 5
        assert window.get_next_edge(7) == 10

    def test_next_edge_unaligned_length(self):
        window = SlidingWindow(7, 3)
        # starts: 0,3,6,9...; ends: 7,10,13...
        assert window.get_next_edge(6) == 7
        assert window.get_next_edge(7) == 9

    def test_trigger_windows(self):
        window = SlidingWindow(10, 5)
        assert list(window.trigger_windows(9, 21)) == [(0, 10), (5, 15), (10, 20)]

    def test_first_window_not_before_origin(self):
        window = SlidingWindow(10, 5)
        assert list(window.trigger_windows(-1, 10)) == [(0, 10)]

    def test_assign_windows(self):
        window = SlidingWindow(10, 5)
        assert sorted(window.assign_windows(12)) == [(5, 15), (10, 20)]

    def test_assign_windows_clipped_at_origin(self):
        window = SlidingWindow(10, 5)
        assert sorted(window.assign_windows(2)) == [(0, 10)]

    def test_concurrent_windows(self):
        assert SlidingWindow(20, 2).concurrent_windows() == 10
        assert SlidingWindow(10, 3).concurrent_windows() == 4

    def test_is_edge(self):
        window = SlidingWindow(7, 3)
        assert window.is_edge(3) and window.is_edge(7) and window.is_edge(10)
        assert not window.is_edge(8)

    def test_floor_edge(self):
        window = SlidingWindow(7, 3)
        assert window.get_floor_edge(8) == 7
        assert window.get_floor_edge(11) == 10

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SlidingWindow(0, 1)
        with pytest.raises(ValueError):
            SlidingWindow(10, 0)


class TestCountWindows:
    def test_count_tumbling_kind(self):
        window = CountTumblingWindow(100)
        assert window.measure_kind is MeasureKind.COUNT

    def test_count_tumbling_edges(self):
        window = CountTumblingWindow(3)
        assert window.get_next_edge(0) == 3
        assert list(window.trigger_windows(0, 9)) == [(0, 3), (3, 6), (6, 9)]

    def test_count_sliding(self):
        window = CountSlidingWindow(4, 2)
        assert window.measure_kind is MeasureKind.COUNT
        assert list(window.trigger_windows(3, 8)) == [(0, 4), (2, 6), (4, 8)]


class TestSession:
    def test_context_classification(self):
        window = SessionWindow(5)
        assert window.is_session
        assert window.context is ContextClass.FORWARD_CONTEXT_AWARE

    def test_no_edge_without_records(self):
        assert SessionWindow(5).get_next_edge(0) is None

    def test_tentative_edge_follows_last_record(self):
        window = SessionWindow(5)
        window.observe(10)
        assert window.get_next_edge(10) == 15
        window.observe(12)
        assert window.get_next_edge(12) == 17

    def test_edge_not_behind_query_point(self):
        window = SessionWindow(5)
        window.observe(10)
        assert window.get_next_edge(20) is None

    def test_notify_context_moves_edge(self):
        window = SessionWindow(5)
        window.observe(10)
        edges = WindowEdges()
        window.notify_context(edges, Record(12, 0))
        assert 15 in edges.removed
        assert 17 in edges.added

    def test_reset(self):
        window = SessionWindow(5)
        window.observe(10)
        window.reset()
        assert window.get_next_edge(0) is None

    def test_invalid_gap(self):
        with pytest.raises(ValueError):
            SessionWindow(0)


class TestPunctuationWindow:
    def test_edges_register_in_order(self):
        window = PunctuationWindow()
        edges = WindowEdges()
        window.on_punctuation(edges, Punctuation(10))
        window.on_punctuation(edges, Punctuation(5))
        assert window.known_edges() == [5, 10]
        assert edges.added == [10, 5]

    def test_duplicate_punctuation_ignored(self):
        window = PunctuationWindow()
        edges = WindowEdges()
        window.on_punctuation(edges, Punctuation(10))
        window.on_punctuation(edges, Punctuation(10))
        assert window.known_edges() == [10]
        assert edges.added == [10]

    def test_next_edge_from_known(self):
        window = PunctuationWindow()
        window.on_punctuation(WindowEdges(), Punctuation(10))
        window.on_punctuation(WindowEdges(), Punctuation(20))
        assert window.get_next_edge(5) == 10
        assert window.get_next_edge(10) == 20
        assert window.get_next_edge(20) is None

    def test_trigger_windows_between_punctuations(self):
        window = PunctuationWindow()
        for ts in (10, 25, 30):
            window.on_punctuation(WindowEdges(), Punctuation(ts))
        assert list(window.trigger_windows(-1, 30)) == [(0, 10), (10, 25), (25, 30)]

    def test_trigger_respects_origin(self):
        window = PunctuationWindow(origin=5)
        window.on_punctuation(WindowEdges(), Punctuation(10))
        assert list(window.trigger_windows(-1, 100)) == [(5, 10)]

    def test_assign_windows(self):
        window = PunctuationWindow()
        for ts in (10, 20):
            window.on_punctuation(WindowEdges(), Punctuation(ts))
        assert list(window.assign_windows(15)) == [(10, 20)]
        assert list(window.assign_windows(25)) == []  # window still open

    def test_is_edge_and_floor(self):
        window = PunctuationWindow()
        window.on_punctuation(WindowEdges(), Punctuation(10))
        assert window.is_edge(10)
        assert not window.is_edge(11)
        assert window.get_floor_edge(15) == 10
        assert window.get_floor_edge(5) is None

    def test_forward_context_free(self):
        assert PunctuationWindow().context is ContextClass.FORWARD_CONTEXT_FREE


class TestLastNEvery:
    def test_classification(self):
        window = LastNEveryWindow(count=10, every=5)
        assert window.context is ContextClass.FORWARD_CONTEXT_AWARE
        assert window.measure_kind is MeasureKind.COUNT

    def test_time_edges(self):
        window = LastNEveryWindow(count=10, every=5)
        assert list(window.time_edges_between(0, 16)) == [5, 10, 15]

    def test_window_requires_context(self):
        window = LastNEveryWindow(count=3, every=5)
        assert window.window_for_edge(5) is None
        window.record_edge_count(5, 7)
        assert window.window_for_edge(5) == (4, 7)

    def test_window_clipped_at_zero(self):
        window = LastNEveryWindow(count=10, every=5)
        window.record_edge_count(5, 4)
        assert window.window_for_edge(5) == (0, 4)

    def test_trigger_windows_resolved_only(self):
        window = LastNEveryWindow(count=2, every=10)
        window.record_edge_count(10, 5)
        assert list(window.trigger_windows(0, 25)) == [(3, 5)]

    def test_reset(self):
        window = LastNEveryWindow(count=2, every=10)
        window.record_edge_count(10, 5)
        window.reset()
        assert window.window_for_edge(10) is None

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            LastNEveryWindow(count=0, every=5)
        with pytest.raises(ValueError):
            LastNEveryWindow(count=5, every=0)

    def test_is_edge_on_trigger_grid(self):
        window = LastNEveryWindow(count=2, every=10)
        assert window.is_edge(20)
        assert not window.is_edge(21)


class TestWindowEdges:
    def test_bool(self):
        edges = WindowEdges()
        assert not edges
        edges.add_edge(5)
        assert edges

    def test_collects_adds_and_removes(self):
        edges = WindowEdges()
        edges.add_edge(1)
        edges.remove_edge(2)
        assert edges.added == [1]
        assert edges.removed == [2]


class TestExplicitEdgesWindow:
    def _window(self):
        from repro.windows import ExplicitEdgesWindow

        return ExplicitEdgesWindow([0, 10, 15, 40])

    def test_validation(self):
        from repro.windows import ExplicitEdgesWindow

        with pytest.raises(ValueError):
            ExplicitEdgesWindow([5])
        with pytest.raises(ValueError):
            ExplicitEdgesWindow([5, 5])
        with pytest.raises(ValueError):
            ExplicitEdgesWindow([5, 3])

    def test_next_and_floor_edges(self):
        window = self._window()
        assert window.get_next_edge(0) == 10
        assert window.get_next_edge(12) == 15
        assert window.get_next_edge(40) is None
        assert window.get_floor_edge(12) == 10
        assert window.get_floor_edge(-1) is None

    def test_is_edge(self):
        window = self._window()
        assert window.is_edge(15)
        assert not window.is_edge(14)

    def test_trigger_windows(self):
        window = self._window()
        assert list(window.trigger_windows(-1, 100)) == [(0, 10), (10, 15), (15, 40)]
        assert list(window.trigger_windows(10, 15)) == [(10, 15)]
        assert list(window.trigger_windows(15, 39)) == []

    def test_assign_windows(self):
        window = self._window()
        assert list(window.assign_windows(12)) == [(10, 15)]
        assert list(window.assign_windows(45)) == []

    def test_extend_edges(self):
        window = self._window()
        window.extend_edges([60, 80])
        assert list(window.trigger_windows(40, 90)) == [(40, 60), (60, 80)]
        with pytest.raises(ValueError):
            window.extend_edges([70])

    def test_end_to_end_with_general_slicing(self):
        from repro import GeneralSlicingOperator, Record
        from repro.aggregations import Sum

        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(self._window(), Sum())
        results = operator.run([Record(t, 1.0) for t in range(45)])
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 10, 10.0),
            (10, 15, 5.0),
            (15, 40, 25.0),
        ]

    def test_end_to_end_with_cutty(self):
        from repro import Record
        from repro.aggregations import Sum
        from repro.baselines import CuttyOperator

        operator = CuttyOperator()
        operator.add_query(self._window(), Sum())
        results = operator.run([Record(t, 1.0) for t in range(45)])
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 10, 10.0),
            (10, 15, 5.0),
            (15, 40, 25.0),
        ]

    def test_out_of_order_updates(self):
        from repro import GeneralSlicingOperator, Record, Watermark
        from repro.aggregations import Sum

        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=1000)
        operator.add_query(self._window(), Sum())
        out = []
        for element in [Record(1, 1.0), Record(20, 1.0), Watermark(16), Record(12, 2.0)]:
            out.extend(operator.process(element))
        final = {(r.start, r.end): (r.value, r.is_update) for r in out}
        assert final[(0, 10)] == (1.0, False)
        assert final[(10, 15)] == (2.0, True)
