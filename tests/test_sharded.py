"""Sharded streaming executor: equivalence, alignment, chaos, backpressure.

The contract under test: :class:`ShardedPipeline` output is *identical*
-- as a multiset and in watermark-aligned order -- to a single-process
:class:`KeyedWindowOperator` aligned the same way
(:func:`run_keyed_reference`), for every technique and window type, with
or without shard crashes.  Worker factories live at module level so they
pickle under the ``spawn`` start method (``REPRO_SHARD_CONTEXT=spawn``,
the CI shard-smoke configuration).
"""

from __future__ import annotations

import functools
import os
import random
import time
from collections import Counter
from typing import List, Tuple

import pytest

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Average, Max, Min, Sum
from repro.baselines import AggregateBucketsOperator, TupleBufferOperator
from repro.runtime import (
    FaultPlan,
    PipelineFailed,
    RestartPolicy,
    ShardedPipeline,
    run_keyed_reference,
)
from repro.windows import SessionWindow, SlidingWindow, TumblingWindow

pytestmark = pytest.mark.shard

#: Start method for the pipelines under test; CI runs the suite under
#: ``spawn`` as well as the platform default.
CONTEXT = os.environ.get("REPRO_SHARD_CONTEXT") or None

SEED = int(os.environ.get("REPRO_SHARD_SEED", "20190517"))

_WINDOWS = {
    "tumbling": TumblingWindow,
    "sliding": SlidingWindow,
    "session": SessionWindow,
}
_AGGREGATIONS = {"Sum": Sum, "Min": Min, "Max": Max, "Average": Average}

#: Picklable query description: (window kind, window args, aggregation).
Spec = Tuple[str, tuple, str]


def _build_sharded_operator(technique: str, specs: Tuple[Spec, ...]):
    """Module-level factory (spawn-picklable via functools.partial)."""
    if technique == "lazy":
        operator = GeneralSlicingOperator(stream_in_order=True)
    elif technique == "eager":
        operator = GeneralSlicingOperator(stream_in_order=True, eager=True)
    elif technique == "buffer":
        operator = TupleBufferOperator(stream_in_order=True)
    elif technique == "agg-buckets":
        operator = AggregateBucketsOperator(stream_in_order=True)
    else:  # pragma: no cover - guard against typos in parametrization
        raise ValueError(f"unknown technique {technique!r}")
    for kind, args, agg in specs:
        operator.add_query(_WINDOWS[kind](*args), _AGGREGATIONS[agg]())
    return operator


def _factory(technique: str, specs: Tuple[Spec, ...]):
    return functools.partial(_build_sharded_operator, technique, specs)


class _SlowSlicingOperator(GeneralSlicingOperator):
    """A deliberately slow per-key operator (backpressure tests)."""

    def process_batch(self, elements):
        time.sleep(0.001 * len(elements))
        return super().process_batch(elements)


def _slow_factory():
    operator = _SlowSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(50), Sum())
    return operator


def _draw_specs(rng: random.Random) -> Tuple[Spec, ...]:
    specs: List[Spec] = []
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(["tumbling", "sliding", "session"])
        if kind == "tumbling":
            args: tuple = (rng.randint(5, 40),)
        elif kind == "sliding":
            length = rng.randint(6, 40)
            args = (length, rng.randint(2, length))
        else:
            args = (rng.randint(3, 20),)
        specs.append((kind, args, rng.choice(["Sum", "Min", "Max", "Average"])))
    return tuple(specs)


def _keyed_stream(rng: random.Random, *, length=300, cardinality=8, watermark_every=40):
    """In-order keyed records with periodic (slightly lagging) watermarks."""
    ts = 0
    elements: list = []
    for index in range(length):
        ts += rng.randint(0, 3)
        elements.append(
            Record(ts, float(rng.randint(-20, 20)), key=f"k{rng.randrange(cardinality)}")
        )
        if (index + 1) % watermark_every == 0:
            elements.append(Watermark(ts - rng.randint(0, 5)))
    return elements


def _comparable(results) -> List[tuple]:
    """Full identity of each result, including the key tag (which
    ``WindowResult.__eq__`` ignores)."""
    return [
        (r.query_id, r.start, r.end, repr(r.value), r.is_update, r.key)
        for r in results
    ]


CHAOS_SPECS: Tuple[Spec, ...] = (
    ("tumbling", (10,), "Sum"),
    ("sliding", (30, 10), "Max"),
)


# ----------------------------------------------------------------------
# equivalence across techniques x window types x parallelism


@pytest.mark.parametrize("parallelism", [2, 4])
@pytest.mark.parametrize("case", range(4))
def test_sharded_output_identical_to_keyed_reference(case, parallelism):
    rng = random.Random(f"{SEED}:equiv:{case}:{parallelism}")
    technique = ["lazy", "eager", "agg-buckets", "buffer"][case % 4]
    specs = _draw_specs(rng)
    elements = _keyed_stream(rng, cardinality=rng.choice([1, 3, 8]))
    factory = _factory(technique, specs)

    expected = run_keyed_reference(factory, elements)
    pipeline = ShardedPipeline(
        factory,
        parallelism,
        batch_size=rng.choice([8, 32, 256]),
        queue_capacity=4,
        checkpoint_every=500,
        context=CONTEXT,
    )
    merged = pipeline.run(elements)

    # Multiset equality and watermark-aligned order, separately, so a
    # failure says which property broke.
    assert Counter(_comparable(merged)) == Counter(_comparable(expected)), (
        f"result multiset diverged (technique={technique}, specs={specs})"
    )
    assert _comparable(merged) == _comparable(expected), (
        f"merge order diverged (technique={technique}, specs={specs})"
    )
    assert pipeline.tracer.value("shard.records") == sum(
        1 for e in elements if isinstance(e, Record)
    )


def test_sharded_merge_is_deterministic_across_runs():
    rng = random.Random(f"{SEED}:determinism")
    specs = _draw_specs(rng)
    elements = _keyed_stream(rng)
    factory = _factory("lazy", specs)
    runs = [
        ShardedPipeline(
            factory, 3, batch_size=16, queue_capacity=2, context=CONTEXT
        ).run(elements)
        for _ in range(2)
    ]
    assert _comparable(runs[0]) == _comparable(runs[1])


def test_sharded_flush_false_ends_on_alignment_barrier():
    rng = random.Random(f"{SEED}:barrier")
    specs = (("tumbling", (25,), "Sum"),)
    elements = _keyed_stream(rng, length=150, watermark_every=60)
    factory = _factory("lazy", specs)
    expected = run_keyed_reference(factory, elements, flush=False)
    merged = ShardedPipeline(factory, 2, batch_size=16, context=CONTEXT).run(
        elements, flush=False
    )
    assert _comparable(merged) == _comparable(expected)
    # The flushing run emits strictly more: the tail windows.
    flushed = ShardedPipeline(factory, 2, batch_size=16, context=CONTEXT).run(elements)
    assert len(flushed) > len(merged)


def test_keyless_records_route_consistently():
    """key=None shards like any other key (sticky, not round-robin)."""
    rng = random.Random(f"{SEED}:keyless")
    elements: list = []
    ts = 0
    for index in range(120):
        ts += rng.randint(0, 2)
        elements.append(Record(ts, 1.0))
        if (index + 1) % 40 == 0:
            elements.append(Watermark(ts))
    factory = _factory("lazy", (("tumbling", (10,), "Sum"),))
    expected = run_keyed_reference(factory, elements)
    merged = ShardedPipeline(factory, 3, batch_size=16, context=CONTEXT).run(elements)
    assert _comparable(merged) == _comparable(expected)


# ----------------------------------------------------------------------
# chaos: single-shard crash, restart, exactly-once re-emission


@pytest.mark.chaos
def test_chaos_soft_crash_recovers_with_exactly_once_reemission():
    rng = random.Random(f"{SEED}:chaos")
    elements = _keyed_stream(rng, length=600, cardinality=8, watermark_every=50)
    factory = _factory("lazy", CHAOS_SPECS)
    expected = run_keyed_reference(factory, elements)

    pipeline = ShardedPipeline(
        factory,
        2,
        batch_size=16,
        queue_capacity=4,
        checkpoint_every=50,
        crash_at={0: (150,)},
        context=CONTEXT,
    )
    merged = pipeline.run(elements)

    assert Counter(_comparable(merged)) == Counter(_comparable(expected))
    assert _comparable(merged) == _comparable(expected)
    assert pipeline.tracer.value("shard.restarts") == 1
    # Results delivered between the last checkpoint and the crash were
    # re-emitted by the replay and suppressed, not delivered twice.
    assert pipeline.tracer.value("shard.deduped_results") > 0


@pytest.mark.chaos
def test_chaos_seeded_fault_plan_multiple_crashes():
    rng = random.Random(f"{SEED}:chaos-plan")
    elements = _keyed_stream(rng, length=500, cardinality=6, watermark_every=40)
    factory = _factory("eager", CHAOS_SPECS)
    expected = run_keyed_reference(factory, elements)

    plan = FaultPlan(seed=7, horizon=200, crashes=2)
    pipeline = ShardedPipeline(
        factory,
        2,
        batch_size=16,
        checkpoint_every=60,
        fault_plans={1: plan},
        restart_policy=RestartPolicy(max_restarts=5),
        context=CONTEXT,
    )
    merged = pipeline.run(elements)
    assert _comparable(merged) == _comparable(expected)
    assert pipeline.tracer.value("shard.restarts") == len(plan.crash_points)


@pytest.mark.chaos
def test_chaos_hard_kill_detected_by_liveness_and_recovered():
    rng = random.Random(f"{SEED}:chaos-kill")
    elements = _keyed_stream(rng, length=600, cardinality=8, watermark_every=50)
    factory = _factory("lazy", CHAOS_SPECS)
    expected = run_keyed_reference(factory, elements)

    pipeline = ShardedPipeline(
        factory,
        2,
        batch_size=16,
        queue_capacity=2,
        checkpoint_every=50,
        kill_at={1: 150},
        context=CONTEXT,
    )
    merged = pipeline.run(elements)
    assert _comparable(merged) == _comparable(expected)
    assert pipeline.tracer.value("shard.restarts") == 1


@pytest.mark.chaos
def test_restart_budget_exhaustion_raises_pipeline_failed():
    rng = random.Random(f"{SEED}:budget")
    elements = _keyed_stream(rng, length=200)
    pipeline = ShardedPipeline(
        _factory("lazy", CHAOS_SPECS),
        2,
        batch_size=8,
        checkpoint_every=1000,
        crash_at={0: (20,)},
        restart_policy=RestartPolicy(max_restarts=0),
        context=CONTEXT,
    )
    with pytest.raises(PipelineFailed):
        pipeline.run(elements)


# ----------------------------------------------------------------------
# backpressure


def test_backpressure_blocks_and_counts_queue_full_waits():
    elements = [Record(ts, 1.0, key="hot") for ts in range(200)]
    pipeline = ShardedPipeline(
        _slow_factory,
        2,
        batch_size=8,
        queue_capacity=1,
        context=CONTEXT,
    )
    merged = pipeline.run(elements)
    expected = run_keyed_reference(_slow_factory, elements)
    assert _comparable(merged) == _comparable(expected)
    assert pipeline.tracer.value("shard.queue_full_waits") > 0


# ----------------------------------------------------------------------
# construction-time validation


def test_unpicklable_factory_rejected_before_spawning():
    with pytest.raises(Exception):
        ShardedPipeline(lambda: GeneralSlicingOperator(), 2, context=CONTEXT)


def test_invalid_parameters_rejected():
    factory = _factory("lazy", CHAOS_SPECS)
    with pytest.raises(ValueError):
        ShardedPipeline(factory, 0)
    with pytest.raises(ValueError):
        ShardedPipeline(factory, 2, batch_size=0)
    with pytest.raises(ValueError):
        ShardedPipeline(factory, 2, queue_capacity=0)
    with pytest.raises(ValueError):
        ShardedPipeline(factory, 2, checkpoint_every=0)
