"""Chaos equivalence: crashes must never change window results.

For every technique x window-type combination the suite runs the same
stream twice -- once uninterrupted, once under a supervised pipeline
with (at least) three injected crashes -- and requires the sink output
to be bit-identical, in content *and* order.  This is the paper-level
correctness property of checkpoint-and-replay: fault tolerance is
invisible in the results.

Seeds are fixed for reproducibility; override with ``REPRO_CHAOS_SEED``
to explore a different (still deterministic) chaos schedule.
"""

import os
import random
import zlib

import pytest

from conftest import run_operator, shuffled_with_disorder
from repro import Record, Watermark
from repro.aggregations import Average, Sum
from repro.core.operator_ import GeneralSlicingOperator
from repro.experiments.harness import TECHNIQUES
from repro.runtime import (
    CollectSink,
    FaultInjectingOperator,
    FaultPlan,
    FaultySource,
    RestartPolicy,
    SupervisedPipeline,
)
from repro.windows import (
    CountTumblingWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1729"))
CRASHES = 3
N_RECORDS = 450
LATENESS = 100

WINDOWS = {
    "tumbling": lambda: TumblingWindow(50),
    "sliding": lambda: SlidingWindow(80, 20),
    "session": lambda: SessionWindow(7),
    "count": lambda: CountTumblingWindow(64),
}

GENERAL_TECHNIQUES = (
    "Lazy Slicing",
    "Eager Slicing",
    "Tuple Buffer",
    "Aggregate Tree",
    "Buckets",
    "Tuple Buckets",
)
#: Pairs/Cutty: in-order deterministic windows only (no sessions).
RESTRICTED_TECHNIQUES = {
    "Pairs": ("tumbling", "sliding", "count"),
    "Cutty": ("tumbling", "sliding", "count"),
}

INORDER_MATRIX = [
    (tech, window) for tech in GENERAL_TECHNIQUES for window in WINDOWS
] + [
    (tech, window)
    for tech, windows in RESTRICTED_TECHNIQUES.items()
    for window in windows
]
OOO_MATRIX = [(tech, window) for tech in GENERAL_TECHNIQUES for window in WINDOWS]


def combo_seed(tech: str, window: str, order: str) -> int:
    """Stable per-combination seed (crc32: deterministic across runs)."""
    return CHAOS_SEED + zlib.crc32(f"{tech}:{window}:{order}".encode())


def inorder_stream() -> list:
    rng = random.Random(CHAOS_SEED)
    ts = 0
    out = []
    for _ in range(N_RECORDS):
        ts += rng.choice([0, 1, 1, 2, 3]) + (12 if rng.random() < 0.05 else 0)
        out.append(Record(ts, float(rng.randint(0, 9))))
    return out


def ooo_stream() -> list:
    base = inorder_stream()
    records = shuffled_with_disorder(base, 0.2, 20, seed=CHAOS_SEED + 1)
    elements = []
    high = 0
    for index, record in enumerate(records):
        elements.append(record)
        high = max(high, record.ts)
        if index % 60 == 59:
            elements.append(Watermark(high - 25))
    elements.append(Watermark(high + 1_000))
    return elements


def run_chaos(factory, elements, seed, *, crashes=CRASHES, errors=0, hiccups=0):
    """One supervised run under an injected-fault plan; returns
    (sink results, stats, uninterrupted results)."""
    expected = run_operator(factory(), elements)

    plan = FaultPlan(seed, N_RECORDS, crashes=crashes, errors=errors, hiccups=hiccups)
    source = FaultySource(elements, plan=plan) if hiccups else elements
    sink = CollectSink()
    pipeline = SupervisedPipeline(
        FaultInjectingOperator(factory(), plan=plan),
        sink,
        checkpoint_every=120,
        batch_size=16,
        restart_policy=RestartPolicy(max_restarts=crashes + errors + hiccups + 2),
        sleep=lambda _seconds: None,
    )
    stats = pipeline.run(source)
    return sink.results, stats, expected


@pytest.mark.parametrize(
    "tech, window", INORDER_MATRIX, ids=[f"{t}-{w}" for t, w in INORDER_MATRIX]
)
def test_inorder_chaos_equivalence(tech, window):
    def factory():
        operator = TECHNIQUES[tech](stream_in_order=True, allowed_lateness=0)
        operator.add_query(WINDOWS[window](), Sum())
        return operator

    results, stats, expected = run_chaos(
        factory, inorder_stream(), combo_seed(tech, window, "in")
    )
    assert stats.restarts == CRASHES
    assert results == expected


@pytest.mark.ooo
@pytest.mark.parametrize(
    "tech, window", OOO_MATRIX, ids=[f"{t}-{w}" for t, w in OOO_MATRIX]
)
def test_ooo_chaos_equivalence(tech, window):
    def factory():
        operator = TECHNIQUES[tech](
            stream_in_order=False, allowed_lateness=LATENESS
        )
        operator.add_query(WINDOWS[window](), Sum())
        return operator

    results, stats, expected = run_chaos(
        factory, ooo_stream(), combo_seed(tech, window, "ooo")
    )
    assert stats.restarts == CRASHES
    assert results == expected


@pytest.mark.parametrize("eager", [False, True], ids=["lazy", "eager"])
def test_multi_query_chaos_with_all_fault_kinds(eager):
    """Shared slices, three concurrent queries, crashes + operator
    errors + source hiccups in one run."""

    def factory():
        operator = GeneralSlicingOperator(
            stream_in_order=False, eager=eager, allowed_lateness=LATENESS
        )
        operator.add_query(TumblingWindow(50), Sum())
        operator.add_query(SlidingWindow(80, 20), Average())
        operator.add_query(SessionWindow(7), Sum())
        return operator

    results, stats, expected = run_chaos(
        factory,
        ooo_stream(),
        combo_seed("multi", "all", "eager" if eager else "lazy"),
        crashes=4,
        errors=1,
        hiccups=2,
    )
    assert stats.restarts == 5  # 4 crashes + 1 post-record error
    assert stats.source_retries == 2
    assert stats.deduped_results > 0
    assert results == expected


@pytest.mark.parametrize(
    "kernel", ["flatfat", "finger_tree", "two_stacks", "subtract_on_evict"]
)
def test_kernel_state_chaos_equivalence(kernel):
    """Each aggregation kernel's internal state (FlatFAT tree, finger
    B-tree, the two stacks, subtract-on-evict prefixes) must ride
    checkpoints cleanly:
    crash mid-stream, recover, and the remaining windows still close on
    the exact same values as an uninterrupted run."""

    def factory():
        operator = GeneralSlicingOperator(
            stream_in_order=True, eager=True, kernel=kernel, allowed_lateness=0
        )
        operator.add_query(TumblingWindow(50), Sum())
        operator.add_query(SlidingWindow(80, 20), Average())
        return operator

    results, stats, expected = run_chaos(
        factory, inorder_stream(), combo_seed("kernel", kernel, "in")
    )
    assert stats.restarts == CRASHES
    assert results == expected


@pytest.mark.ooo
def test_cross_kernel_ooo_chaos_equivalence():
    """FlatFAT and the finger tree must be interchangeable *under fire*:
    the same seeded disordered stream, each kernel supervised through
    its own ≥3-crash schedule with per-kernel checkpoint restores, must
    emit identical results -- and identical to both kernels'
    uninterrupted runs.  This pins the pair the selector actually
    chooses between on out-of-order workloads."""

    def factory_for(kernel):
        def factory():
            operator = GeneralSlicingOperator(
                stream_in_order=False,
                eager=True,
                kernel=kernel,
                allowed_lateness=LATENESS,
            )
            operator.add_query(TumblingWindow(50), Sum())
            operator.add_query(SlidingWindow(80, 20), Average())
            operator.add_query(SessionWindow(7), Sum())
            return operator

        return factory

    elements = ooo_stream()
    outcomes = {}
    for kernel in ("flatfat", "finger_tree"):
        results, stats, expected = run_chaos(
            factory_for(kernel), elements, combo_seed("xkernel", kernel, "ooo")
        )
        assert stats.restarts == CRASHES
        assert results == expected, f"{kernel}: chaos run diverged from clean run"
        outcomes[kernel] = results
    assert outcomes["flatfat"] == outcomes["finger_tree"]
    assert len(outcomes["flatfat"]) > 0


def test_chaos_with_tuple_at_a_time_batches():
    """batch_size=1 exercises the boundary case of the replay cursor."""

    def factory():
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(50), Sum())
        return operator

    elements = inorder_stream()
    expected = run_operator(factory(), elements)
    plan = FaultPlan(combo_seed("t1", "t1", "in"), N_RECORDS, crashes=3)
    sink = CollectSink()
    pipeline = SupervisedPipeline(
        FaultInjectingOperator(factory(), plan=plan),
        sink,
        checkpoint_every=97,  # deliberately co-prime with nothing in the stream
        batch_size=1,
        restart_policy=RestartPolicy(max_restarts=5),
        sleep=lambda _seconds: None,
    )
    stats = pipeline.run(elements)
    assert stats.restarts == 3
    assert sink.results == expected
