"""Tests for keyed window aggregation and measure injection."""

import pytest

from conftest import run_operator
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum
from repro.runtime import KeyedWindowOperator
from repro.windows import SessionWindow, TumblingWindow


def slicing_factory():
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(10), Sum())
    return operator


class TestKeyedOperator:
    def test_state_isolated_per_key(self):
        keyed = KeyedWindowOperator(slicing_factory)
        stream = [Record(t, 1.0, key=t % 2) for t in range(24)]
        results = run_operator(keyed, stream)
        by_key = {}
        for result in results:
            by_key.setdefault(result.key, []).append(result)
        # Each key saw every other record: windows of 5 each.
        assert {r.value for r in by_key[0]} == {5.0}
        assert {r.value for r in by_key[1]} == {5.0}

    def test_results_tagged_with_key(self):
        keyed = KeyedWindowOperator(slicing_factory)
        results = run_operator(keyed, [Record(t, 1.0, key="a") for t in range(12)])
        assert all(result.key == "a" for result in results)

    def test_watermark_broadcast_to_all_keys(self):
        keyed = KeyedWindowOperator(slicing_factory)
        run_operator(
            keyed, [Record(1, 1.0, key="x"), Record(2, 2.0, key="y")]
        )
        results = keyed.process(Watermark(100))
        assert {result.key for result in results} == {"x", "y"}

    def test_lazy_key_creation(self):
        keyed = KeyedWindowOperator(slicing_factory)
        assert keyed.keys == []
        keyed.process(Record(0, 1.0, key=7))
        assert keyed.keys == [7]

    def test_sessions_per_key(self):
        def session_factory():
            operator = GeneralSlicingOperator(stream_in_order=True)
            operator.add_query(SessionWindow(5), Sum())
            return operator

        keyed = KeyedWindowOperator(session_factory)
        stream = [
            Record(0, 1.0, key="a"),
            Record(2, 1.0, key="b"),
            Record(20, 1.0, key="a"),  # key a: gap -> two sessions
            Record(4, 0.0, key="b"),
        ]
        results = run_operator(keyed, stream)
        results.extend(keyed.process(Watermark(100)))
        a_sessions = [(r.start, r.end) for r in results if r.key == "a"]
        b_sessions = [(r.start, r.end) for r in results if r.key == "b"]
        assert a_sessions == [(0, 5), (20, 25)]
        assert b_sessions == [(2, 9)]

    def test_state_objects_aggregate_keys(self):
        keyed = KeyedWindowOperator(slicing_factory)
        run_operator(keyed, [Record(0, 1.0, key=0), Record(0, 1.0, key=1)])
        assert len(keyed.state_objects()) >= 2


class TestMeasureInjection:
    def test_windows_on_attribute_measure(self):
        # Records carry (odometer_km, fuel_used); window fuel by 100 km.
        op = GeneralSlicingOperator(
            stream_in_order=True,
            timestamp_of=lambda record: int(record.value[0]),
        )
        op.add_query(TumblingWindow(100), _FuelSum())
        readings = [
            Record(0, (10, 1.0)),
            Record(1, (60, 2.0)),
            Record(2, (140, 3.0)),
            Record(3, (220, 4.0)),
        ]
        results = op.run(readings)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 100, 3.0),
            (100, 200, 3.0),
        ]

    def test_injected_measure_defines_order(self):
        # Arrival order differs from measure order: declared out-of-order.
        op = GeneralSlicingOperator(
            stream_in_order=False,
            allowed_lateness=1000,
            timestamp_of=lambda record: int(record.value[0]),
        )
        op.add_query(TumblingWindow(100), _FuelSum())
        readings = [
            Record(0, (10, 1.0)),
            Record(1, (140, 3.0)),
            Record(2, (60, 2.0)),  # out-of-order in the km measure
        ]
        out = op.run(readings)
        out.extend(op.process(Watermark(1000)))
        final = {(r.start, r.end): r.value for r in out}
        assert final[(0, 100)] == 3.0


class _FuelSum(Sum):
    """Sum over the fuel component of (odometer, fuel) payloads."""

    def lift(self, value):
        return value[1]
