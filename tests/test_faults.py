"""Tests for deterministic fault injection (repro.runtime.faults)."""

import pytest

from conftest import run_operator
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum
from repro.runtime.faults import (
    FaultInjectingOperator,
    FaultPlan,
    FaultySource,
    InjectedCrash,
    InjectedOperatorError,
    SourceHiccup,
    stall_watermarks,
)
from repro.windows import TumblingWindow


def build_operator():
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(10), Sum())
    return operator


class TestFaultPlan:
    def test_same_seed_same_schedule(self):
        a = FaultPlan(99, 1_000, crashes=4, errors=2, hiccups=3)
        b = FaultPlan(99, 1_000, crashes=4, errors=2, hiccups=3)
        assert a.crash_points == b.crash_points
        assert a.error_points == b.error_points
        assert a.hiccup_points == b.hiccup_points
        assert a.total_faults == 9

    def test_different_seeds_differ(self):
        a = FaultPlan(1, 10_000, crashes=5)
        b = FaultPlan(2, 10_000, crashes=5)
        assert a.crash_points != b.crash_points

    def test_positions_within_horizon_and_past_zero(self):
        plan = FaultPlan(3, 50, crashes=10, hiccups=10)
        for position in plan.crash_points + plan.hiccup_points:
            assert 1 <= position < 50

    def test_sampling_capped_at_population(self):
        plan = FaultPlan(0, 4, crashes=100)
        assert plan.crash_points == (1, 2, 3)

    def test_tiny_horizon_rejected(self):
        with pytest.raises(ValueError):
            FaultPlan(0, 1, crashes=1)


class TestFaultInjectingOperator:
    def test_transparent_without_faults(self, simple_stream):
        plain = build_operator()
        wrapped = FaultInjectingOperator(build_operator())
        wrapped.add_query(TumblingWindow(5), Sum())
        plain.add_query(TumblingWindow(5), Sum())
        assert run_operator(wrapped, simple_stream) == run_operator(plain, simple_stream)
        assert wrapped.records_processed == len(simple_stream)

    def test_crash_fires_before_record_and_only_once(self):
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[3])
        stream = [Record(t, 1.0) for t in range(6)]
        with pytest.raises(InjectedCrash) as excinfo:
            run_operator(wrapped, stream)
        assert excinfo.value.position == 3
        # The crash fired *before* record #3 touched the inner operator.
        assert wrapped.records_processed == 3
        assert wrapped.inner._arrived == 3
        # Fire-once: the remaining records go through on retry.
        run_operator(wrapped, stream[3:])
        assert wrapped.records_processed == 6

    def test_error_fires_after_record_mutated_state(self):
        wrapped = FaultInjectingOperator(build_operator(), error_at=[2])
        stream = [Record(t, 1.0) for t in range(5)]
        with pytest.raises(InjectedOperatorError) as excinfo:
            run_operator(wrapped, stream)
        assert excinfo.value.position == 2
        # Unlike a crash, the faulting record already reached the inner
        # operator -- the supervisor must roll this back.
        assert wrapped.inner._arrived == 3

    def test_crash_and_error_can_target_same_record(self):
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[2], error_at=[2])
        stream = [Record(t, 1.0) for t in range(4)]
        with pytest.raises(InjectedCrash):
            run_operator(wrapped, stream)
        with pytest.raises(InjectedOperatorError):
            run_operator(wrapped, stream[2:])
        run_operator(wrapped, stream[3:])
        assert wrapped.records_processed == 4

    def test_batch_crash_leaves_partial_batch_applied(self):
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[5])
        batch = [Record(t, 1.0) for t in range(8)]
        with pytest.raises(InjectedCrash):
            wrapped.process_batch(batch)
        # Mid-batch crash: records 0..4 are in, 5..7 are not.
        assert wrapped.inner._arrived == 5

    def test_fault_free_batches_use_inner_fast_path(self):
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[100])
        results = wrapped.process_batch([Record(t, 1.0) for t in range(25)])
        assert wrapped.records_processed == 25
        assert [(r.start, r.end) for r in results] == [(0, 10), (10, 20)]

    def test_watermarks_pass_through_unharmed(self):
        inner = GeneralSlicingOperator(stream_in_order=False)
        inner.add_query(TumblingWindow(10), Sum())
        wrapped = FaultInjectingOperator(inner, crash_at=[50])
        run_operator(wrapped, [Record(t, 1.0) for t in range(15)])
        results = wrapped.process_watermark(Watermark(12))
        assert [(r.start, r.end) for r in results] == [(0, 10)]

    def test_plan_wiring_and_delegation(self):
        plan = FaultPlan(11, 100, crashes=2, errors=1)
        wrapped = FaultInjectingOperator(build_operator(), plan=plan)
        assert wrapped.transient is True
        assert wrapped._crash_at == set(plan.crash_points)
        assert wrapped._error_at == set(plan.error_points)
        assert wrapped.queries is wrapped.inner.queries
        assert wrapped.state_objects() == wrapped.inner.state_objects()
        query = wrapped.add_query(TumblingWindow(7), Sum())
        assert query in wrapped.inner.queries
        wrapped.remove_query(query.query_id)
        assert query not in wrapped.inner.queries


class TestFaultySource:
    def test_hiccup_fires_once_per_position(self):
        elements = [Record(t, 1.0) for t in range(20)]
        source = FaultySource(elements, hiccup_at=[7])
        with pytest.raises(SourceHiccup) as excinfo:
            source.read(4, 8)
        assert excinfo.value.position == 7
        # Retrying the identical read now succeeds.
        assert source.read(4, 8) == elements[4:12]
        assert source.hiccups_fired == 1

    def test_hiccup_outside_read_window_does_not_fire(self):
        source = FaultySource([Record(t, 1.0) for t in range(20)], hiccup_at=[15])
        assert len(source.read(0, 10)) == 10
        with pytest.raises(SourceHiccup):
            source.read(10, 10)

    def test_plan_hiccups(self):
        plan = FaultPlan(5, 30, hiccups=3)
        source = FaultySource([Record(t, 1.0) for t in range(30)], plan=plan)
        fired = 0
        cursor = 0
        while cursor < 30:
            try:
                batch = source.read(cursor, 4)
            except SourceHiccup:
                fired += 1
                continue
            cursor += len(batch)
        assert fired == 3
        assert source.hiccups_fired == 3


class TestStallWatermarks:
    def test_stalled_watermarks_held_and_released(self):
        elements = [
            Record(0, 1.0),
            Watermark(0),
            Record(1, 1.0),
            Watermark(1),
            Record(2, 1.0),
            Record(3, 1.0),
        ]
        stalled = stall_watermarks(elements, start=1, length=3)
        # Both watermarks fall in the stall window; the newest (ts=1)
        # reappears at the release position, the older one is dropped.
        assert stalled == [
            Record(0, 1.0),
            Record(1, 1.0),
            Watermark(1),
            Record(2, 1.0),
            Record(3, 1.0),
        ]

    def test_stall_outliving_stream_releases_at_end(self):
        elements = [Record(0, 1.0), Watermark(5), Record(1, 1.0)]
        stalled = stall_watermarks(elements, start=0, length=100)
        assert stalled == [Record(0, 1.0), Record(1, 1.0), Watermark(5)]

    def test_records_never_touched(self):
        elements = [Record(t, float(t)) for t in range(10)]
        assert stall_watermarks(elements, start=2, length=5) == elements

    def test_validation(self):
        with pytest.raises(ValueError):
            stall_watermarks([], start=-1, length=2)
        with pytest.raises(ValueError):
            stall_watermarks([], start=0, length=-2)

    def test_operator_result_unchanged_by_stall_once_released(self):
        records = [Record(t, 1.0) for t in range(30)]
        elements = []
        for index, record in enumerate(records):
            elements.append(record)
            if index % 5 == 4:
                elements.append(Watermark(record.ts))
        stalled = stall_watermarks(elements, start=6, length=10)

        def final(stream):
            operator = GeneralSlicingOperator(stream_in_order=False)
            operator.add_query(TumblingWindow(10), Sum())
            out = {}
            for result in run_operator(operator, stream + [Watermark(100)]):
                out[(result.start, result.end)] = result.value
            return out

        assert final(elements) == final(stalled)
