"""Durability chaos: corruption-tolerant recovery, end to end.

The acceptance property of the durable checkpoint store: for every
slicing technique, against both the memory- and the disk-backed store, a
pipeline killed mid-run whose *newest* checkpoint generation was torn
mid-write recovers from an older generation and still emits output
bit-identical to an unfailed reference run.  On top of the matrix:
transient store I/O retries, resume-after-process-death (including a
resume that itself must fall back past corruption), and the disk-backed
sharded coordinator restoring a hard-killed shard.

Seeds are fixed; override with ``REPRO_CHAOS_SEED``.
"""

from __future__ import annotations

import functools
import os
import random
import zlib
from collections import Counter

import pytest

from conftest import run_operator
from repro import Record
from repro.aggregations import Sum
from repro.experiments.harness import TECHNIQUES
from repro.runtime import (
    CollectSink,
    DiskCheckpointStore,
    FaultInjectingOperator,
    FaultyStore,
    InMemoryStore,
    PipelineFailed,
    RestartPolicy,
    ShardedPipeline,
    SupervisedPipeline,
    Tracer,
    run_keyed_reference,
)
from repro.windows import TumblingWindow

pytestmark = pytest.mark.chaos

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "1729"))
N_RECORDS = 450
#: Snapshot cadence for the matrix: saves land at cursors 0, 128, 256,
#: 384, so a crash drawn from [270, 330) always finds generation #2
#: newest -- the one the chaos schedule tears.
CHECKPOINT_EVERY = 120
BATCH_SIZE = 16
TORN_SAVE = 2

STORES = ("memory", "disk")
MATRIX = [(tech, store) for tech in TECHNIQUES for store in STORES]


def combo_seed(*parts) -> int:
    return CHAOS_SEED + zlib.crc32(":".join(map(str, parts)).encode())


def stream() -> list:
    rng = random.Random(CHAOS_SEED)
    ts = 0
    out = []
    for _ in range(N_RECORDS):
        ts += rng.choice([0, 1, 1, 2, 3])
        out.append(Record(ts, float(rng.randint(0, 9))))
    return out


def make_store(kind: str, tmp_path, **kwargs):
    kwargs.setdefault("keep", 3)
    if kind == "memory":
        return InMemoryStore(**kwargs)
    return DiskCheckpointStore(tmp_path / "ckpt", **kwargs)


def technique_factory(tech: str):
    def factory():
        operator = TECHNIQUES[tech](stream_in_order=True, allowed_lateness=0)
        operator.add_query(TumblingWindow(50), Sum())
        return operator

    return factory


def run_torn_write_chaos(tech, store_kind, tmp_path, *, faulty_kwargs=None, crashes=1):
    """One supervised run whose newest generation is torn before the
    crash; returns (sink results, stats, tracer, expected results)."""
    factory = technique_factory(tech)
    elements = stream()
    expected = run_operator(factory(), elements)

    seed = combo_seed(tech, store_kind)
    crash_at = [270 + seed % 60 + 7 * n for n in range(crashes)]
    tracer = Tracer()
    store = FaultyStore(
        make_store(store_kind, tmp_path),
        seed=seed,
        **(faulty_kwargs if faulty_kwargs is not None else {"torn_write_at": (TORN_SAVE,)}),
    )
    sink = CollectSink()
    pipeline = SupervisedPipeline(
        FaultInjectingOperator(factory(), crash_at=crash_at),
        sink,
        checkpoint_every=CHECKPOINT_EVERY,
        batch_size=BATCH_SIZE,
        restart_policy=RestartPolicy(max_restarts=crashes + 2),
        store=store,
        tracer=tracer,
        sleep=lambda _seconds: None,
    )
    stats = pipeline.run(elements)
    assert store.faults_fired >= 1, "the chaos schedule never fired"
    return sink.results, stats, tracer, expected


# ----------------------------------------------------------------------
# the acceptance matrix: every technique x both stores


@pytest.mark.parametrize(
    "tech, store_kind", MATRIX, ids=[f"{t}-{s}" for t, s in MATRIX]
)
def test_torn_newest_generation_recovers_from_older(tech, store_kind, tmp_path):
    results, stats, tracer, expected = run_torn_write_chaos(
        tech, store_kind, tmp_path
    )
    # Output identical to the unfailed reference -- content and order.
    assert results == expected
    # The restore really skipped the torn newest generation.
    assert stats.store_fallbacks >= 1
    assert tracer.value("durability.corrupt_generations") >= 1
    assert tracer.value("durability.fallbacks") >= 1
    assert stats.restarts >= 1
    assert stats.deduped_results > 0  # the longer replay was deduped


@pytest.mark.parametrize("store_kind", STORES)
def test_bit_flip_on_newest_generation(store_kind, tmp_path):
    """Disk rot (one flipped bit) is caught by the CRC exactly like a
    torn write and falls back the same way."""
    results, stats, _tracer, expected = run_torn_write_chaos(
        "Lazy Slicing", store_kind, tmp_path, faulty_kwargs={"bit_flip_at": (TORN_SAVE,)}
    )
    assert results == expected
    assert stats.store_fallbacks >= 1


@pytest.mark.parametrize("store_kind", STORES)
def test_transient_store_io_errors_are_retried(store_kind, tmp_path):
    """A save and a load that each fail once heal under the restart
    policy without losing a generation or a result."""
    results, stats, tracer, expected = run_torn_write_chaos(
        "Lazy Slicing",
        store_kind,
        tmp_path,
        faulty_kwargs={"io_error_saves": (1,), "io_error_loads": (0,)},
    )
    assert results == expected
    assert tracer.value("durability.save_retries") == 1
    assert tracer.value("durability.load_retries") == 1
    assert stats.store_fallbacks == 0


def test_multiple_crashes_and_torn_writes_disk(tmp_path):
    """Two crashes against a disk store that tears two generations."""
    results, stats, _tracer, expected = run_torn_write_chaos(
        "Eager Slicing",
        "disk",
        tmp_path,
        faulty_kwargs={"torn_write_at": (1, 2)},
        crashes=2,
    )
    assert results == expected
    assert stats.store_fallbacks >= 1


def test_all_generations_corrupt_fails_explicitly(tmp_path):
    """When every retained generation is torn, recovery reports a dead
    store instead of looping or fabricating state."""
    factory = technique_factory("Lazy Slicing")
    store = FaultyStore(
        make_store("disk", tmp_path, keep=2),
        torn_write_at=(0, 1, 2, 3, 4),
        seed=CHAOS_SEED,
    )
    pipeline = SupervisedPipeline(
        FaultInjectingOperator(factory(), crash_at=[300]),
        CollectSink(),
        checkpoint_every=CHECKPOINT_EVERY,
        batch_size=BATCH_SIZE,
        store=store,
        sleep=lambda _seconds: None,
    )
    with pytest.raises(PipelineFailed, match="no loadable checkpoint"):
        pipeline.run(stream())


# ----------------------------------------------------------------------
# resume: a new supervisor over the directory a dead process left


def _run_to_death(tmp_path):
    """Burn the restart budget mid-stream against a disk store; returns
    (elements, expected, prefix the dead run delivered)."""
    factory = technique_factory("Lazy Slicing")
    elements = stream()
    expected = run_operator(factory(), elements)
    sink = CollectSink()
    pipeline = SupervisedPipeline(
        FaultInjectingOperator(factory(), crash_at=[200, 210, 220]),
        sink,
        checkpoint_every=CHECKPOINT_EVERY,
        batch_size=BATCH_SIZE,
        restart_policy=RestartPolicy(max_restarts=2),
        store=DiskCheckpointStore(tmp_path / "ckpt", keep=3),
        sleep=lambda _seconds: None,
    )
    with pytest.raises(PipelineFailed):
        pipeline.run(elements)
    return factory, elements, expected, sink.results


def test_resume_after_process_death(tmp_path):
    factory, elements, expected, delivered = _run_to_death(tmp_path)
    # What the dead run delivered is a strict prefix of the reference.
    assert delivered == expected[: len(delivered)]

    # A new supervisor (fresh operator, fresh store object over the same
    # directory -- a new process) resumes from the surviving generation.
    sink = CollectSink()
    pipeline = SupervisedPipeline(
        factory(),
        sink,
        checkpoint_every=CHECKPOINT_EVERY,
        batch_size=BATCH_SIZE,
        store=DiskCheckpointStore(tmp_path / "ckpt", keep=3),
        sleep=lambda _seconds: None,
    )
    stats = pipeline.run(elements, resume=True)

    assert stats.resumed_from_cursor == 128
    # The resumed run emits exactly the reference tail from the restored
    # checkpoint on; together the two runs cover the whole stream (the
    # overlap is the documented at-least-once boundary across processes).
    assert sink.results == expected[len(expected) - len(sink.results) :]
    assert len(delivered) + len(sink.results) >= len(expected)


def test_resume_falls_back_past_torn_generation(tmp_path):
    factory, elements, expected, _delivered = _run_to_death(tmp_path)

    store = DiskCheckpointStore(tmp_path / "ckpt", keep=3)
    newest = store.generations()[-1]
    store.corrupt(newest, truncate_to=store.frame_size(newest) // 3)

    sink = CollectSink()
    pipeline = SupervisedPipeline(
        factory(),
        sink,
        checkpoint_every=CHECKPOINT_EVERY,
        batch_size=BATCH_SIZE,
        store=store,
        sleep=lambda _seconds: None,
    )
    stats = pipeline.run(elements, resume=True)

    # The newest generation (cursor 128) is torn; resume lands on the
    # initial generation and replays the whole stream.
    assert stats.resumed_from_cursor == 0
    assert sink.results == expected


def test_resume_with_empty_store_starts_fresh(tmp_path):
    factory = technique_factory("Lazy Slicing")
    elements = stream()
    sink = CollectSink()
    pipeline = SupervisedPipeline(
        factory(),
        sink,
        store=DiskCheckpointStore(tmp_path / "ckpt", keep=3),
        sleep=lambda _seconds: None,
    )
    stats = pipeline.run(elements, resume=True)
    assert stats.resumed_from_cursor is None
    assert sink.results == run_operator(factory(), elements)


# ----------------------------------------------------------------------
# sharded: the coordinator restores a hard-killed shard from disk


def _keyed_stream(rng, *, length=600, cardinality=8, watermark_every=50):
    from repro import Watermark

    ts = 0
    elements: list = []
    for index in range(length):
        ts += rng.randint(0, 3)
        elements.append(
            Record(ts, float(rng.randint(-20, 20)), key=f"k{rng.randrange(cardinality)}")
        )
        if (index + 1) % watermark_every == 0:
            elements.append(Watermark(ts - rng.randint(0, 5)))
    return elements


def _sharded_factory():
    from repro import GeneralSlicingOperator

    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(10), Sum())
    return operator


def _comparable(results):
    return [
        (r.query_id, r.start, r.end, repr(r.value), r.is_update, r.key)
        for r in results
    ]


def _torn_disk_store(base_dir, torn: dict, index: int):
    """Module-level per-shard store factory (coordinator-side)."""
    inner = DiskCheckpointStore(
        os.path.join(base_dir, f"shard-{index}"), keep=3
    )
    return FaultyStore(inner, torn_write_at=torn.get(index, ()), seed=CHAOS_SEED)


@pytest.mark.shard
def test_sharded_hard_kill_recovers_from_torn_disk_store(tmp_path):
    """The coordinator restores a hard-killed shard from its disk store,
    falling back past the torn newest generation, and the merged output
    still matches the keyed single-process reference."""
    rng = random.Random(f"{CHAOS_SEED}:sharded-disk")
    elements = _keyed_stream(rng)
    expected = run_keyed_reference(_sharded_factory, elements)

    # Shard 1 dies around its 150th record; its newest generations are
    # torn, so the restore walks back to an older one.
    store_factory = functools.partial(
        _torn_disk_store, os.fspath(tmp_path), {1: (1, 2)}
    )
    pipeline = ShardedPipeline(
        _sharded_factory,
        2,
        batch_size=16,
        queue_capacity=4,
        checkpoint_every=50,
        kill_at={1: 150},
        store_factory=store_factory,
    )
    merged = pipeline.run(elements)

    assert Counter(_comparable(merged)) == Counter(_comparable(expected))
    assert _comparable(merged) == _comparable(expected)
    assert pipeline.tracer.value("shard.restarts") == 1
    assert pipeline.tracer.value("durability.fallbacks") >= 1
    assert pipeline.tracer.value("shard.deduped_results") > 0


@pytest.mark.shard
def test_sharded_soft_crash_with_memory_store_factory(tmp_path):
    """store_factory also accepts memory stores with deeper retention;
    recovery semantics are unchanged."""
    rng = random.Random(f"{CHAOS_SEED}:sharded-mem")
    elements = _keyed_stream(rng, length=400)
    expected = run_keyed_reference(_sharded_factory, elements)

    pipeline = ShardedPipeline(
        _sharded_factory,
        2,
        batch_size=16,
        checkpoint_every=50,
        crash_at={0: (120,)},
        store_factory=functools.partial(_memory_store),
    )
    merged = pipeline.run(elements)
    assert _comparable(merged) == _comparable(expected)
    assert pipeline.tracer.value("shard.restarts") == 1


def _memory_store(_index: int) -> InMemoryStore:
    return InMemoryStore(keep=3)
