"""Tests for the on-the-fly stream slicer (Step 1)."""

import pytest

from repro.aggregations import Sum
from repro.core.aggregate_store import LazyAggregateStore
from repro.core.slice_ import Slice
from repro.core.stream_slicer import StreamSlicer


def make_slicer(edges, store=None, floor=None, count_edges=None, **kwargs):
    """Slicer over a fixed periodic edge grid (for tests)."""
    store = store if store is not None else LazyAggregateStore([Sum()])

    def next_edge(ts):
        if not edges:
            return None
        period = edges
        return (ts // period + 1) * period

    def floor_edge(ts):
        if floor is False:
            return None
        if not edges:
            return None
        return (ts // edges) * edges

    def next_count_edge(count):
        if count_edges is None:
            return None
        return (count // count_edges + 1) * count_edges

    slicer = StreamSlicer(
        store,
        next_time_edge=next_edge,
        floor_time_edge=floor_edge,
        next_count_edge=next_count_edge if count_edges else None,
        **kwargs,
    )
    return slicer, store


class TestFirstSlice:
    def test_first_slice_starts_at_floor_edge(self):
        slicer, store = make_slicer(10)
        head = slicer.ensure_open_slice(13, 0)
        assert head.start == 10
        assert head.end is None
        assert slicer.cut_performed

    def test_first_slice_without_floor_starts_at_ts(self):
        slicer, store = make_slicer(10, floor=False)
        head = slicer.ensure_open_slice(13, 0)
        assert head.start == 13

    def test_cached_edge_after_first_slice(self):
        slicer, _ = make_slicer(10)
        slicer.ensure_open_slice(13, 0)
        assert slicer.cached_time_edge == 20


class TestCutting:
    def test_single_comparison_within_slice(self):
        slicer, store = make_slicer(10)
        slicer.ensure_open_slice(3, 0)
        slicer.ensure_open_slice(5, 1)
        assert len(store) == 1
        assert not slicer.cut_performed

    def test_cut_at_edge(self):
        slicer, store = make_slicer(10)
        head = slicer.ensure_open_slice(3, 0)
        head.add_inorder(__import__("repro.core.types", fromlist=["Record"]).Record(3, 1.0), store.functions)
        head = slicer.ensure_open_slice(12, 1)
        assert len(store) == 2
        assert store.slices[0].end == 10
        assert head.start == 10
        assert slicer.cut_performed

    def test_record_at_exact_edge_starts_new_slice(self):
        slicer, store = make_slicer(10)
        slicer.ensure_open_slice(5, 0)
        head = slicer.ensure_open_slice(10, 1)
        assert store.slices[0].end == 10
        assert head.start == 10

    def test_skipping_multiple_edges_leaves_gap(self):
        slicer, store = make_slicer(10)
        slicer.ensure_open_slice(5, 0)
        head = slicer.ensure_open_slice(47, 1)
        # Closed at the first passed edge; reopened at the last edge <= 47.
        assert store.slices[0].end == 10
        assert head.start == 40
        assert len(store) == 2


class TestCountCuts:
    def test_count_edge_closes_head(self):
        from repro.core.types import Record

        slicer, store = make_slicer(1000, count_edges=3, track_counts=True)
        for position in range(7):
            head = slicer.ensure_open_slice(position, position)
            head.add_inorder(Record(position, 1.0), store.functions)
        assert len(store) == 3
        first, second, third = store.slices
        assert (first.count_start, first.count_end) == (0, 3)
        assert (second.count_start, second.count_end) == (3, 6)
        assert third.count_end is None
        assert first.end_kind == Slice.END_COUNT

    def test_count_boundary_ts_is_cutting_record_ts(self):
        from repro.core.types import Record

        slicer, store = make_slicer(1000, count_edges=2, track_counts=True)
        for position, ts in enumerate([5, 7, 20, 21]):
            head = slicer.ensure_open_slice(ts, position)
            head.add_inorder(Record(ts, 1.0), store.functions)
        assert store.slices[0].end == 20


class TestCacheInvalidation:
    def test_invalidate_recomputes_from_last_record(self):
        from repro.core.types import Record

        slicer, store = make_slicer(10)
        head = slicer.ensure_open_slice(3, 0)
        head.add_inorder(Record(3, 1.0), store.functions)
        slicer.invalidate_cache()
        head = slicer.ensure_open_slice(12, 1)
        assert store.slices[0].end == 10  # the edge at 10 was not skipped

    def test_store_records_flag_applies_to_new_slices(self):
        slicer, store = make_slicer(10)
        first = slicer.ensure_open_slice(3, 0)
        assert first.records is None
        slicer.store_records = True
        second = slicer.ensure_open_slice(15, 1)
        assert second.records is not None


class TestMovingEdges:
    def test_after_record_refreshes_cache_when_edges_move(self):
        # Simulates a session window: the edge follows the last record.
        state = {"last": 0}

        def next_edge(ts):
            edge = state["last"] + 5
            return edge if edge > ts else None

        store = LazyAggregateStore([Sum()])
        slicer = StreamSlicer(
            store,
            next_time_edge=next_edge,
            floor_time_edge=lambda ts: None,
            edges_move=True,
        )
        from repro.core.types import Record

        head = slicer.ensure_open_slice(0, 0)
        head.add_inorder(Record(0, 1.0), store.functions)
        state["last"] = 0
        slicer.after_record(0)
        assert slicer.cached_time_edge == 5
        # Next record arrives after the session gap: a cut at 5 happens.
        head = slicer.ensure_open_slice(8, 1)
        assert store.slices[0].end == 5
        assert head.start == 5
