"""End-of-stream flush: emit windows still buffered when the stream ends.

``WindowOperator.flush()`` advances event time past the last record by
the largest window extent plus the allowed lateness -- exactly what a
final upstream watermark would do -- so tail windows are emitted instead
of silently dropped.  These tests pin the semantics: equivalence to a
trailing watermark, idempotence, wrapper delegation, and key tagging.
"""

import pytest

from conftest import run_operator
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum
from repro.baselines import AggregateBucketsOperator, TupleBufferOperator
from repro.runtime.checkpoint import CheckpointingOperator
from repro.runtime.faults import FaultInjectingOperator
from repro.runtime.keyed import KeyedWindowOperator
from repro.windows import SessionWindow, SlidingWindow, TumblingWindow


def _operators(in_order: bool):
    lateness = 0 if in_order else 1_000_000
    return [
        ("lazy", lambda: GeneralSlicingOperator(stream_in_order=in_order, allowed_lateness=lateness)),
        ("eager", lambda: GeneralSlicingOperator(stream_in_order=in_order, eager=True, allowed_lateness=lateness)),
        ("buffer", lambda: TupleBufferOperator(stream_in_order=in_order, allowed_lateness=lateness)),
        ("agg-buckets", lambda: AggregateBucketsOperator(stream_in_order=in_order, allowed_lateness=lateness)),
    ]


@pytest.mark.parametrize("in_order", [True, False])
def test_flush_emits_tail_windows_across_techniques(in_order):
    # Records stop at ts=14: window [10, 20) has no in-stream reason to
    # close and only materializes on flush.
    stream = [Record(ts, 1.0) for ts in range(15)]
    for name, make_operator in _operators(in_order):
        operator = make_operator()
        operator.add_query(TumblingWindow(10), Sum())
        in_stream = run_operator(operator, stream)
        tail = operator.flush()
        results = {(r.start, r.end): r.value for r in in_stream + tail}
        assert results == {(0, 10): 10.0, (10, 20): 5.0}, f"technique {name}"
        assert any(r.end == 20 for r in tail), f"technique {name} tail not flushed"


def test_flush_matches_trailing_watermark():
    def run(finish):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=5)
        operator.add_query(SlidingWindow(20, 5), Sum())
        operator.add_query(SessionWindow(7), Sum())
        results = run_operator(operator, [Record(ts, float(ts % 3)) for ts in range(0, 33, 2)])
        results.extend(finish(operator))
        return [(r.query_id, r.start, r.end, r.value) for r in results]

    flushed = run(lambda operator: operator.flush())
    # length 20 dominates the extent; +lateness 5 +1 +1 mirrors flush's
    # horizon so both runs close the exact same set of windows.
    watermarked = run(lambda operator: operator.process_watermark(Watermark(32 + 20 + 5 + 2)))
    assert flushed == watermarked


def test_flush_is_idempotent_and_empty_before_any_record():
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(10), Sum())
    assert operator.flush() == []  # nothing ingested, nothing to close
    run_operator(operator, [Record(ts, 1.0) for ts in range(12)])
    assert len(operator.flush()) == 1
    assert operator.flush() == []  # a second flush has nothing left


def test_session_gap_drives_the_flush_horizon():
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(SessionWindow(50), Sum())
    run_operator(operator, [Record(0, 1.0), Record(10, 2.0)])
    tail = operator.flush()
    assert [(r.start, r.end, r.value) for r in tail] == [(0, 60, 3.0)]


def test_keyed_flush_tags_results_with_their_key():
    keyed = KeyedWindowOperator(
        lambda: _with_query(GeneralSlicingOperator(stream_in_order=True))
    )
    run_operator(keyed, [Record(ts, 1.0, key=f"k{ts % 2}") for ts in range(12)])
    tail = keyed.flush()
    assert tail, "keyed flush dropped tail windows"
    assert {r.key for r in tail} == {"k0", "k1"}


def _with_query(operator):
    operator.add_query(TumblingWindow(10), Sum())
    return operator


def test_wrappers_delegate_flush_to_inner():
    checkpointing = CheckpointingOperator(
        _with_query(GeneralSlicingOperator(stream_in_order=True)), every=1000
    )
    run_operator(checkpointing, [Record(ts, 1.0) for ts in range(12)])
    assert [r.end for r in checkpointing.flush()] == [20]

    faulty = FaultInjectingOperator(
        _with_query(GeneralSlicingOperator(stream_in_order=True))
    )
    run_operator(faulty, [Record(ts, 1.0) for ts in range(12)])
    assert [r.end for r in faulty.flush()] == [20]
