"""End-to-end tests of GeneralSlicingOperator on out-of-order streams."""

import pytest

pytestmark = pytest.mark.ooo

from conftest import final_values, run_operator, shuffled_with_disorder
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import M4, CollectList, Median, Min, Sum, SumWithoutInvert
from repro.core.types import Punctuation
from repro.reference import reference_results
from repro.windows import (
    CountTumblingWindow,
    LastNEveryWindow,
    PunctuationWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)


def make_operator(eager=False, lateness=1000):
    return GeneralSlicingOperator(
        stream_in_order=False, eager=eager, allowed_lateness=lateness
    )


class TestBasicOutOfOrder:
    @pytest.mark.parametrize("eager", [False, True])
    def test_ooo_record_lands_in_past_slice(self, eager):
        op = make_operator(eager)
        op.add_query(TumblingWindow(10), Sum())
        elements = [Record(1, 1.0), Record(12, 1.0), Record(5, 1.0), Watermark(20)]
        results = run_operator(op, elements)
        final = {(r.start, r.end): r.value for r in results}
        assert final[(0, 10)] == 2.0
        assert final[(10, 20)] == 1.0

    def test_no_emission_before_watermark(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        assert run_operator(op, [Record(1, 1.0), Record(15, 1.0)]) == []

    def test_watermark_triggers_completed_windows_only(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        run_operator(op, [Record(1, 1.0), Record(15, 1.0)])
        results = op.process(Watermark(12))
        assert [(r.start, r.end) for r in results] == [(0, 10)]

    def test_duplicate_watermark_ignored(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        run_operator(op, [Record(1, 1.0), Record(15, 1.0), Watermark(12)])
        assert op.process(Watermark(12)) == []
        assert op.process(Watermark(11)) == []


class TestLateUpdates:
    def test_late_record_within_lateness_emits_update(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Sum())
        run_operator(op, [Record(1, 1.0), Record(15, 1.0), Watermark(12)])
        updates = op.process(Record(3, 2.0))
        assert len(updates) == 1
        assert updates[0].is_update
        assert updates[0].as_tuple() == (0, 0, 10, 3.0)

    def test_record_beyond_lateness_dropped(self):
        op = make_operator(lateness=5)
        op.add_query(TumblingWindow(10), Sum())
        run_operator(op, [Record(1, 1.0), Record(30, 1.0), Watermark(30)])
        assert op.process(Record(3, 2.0)) == []
        assert op.dropped_late_records == 1

    def test_update_covers_overlapping_sliding_windows(self):
        op = make_operator()
        op.add_query(SlidingWindow(10, 5), Sum())
        run_operator(
            op, [Record(1, 1.0), Record(7, 1.0), Record(20, 1.0), Watermark(20)]
        )
        updates = op.process(Record(6, 1.0))
        spans = sorted((u.start, u.end) for u in updates)
        assert spans == [(0, 10), (5, 15)]
        assert all(u.is_update for u in updates)

    def test_update_value_reflects_recomputation(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), Median())
        run_operator(
            op,
            [Record(1, 1.0), Record(2, 9.0), Record(15, 0.0), Watermark(12)],
        )
        updates = op.process(Record(3, 5.0))
        assert updates[0].value == 5.0


class TestSessionsOutOfOrder:
    def test_bridge_produces_merged_session(self):
        op = make_operator()
        op.add_query(SessionWindow(5), Sum())
        elements = [
            Record(1, 1.0),
            Record(8, 1.0),
            Record(30, 1.0),
            Record(4, 1.0),  # bridges 1..8 (gaps 3 and 4, both < 5)
            Watermark(40),
        ]
        final = final_values(op, elements)
        assert final[(0, 1, 13)] == 3.0
        assert final[(0, 30, 35)] == 1.0

    def test_exact_gap_distance_does_not_bridge(self):
        op = make_operator()
        op.add_query(SessionWindow(5), Sum())
        elements = [
            Record(1, 1.0),
            Record(10, 1.0),
            Record(6, 1.0),  # exactly gap away from 1: separate session
            Watermark(40),
        ]
        final = final_values(op, elements)
        assert final == {(0, 1, 6): 1.0, (0, 6, 15): 2.0}

    def test_late_record_opens_new_session_in_gap(self):
        op = make_operator()
        op.add_query(SessionWindow(3), Sum())
        elements = [
            Record(1, 1.0),
            Record(30, 1.0),
            Record(15, 2.0),
            Watermark(50),
        ]
        final = final_values(op, elements)
        assert final == {
            (0, 1, 4): 1.0,
            (0, 15, 18): 2.0,
            (0, 30, 33): 1.0,
        }

    def test_late_record_extends_emitted_session(self):
        op = make_operator()
        op.add_query(SessionWindow(5), Sum())
        run_operator(op, [Record(1, 1.0), Record(20, 1.0), Watermark(10)])
        # Session [1, 6) was emitted; a late record at 3 extends its end
        # to 3 + gap and updates the aggregate.
        updates = op.process(Record(3, 1.0))
        assert [(u.start, u.end, u.value, u.is_update) for u in updates] == [
            (1, 8, 2.0, True)
        ]

    def test_sessions_never_store_records(self):
        op = make_operator()
        op.add_query(SessionWindow(5), Sum())
        assert not op.stores_records


class TestCountWindowsOutOfOrder:
    def test_shift_with_invertible_sum(self):
        op = make_operator()
        op.add_query(CountTumblingWindow(3), Sum())
        elements = [
            Record(0, 0.0),
            Record(2, 2.0),
            Record(4, 4.0),
            Record(6, 6.0),
            Record(8, 8.0),
            Watermark(9),
            Record(3, 3.0),
            Watermark(20),
        ]
        final = final_values(op, elements)
        # Final order: 0,2,3,4,6,8 -> windows (0,3)=5, (3,6)=18.
        assert final[(0, 0, 3)] == 5.0
        assert final[(0, 3, 6)] == 18.0

    def test_shift_with_noninvertible_min(self):
        op = make_operator()
        op.add_query(CountTumblingWindow(2), Min())
        elements = [
            Record(0, 5.0),
            Record(2, 1.0),
            Record(4, 7.0),
            Record(6, 2.0),
            Watermark(7),
            Record(1, 0.5),
            Watermark(20),
        ]
        final = final_values(op, elements)
        # Final order: 0(5.0), 1(0.5), 2(1.0), 4(7.0), 6(2.0).
        assert final[(0, 0, 2)] == 0.5
        assert final[(0, 2, 4)] == 1.0

    def test_naive_sum_without_invert_still_correct(self):
        stream = [Record(t, float(t)) for t in range(0, 20, 2)]
        disordered = shuffled_with_disorder(stream, 0.4, 6, seed=3)
        expected = reference_results([(CountTumblingWindow(3), Sum())], stream)
        op = make_operator()
        op.add_query(CountTumblingWindow(3), SumWithoutInvert())
        final = final_values(op, disordered + [Watermark(100)])
        assert final == expected

    def test_count_windows_store_records_under_disorder(self):
        op = make_operator()
        op.add_query(CountTumblingWindow(3), Sum())
        assert op.stores_records


class TestNonCommutativeOutOfOrder:
    def test_m4_recomputed_in_event_order(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), M4())
        assert op.stores_records
        elements = [
            Record(2, 20.0),
            Record(8, 80.0),
            Record(5, 50.0),
            Watermark(10),
        ]
        final = final_values(op, elements)
        assert final[(0, 0, 10)] == (20.0, 80.0, 20.0, 80.0)

    def test_collect_list_in_event_order(self):
        op = make_operator()
        op.add_query(TumblingWindow(10), CollectList())
        elements = [Record(2, "a"), Record(8, "c"), Record(5, "b"), Watermark(10)]
        final = final_values(op, elements)
        assert final[(0, 0, 10)] == ["a", "b", "c"]


class TestPunctuationsOutOfOrder:
    def test_late_punctuation_splits_slice(self):
        op = make_operator()
        op.add_query(PunctuationWindow(), Sum())
        elements = [
            Record(1, 1.0),
            Record(3, 1.0),
            Record(8, 1.0),
            Punctuation(10),
            Watermark(10),
            Punctuation(5),  # late: splits [0, 10) into [0, 5) and [5, 10)
            Watermark(12),
        ]
        final = final_values(op, elements)
        assert final[(0, 0, 5)] == 2.0
        assert final[(0, 5, 10)] == 1.0


class TestMultiMeasureOutOfOrder:
    def test_late_record_shifts_window_content(self):
        op = make_operator()
        op.add_query(LastNEveryWindow(count=2, every=10), Sum())
        elements = [
            Record(2, 1.0),
            Record(4, 2.0),
            Record(12, 4.0),
            Watermark(10),  # window at edge 10: last 2 of {2,4} -> 3.0
            Record(6, 8.0),  # late: last 2 before 10 become {4:2.0, 6:8.0}
            Watermark(20),
        ]
        results = run_operator(op, elements)
        values = [r.value for r in results]
        assert 3.0 in values  # initial emission
        assert 10.0 in values  # update after the late record


class TestRandomizedAgainstReference:
    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("eager", [False, True])
    def test_mixed_time_workload(self, seed, eager):
        base = [Record(t, float(t % 11)) for t in range(0, 300, 3)]
        disordered = shuffled_with_disorder(base, 0.3, 30, seed=seed)
        queries = [
            (TumblingWindow(30), Sum()),
            (SlidingWindow(50, 20), Min()),
            (SessionWindow(9), Sum()),
        ]
        op = make_operator(eager, lateness=10_000)
        for window, fn in queries:
            op.add_query(window, fn)
        final = final_values(op, disordered + [Watermark(10_000)])
        expected = reference_results(queries, base, horizon=10_000)
        assert final == {
            (index, start, end): value
            for (index, start, end), value in expected.items()
        }

    @pytest.mark.parametrize("seed", range(4))
    def test_count_workload(self, seed):
        base = [Record(t, float(t % 7)) for t in range(0, 120, 2)]
        disordered = shuffled_with_disorder(base, 0.25, 10, seed=seed)
        queries = [(CountTumblingWindow(7), Sum())]
        op = make_operator(lateness=10_000)
        for window, fn in queries:
            op.add_query(window, fn)
        final = final_values(op, disordered + [Watermark(10_000)])
        expected = reference_results(queries, base, horizon=10_000)
        assert final == expected
