"""Property-based differential fuzzing against the brute-force oracle.

Each case draws a random stream (rate, event-time ties, idle gaps,
disorder, key cardinality) and a random window set (tumbling / sliding /
session, time- and count-measure) from a seeded RNG, runs it through
every technique whose capability set covers the draw, and requires the
final results to be bit-identical to :mod:`repro.reference`.

Reproducibility: the base seed comes from ``REPRO_FUZZ_SEED`` (default
pinned), and each parametrized case derives its own child seed, so a CI
failure names the exact case.  On a mismatch the failing stream is
greedily shrunk (drop one arrival at a time while the disagreement
persists) and the minimal reproducing stream is printed in a form that
pastes straight into a regression test.
"""

from __future__ import annotations

import os
import random
from typing import Callable, List, Sequence, Tuple

import pytest

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Average, Max, Median, Min, Sum
from repro.baselines import (
    AggregateBucketsOperator,
    AggregateTreeOperator,
    CuttyOperator,
    PairsOperator,
    TupleBucketsOperator,
    TupleBufferOperator,
)
from repro.reference import reference_results
from repro.runtime.keyed import KeyedWindowOperator
from repro.windows import SessionWindow, SlidingWindow, TumblingWindow
from repro.windows.count import CountSlidingWindow, CountTumblingWindow

pytestmark = pytest.mark.fuzz

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20190326"))

# Lateness bound handed to out-of-order operators: effectively "never
# drop anything", so the reference (which sees the full stream) applies.
LATENESS = 10_000_000


def _horizon(arrival: Sequence[Record]) -> int:
    """A flushing watermark just past every window the stream can close.

    Tight on purpose: the brute-force reference enumerates every trigger
    window up to the horizon, so a fixed huge horizon would turn each
    differential check into millions of empty windows.
    """
    return max(record.ts for record in arrival) + 1_000

#: Iteration multiplier for long fuzz campaigns (the ``fuzz-long`` CI
#: job runs with ``REPRO_FUZZ_SCALE=10``); 1 keeps PR runs fast.
FUZZ_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))

INORDER_CASES = 12 * FUZZ_SCALE
OOO_CASES = 8 * FUZZ_SCALE
KEYED_CASES = 6 * FUZZ_SCALE
HOLISTIC_CASES = 6 * FUZZ_SCALE

# A query draw is a (window factory, aggregation factory) pair: window
# and aggregation objects hold per-operator state, so every operator
# gets fresh instances.
QueryDraw = Tuple[Callable[[], object], Callable[[], object], str]


def _child_seed(kind: str, index: int) -> int:
    return random.Random(f"{BASE_SEED}:{kind}:{index}").randrange(2**63)


# ----------------------------------------------------------------------
# random draws


def _draw_stream(rng: random.Random, *, key_cardinality: int = 0) -> List[Record]:
    """A stream with random rate, ties, and occasional idle gaps."""
    length = rng.randint(20, 220)
    max_step = rng.choice([1, 2, 4, 8])  # 0-step draws create ts ties
    gap_chance = rng.random() * 0.08
    ts = rng.randint(0, 40)
    stream = []
    for _ in range(length):
        if rng.random() < gap_chance:
            ts += rng.randint(60, 400)  # idle period: empty windows, session breaks
        else:
            ts += rng.randint(0, max_step)
        key = f"k{rng.randrange(key_cardinality)}" if key_cardinality else None
        stream.append(Record(ts, float(rng.randint(-20, 20)), key=key))
    return stream


def _draw_disorder(rng: random.Random, stream: List[Record]) -> List[Record]:
    """Delay a random fraction of records by a random bound."""
    fraction = 0.1 + rng.random() * 0.4
    max_delay = rng.choice([10, 40, 120])
    indexed = []
    for position, record in enumerate(stream):
        delay = rng.randint(1, max_delay) if rng.random() < fraction else 0
        indexed.append((position + delay * len(stream), position, record))
    indexed.sort()
    return [record for _, _, record in indexed]


def _algebraic(rng: random.Random) -> Tuple[Callable[[], object], str]:
    cls = rng.choice([Sum, Min, Max, Average])
    return cls, cls.__name__


def _draw_queries(
    rng: random.Random, *, kinds: Sequence[str]
) -> Tuple[List[QueryDraw], bool, bool]:
    """1-3 random queries; returns (draws, any_session, any_count)."""
    draws: List[QueryDraw] = []
    any_session = any_count = False
    for _ in range(rng.randint(1, 3)):
        kind = rng.choice(list(kinds))
        agg, agg_name = _algebraic(rng)
        if kind == "tumbling":
            length = rng.randint(5, 60)
            draws.append((lambda l=length: TumblingWindow(l), agg, f"Tumbling({length}) {agg_name}"))
        elif kind == "sliding":
            length = rng.randint(6, 60)
            slide = rng.randint(2, length)
            draws.append(
                (lambda l=length, s=slide: SlidingWindow(l, s), agg, f"Sliding({length},{slide}) {agg_name}")
            )
        elif kind == "session":
            gap = rng.randint(3, 30)
            draws.append((lambda g=gap: SessionWindow(g), agg, f"Session({gap}) {agg_name}"))
            any_session = True
        elif kind == "count_tumbling":
            length = rng.randint(3, 25)
            draws.append(
                (lambda l=length: CountTumblingWindow(l), agg, f"CountTumbling({length}) {agg_name}")
            )
            any_count = True
        else:  # count_sliding
            length = rng.randint(4, 25)
            slide = rng.randint(2, length)
            draws.append(
                (lambda l=length, s=slide: CountSlidingWindow(l, s), agg, f"CountSliding({length},{slide}) {agg_name}")
            )
            any_count = True
    return draws, any_session, any_count


# ----------------------------------------------------------------------
# technique matrices, bounded by capability (Table 2)


def _inorder_operators(*, periodic_only_ok: bool):
    operators = [
        ("lazy", lambda: GeneralSlicingOperator(stream_in_order=True)),
        ("eager", lambda: GeneralSlicingOperator(stream_in_order=True, eager=True)),
        ("buffer", lambda: TupleBufferOperator(stream_in_order=True)),
        ("tree", lambda: AggregateTreeOperator(stream_in_order=True)),
        ("agg-buckets", lambda: AggregateBucketsOperator(stream_in_order=True)),
        ("tuple-buckets", lambda: TupleBucketsOperator(stream_in_order=True)),
    ]
    if periodic_only_ok:
        # Pairs and Cutty only define semantics for periodic time windows.
        operators.append(("pairs", lambda: PairsOperator()))
        operators.append(("cutty", lambda: CuttyOperator()))
    return operators


def _ooo_operators():
    return [
        ("lazy", lambda: GeneralSlicingOperator(stream_in_order=False, allowed_lateness=LATENESS)),
        ("eager", lambda: GeneralSlicingOperator(stream_in_order=False, eager=True, allowed_lateness=LATENESS)),
        ("buffer", lambda: TupleBufferOperator(stream_in_order=False, allowed_lateness=LATENESS)),
        ("tree", lambda: AggregateTreeOperator(stream_in_order=False, allowed_lateness=LATENESS)),
        ("agg-buckets", lambda: AggregateBucketsOperator(stream_in_order=False, allowed_lateness=LATENESS)),
    ]


def _subtract_legal(draws: List[QueryDraw]) -> bool:
    """Whether every drawn aggregation supports the subtract kernel."""
    return all(
        make_agg().invertible and make_agg().exact_invert for _, make_agg, _ in draws
    )


def _kernel_override_operators(draws: List[QueryDraw], *, in_order: bool):
    """Forced-kernel / sharing-ablation axis: every kernel faces the
    same random streams and window sets as the auto-selected operators.

    Forcing is *legal but slow* off a kernel's sweet spot (two-stacks
    under out-of-order inserts degrades to O(s) rebuilds); only
    subtract-on-evict without an invertible function is rejected at
    construction, so that variant joins only when every drawn
    aggregation supports it.
    """
    lateness = 0 if in_order else LATENESS

    def make(**kwargs):
        return lambda: GeneralSlicingOperator(
            stream_in_order=in_order, allowed_lateness=lateness, **kwargs
        )

    operators = [
        ("lazy-unshared", make(share_windows=False)),
        ("eager-flatfat", make(eager=True, kernel="flatfat")),
        ("eager-finger", make(eager=True, kernel="finger_tree")),
        ("eager-two-stacks", make(eager=True, kernel="two_stacks")),
    ]
    if _subtract_legal(draws):
        operators.append(
            ("eager-subtract", make(eager=True, kernel="subtract_on_evict"))
        )
    return operators


# ----------------------------------------------------------------------
# differential check + shrinking


def _final_results(make_operator, draws: List[QueryDraw], arrival: List[Record]):
    operator = make_operator()
    for make_window, make_agg, _ in draws:
        operator.add_query(make_window(), make_agg())
    final = {}
    for element in list(arrival) + [Watermark(_horizon(arrival))]:
        for result in operator.process(element):
            final[(result.query_id, result.start, result.end)] = result.value
    return final


def _disagrees(make_operator, draws: List[QueryDraw], arrival: List[Record]) -> bool:
    queries = [(make_window(), make_agg()) for make_window, make_agg, _ in draws]
    expected = reference_results(queries, arrival, horizon=_horizon(arrival))
    try:
        actual = _final_results(make_operator, draws, arrival)
    except Exception:
        return True  # a crash on a sub-stream still reproduces the bug
    return actual != expected


def _shrink(make_operator, draws: List[QueryDraw], arrival: List[Record]) -> List[Record]:
    """Greedy delta-debugging: drop arrivals while the mismatch persists."""
    current = list(arrival)
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + 1 :]
            if candidate and _disagrees(make_operator, draws, candidate):
                current = candidate
                changed = True
            else:
                index += 1
    return current


def _check_technique(name, make_operator, draws, arrival, seed):
    if not _disagrees(make_operator, draws, arrival):
        return
    minimal = _shrink(make_operator, draws, arrival)
    queries = [(make_window(), make_agg()) for make_window, make_agg, _ in draws]
    expected = reference_results(queries, minimal, horizon=_horizon(minimal))
    try:
        actual = _final_results(make_operator, draws, minimal)
    except Exception as exc:  # pragma: no cover - only on real bugs
        actual = f"<crash: {type(exc).__name__}: {exc}>"
    stream_repr = ", ".join(
        f"Record({r.ts}, {r.value!r}" + (f", key={r.key!r})" if r.key is not None else ")")
        for r in minimal
    )
    pytest.fail(
        f"technique {name!r} disagrees with the reference (seed {seed})\n"
        f"queries:  {[label for _, _, label in draws]}\n"
        f"minimal reproducing stream ({len(minimal)} of {len(arrival)} arrivals, "
        f"in arrival order):\n  [{stream_repr}]\n"
        f"expected: {expected}\n"
        f"actual:   {actual}"
    )


# ----------------------------------------------------------------------
# the fuzz cases


@pytest.mark.parametrize("case", range(INORDER_CASES))
def test_fuzz_inorder_all_techniques(case):
    seed = _child_seed("inorder", case)
    rng = random.Random(seed)
    draws, any_session, any_count = _draw_queries(
        rng, kinds=("tumbling", "sliding", "session", "count_tumbling", "count_sliding")
    )
    stream = _draw_stream(rng)
    periodic_only_ok = not (any_session or any_count)
    for name, make_operator in _inorder_operators(periodic_only_ok=periodic_only_ok):
        _check_technique(name, make_operator, draws, stream, seed)
    for name, make_operator in _kernel_override_operators(draws, in_order=True):
        _check_technique(name, make_operator, draws, stream, seed)


@pytest.mark.ooo
@pytest.mark.parametrize("case", range(OOO_CASES))
def test_fuzz_out_of_order_general_techniques(case):
    seed = _child_seed("ooo", case)
    rng = random.Random(seed)
    draws, _, _ = _draw_queries(
        rng, kinds=("tumbling", "sliding", "session", "count_tumbling")
    )
    arrival = _draw_disorder(rng, _draw_stream(rng))
    for name, make_operator in _ooo_operators():
        _check_technique(name, make_operator, draws, arrival, seed)
    for name, make_operator in _kernel_override_operators(draws, in_order=False):
        _check_technique(name, make_operator, draws, arrival, seed)


@pytest.mark.ooo
@pytest.mark.parametrize("case", range(HOLISTIC_CASES))
def test_fuzz_holistic_median_record_keeping_techniques(case):
    seed = _child_seed("holistic", case)
    rng = random.Random(seed)
    length = rng.randint(4, 40)
    draws: List[QueryDraw] = [
        (lambda l=length: TumblingWindow(l), Median, f"Tumbling({length}) Median")
    ]
    arrival = _draw_disorder(rng, _draw_stream(rng))
    operators = [
        ("lazy", lambda: GeneralSlicingOperator(stream_in_order=False, allowed_lateness=LATENESS)),
        ("buffer", lambda: TupleBufferOperator(stream_in_order=False, allowed_lateness=LATENESS)),
        ("tuple-buckets", lambda: TupleBucketsOperator(stream_in_order=False, allowed_lateness=LATENESS)),
    ]
    for name, make_operator in operators:
        _check_technique(name, make_operator, draws, arrival, seed)


@pytest.mark.parametrize("case", range(KEYED_CASES))
def test_fuzz_keyed_routing_matches_per_key_reference(case):
    seed = _child_seed("keyed", case)
    rng = random.Random(seed)
    cardinality = rng.choice([1, 2, 5, 9])
    draws, _, _ = _draw_queries(rng, kinds=("tumbling", "sliding", "session"))
    stream = _draw_stream(rng, key_cardinality=cardinality)

    operator = KeyedWindowOperator(
        lambda: _build_operator(GeneralSlicingOperator(stream_in_order=True), draws)
    )
    final = {}
    for element in stream + [Watermark(_horizon(stream))]:
        for result in operator.process(element):
            final[(result.key, result.query_id, result.start, result.end)] = result.value

    expected = {}
    for key in {record.key for record in stream}:
        per_key = [record for record in stream if record.key == key]
        queries = [(make_window(), make_agg()) for make_window, make_agg, _ in draws]
        for (qi, start, end), value in reference_results(
            queries, per_key, horizon=_horizon(stream)
        ).items():
            expected[(key, qi, start, end)] = value

    assert final == expected, (
        f"keyed routing diverged from per-key reference (seed {seed}, "
        f"cardinality {cardinality}, queries {[label for _, _, label in draws]})"
    )


def _build_operator(operator, draws: List[QueryDraw]):
    for make_window, make_agg, _ in draws:
        operator.add_query(make_window(), make_agg())
    return operator


def test_fuzz_seed_env_changes_draws():
    """REPRO_FUZZ_SEED really parameterizes the suite (guard the plumbing)."""
    a = random.Random("1:inorder:0").randrange(2**63)
    b = random.Random("2:inorder:0").randrange(2**63)
    assert a != b
    assert _child_seed("inorder", 0) == random.Random(
        f"{BASE_SEED}:inorder:0"
    ).randrange(2**63)
