"""Tests for the operator's runtime adaptivity (Section 5, overview).

Workload characteristics are re-derived whenever queries are added or
removed -- never on data changes -- and the storage strategy follows
the Figure 4 decision tree.
"""

import pytest

from conftest import run_operator
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import M4, Median, Sum
from repro.core.measures import MeasureKind
from repro.windows import (
    CountTumblingWindow,
    LastNEveryWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)


class TestStorageAdaptivity:
    def test_cf_commutative_ooo_drops_records(self):
        op = GeneralSlicingOperator(stream_in_order=False)
        op.add_query(TumblingWindow(10), Sum())
        assert not op.stores_records

    def test_adding_holistic_query_switches_to_records(self):
        op = GeneralSlicingOperator(stream_in_order=False)
        op.add_query(TumblingWindow(10), Sum())
        assert not op.stores_records
        op.add_query(TumblingWindow(20), Median())
        assert op.stores_records

    def test_removing_demanding_query_drops_requirement(self):
        op = GeneralSlicingOperator(stream_in_order=False)
        op.add_query(TumblingWindow(10), Sum())
        demanding = op.add_query(TumblingWindow(20), Median())
        assert op.stores_records
        op.remove_query(demanding.query_id)
        assert not op.stores_records

    def test_noncommutative_matters_only_out_of_order(self):
        in_order = GeneralSlicingOperator(stream_in_order=True)
        in_order.add_query(TumblingWindow(10), M4())
        assert not in_order.stores_records
        ooo = GeneralSlicingOperator(stream_in_order=False)
        ooo.add_query(TumblingWindow(10), M4())
        assert ooo.stores_records


class TestChainManagement:
    def test_time_and_count_chains_created(self):
        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        op.add_query(CountTumblingWindow(5), Sum())
        assert set(op.characteristics) == {MeasureKind.TIME, MeasureKind.COUNT}

    def test_single_chain_for_time_only(self):
        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        op.add_query(SlidingWindow(20, 5), Sum())
        assert set(op.characteristics) == {MeasureKind.TIME}

    def test_lastn_lives_in_count_chain(self):
        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(LastNEveryWindow(5, 10), Sum())
        assert set(op.characteristics) == {MeasureKind.COUNT}

    def test_unchanged_chain_preserved_on_add(self):
        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        chain_before = op._chains[MeasureKind.TIME]
        op.add_query(CountTumblingWindow(5), Sum())
        assert op._chains[MeasureKind.TIME] is chain_before


class TestQueriesAddedMidStream:
    def test_new_query_sees_future_windows(self):
        op = GeneralSlicingOperator(stream_in_order=True)
        first = op.add_query(TumblingWindow(10), Sum())
        run_operator(op, [Record(t, 1.0) for t in range(15)])
        second = op.add_query(TumblingWindow(5), Sum())
        results = run_operator(op, [Record(t, 1.0) for t in range(15, 31)])
        by_query = {}
        for result in results:
            by_query.setdefault(result.query_id, []).append(result)
        assert any(r.end == 30 for r in by_query[first.query_id])
        assert any(r.end >= 25 for r in by_query[second.query_id])

    def test_removed_query_stops_emitting(self):
        op = GeneralSlicingOperator(stream_in_order=True)
        keep = op.add_query(TumblingWindow(10), Sum())
        drop = op.add_query(TumblingWindow(5), Sum())
        run_operator(op, [Record(t, 1.0) for t in range(12)])
        op.remove_query(drop.query_id)
        results = run_operator(op, [Record(t, 1.0) for t in range(12, 40)])
        assert all(r.query_id == keep.query_id for r in results)

    def test_remove_unknown_query_is_noop(self):
        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        op.remove_query(999)
        assert len(op.queries) == 1


class TestCharacteristicsExposure:
    def test_characteristics_reflect_sessions(self):
        op = GeneralSlicingOperator(stream_in_order=False)
        op.add_query(SessionWindow(100), Sum())
        chars = op.characteristics[MeasureKind.TIME]
        assert chars.has_sessions
        assert not chars.store_tuples

    def test_repr_mentions_mode(self):
        op = GeneralSlicingOperator(stream_in_order=True, eager=True)
        assert "eager" in repr(op)
        assert "in-order" in repr(op)


class TestSharingAblationKnob:
    def test_per_query_partials_still_correct(self):
        from conftest import final_values
        from repro.reference import reference_results

        stream = [Record(t, float(t % 5)) for t in range(0, 60, 2)]
        queries = [(TumblingWindow(10), Sum()), (TumblingWindow(20), Sum())]
        operator = GeneralSlicingOperator(stream_in_order=True, share_aggregates=False)
        for window, fn in queries:
            operator.add_query(window, fn)
        final = final_values(operator, stream + [Watermark(10_000)])
        assert final == reference_results(queries, stream, horizon=10_000)

    def test_partial_counts_differ(self):
        shared = GeneralSlicingOperator(stream_in_order=True)
        unshared = GeneralSlicingOperator(stream_in_order=True, share_aggregates=False)
        for operator in (shared, unshared):
            operator.add_query(TumblingWindow(10), Sum())
            operator.add_query(TumblingWindow(20), Sum())
        assert len(shared._chains[MeasureKind.TIME].functions) == 1
        assert len(unshared._chains[MeasureKind.TIME].functions) == 2
