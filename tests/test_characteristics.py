"""Tests for the workload characterization / decision trees (Figures 4-6)."""

import pytest

from repro.aggregations import M4, CollectList, Median, Min, Sum
from repro.core.characteristics import (
    Query,
    RemovalStrategy,
    WorkloadCharacteristics,
    removal_strategy,
    requires_splits,
    requires_tuple_storage,
)
from repro.windows import (
    CountTumblingWindow,
    LastNEveryWindow,
    PunctuationWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)


def q(window, aggregation, query_id=0):
    return Query(window, aggregation, query_id=query_id)


class TestFigure4TupleStorage:
    """The decision tree: when must raw records be retained?"""

    def test_inorder_cf_drops_tuples(self):
        assert not requires_tuple_storage([q(TumblingWindow(10), Sum())], True)

    def test_inorder_fcf_drops_tuples(self):
        assert not requires_tuple_storage([q(PunctuationWindow(), Sum())], True)

    def test_inorder_fca_requires_tuples(self):
        assert requires_tuple_storage([q(LastNEveryWindow(10, 5), Sum())], True)

    def test_inorder_session_drops_tuples(self):
        # Sessions are FCA but never require recomputation.
        assert not requires_tuple_storage([q(SessionWindow(5), Sum())], True)

    def test_ooo_cf_commutative_drops_tuples(self):
        assert not requires_tuple_storage([q(TumblingWindow(10), Sum())], False)

    def test_ooo_noncommutative_requires_tuples(self):
        assert requires_tuple_storage([q(TumblingWindow(10), M4())], False)

    def test_inorder_noncommutative_drops_tuples(self):
        # Commutativity is irrelevant for in-order streams (Section 5.1).
        assert not requires_tuple_storage([q(TumblingWindow(10), M4())], True)

    def test_ooo_fcf_requires_tuples(self):
        # Context aware and not a session -> records needed under disorder.
        assert requires_tuple_storage([q(PunctuationWindow(), Sum())], False)

    def test_ooo_session_drops_tuples(self):
        assert not requires_tuple_storage([q(SessionWindow(5), Sum())], False)

    def test_ooo_count_measure_requires_tuples(self):
        assert requires_tuple_storage([q(CountTumblingWindow(10), Sum())], False)

    def test_inorder_count_measure_drops_tuples(self):
        assert not requires_tuple_storage([q(CountTumblingWindow(10), Sum())], True)

    def test_holistic_always_requires_tuples(self):
        assert requires_tuple_storage([q(TumblingWindow(10), Median())], True)
        assert requires_tuple_storage([q(TumblingWindow(10), Median())], False)

    def test_any_query_can_force_storage(self):
        queries = [
            q(TumblingWindow(10), Sum(), 0),
            q(CountTumblingWindow(10), Sum(), 1),
        ]
        assert requires_tuple_storage(queries, False)
        assert not requires_tuple_storage(queries[:1], False)


class TestFigure5Splits:
    def test_inorder_cf_never_splits(self):
        assert not requires_splits([q(SlidingWindow(10, 5), Sum())], True)

    def test_inorder_fca_splits(self):
        assert requires_splits([q(LastNEveryWindow(10, 5), Sum())], True)

    def test_inorder_fcf_no_splits(self):
        assert not requires_splits([q(PunctuationWindow(), Sum())], True)

    def test_ooo_fcf_splits(self):
        assert requires_splits([q(PunctuationWindow(), Sum())], False)

    def test_ooo_session_never_splits(self):
        assert not requires_splits([q(SessionWindow(5), Sum())], False)

    def test_ooo_cf_never_splits(self):
        assert not requires_splits([q(TumblingWindow(10), Sum())], False)


class TestFigure6Removal:
    def test_time_measure_never_removes(self):
        assert removal_strategy(q(TumblingWindow(10), Sum()), False) is RemovalStrategy.NOT_NEEDED

    def test_inorder_count_never_removes(self):
        assert removal_strategy(q(CountTumblingWindow(10), Sum()), True) is RemovalStrategy.NOT_NEEDED

    def test_ooo_count_invertible_uses_invert(self):
        assert removal_strategy(q(CountTumblingWindow(10), Sum()), False) is RemovalStrategy.INVERT

    def test_ooo_count_noninvertible_recomputes(self):
        assert removal_strategy(q(CountTumblingWindow(10), Min()), False) is RemovalStrategy.RECOMPUTE


class TestWorkloadCharacteristics:
    def test_aggregates_query_properties(self):
        queries = [
            q(TumblingWindow(10), Sum(), 0),
            q(SessionWindow(5), Sum(), 1),
        ]
        chars = WorkloadCharacteristics(queries, stream_in_order=False)
        assert chars.has_sessions
        assert chars.has_context_aware
        assert not chars.has_count_measure
        assert chars.all_commutative
        assert not chars.store_tuples

    def test_removal_strategies_by_query(self):
        queries = [
            q(CountTumblingWindow(10), Sum(), 0),
            q(CountTumblingWindow(10), Min(), 1),
        ]
        chars = WorkloadCharacteristics(queries, stream_in_order=False)
        assert chars.removal_strategies[0] is RemovalStrategy.INVERT
        assert chars.removal_strategies[1] is RemovalStrategy.RECOMPUTE

    def test_describe_mentions_order(self):
        chars = WorkloadCharacteristics([q(TumblingWindow(10), Sum())], True)
        assert "in-order" in chars.describe()

    def test_noncommutative_flag(self):
        chars = WorkloadCharacteristics([q(TumblingWindow(10), CollectList())], False)
        assert not chars.all_commutative
        assert chars.store_tuples
