"""Cross-path equivalence: ``process_batch`` must be bit-identical to
tuple-at-a-time ``process`` for every operator, window type, aggregation
class, and stream ordering -- regardless of how the stream is chunked.

The batched fast path (see ``core/operator_.py``) bulk-folds in-order
runs that provably cross no slice edge; everything else falls back to
the exact per-record path.  These tests pin the contract that the split
is invisible: identical ``WindowResult`` sequences, in the same order,
with identical (not merely approximately equal) values.
"""

import random

import pytest

from repro import GeneralSlicingOperator
from repro.aggregations import Max, Median, Sum
from repro.baselines import (
    AggregateTreeOperator,
    BucketsOperator,
    CuttyOperator,
    PairsOperator,
    TupleBufferOperator,
)
from repro.core.types import Record, Watermark
from repro.windows import (
    CountTumblingWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)

BATCH_SIZES = [1, 7, 64, None]  # None = the whole stream as one batch


def result_key(result):
    return (result.query_id, result.start, result.end, result.value, result.is_update)


def run_tuple_at_a_time(operator, elements):
    out = []
    for element in elements:
        out.extend(operator.process(element))
    return [result_key(r) for r in out]


def run_batched(operator, elements, batch_size):
    if batch_size is None:
        batch_size = max(1, len(elements))
    out = []
    for start in range(0, len(elements), batch_size):
        out.extend(operator.process_batch(elements[start : start + batch_size]))
    return [result_key(r) for r in out]


def in_order_stream(n=200, seed=3):
    rng = random.Random(seed)
    ts = 0
    out = []
    for _ in range(n):
        ts += rng.randint(0, 3)
        out.append(Record(ts, float(rng.randint(-50, 50))))
    return out


def out_of_order_stream(n=200, seed=4):
    """Disordered records interleaved with periodic watermarks."""
    rng = random.Random(seed)
    base = in_order_stream(n, seed=seed)
    records = list(base)
    for _ in range(n // 5):
        i = rng.randrange(1, n)
        j = max(0, i - rng.randint(1, 8))
        records[i], records[j] = records[j], records[i]
    out = []
    max_ts = 0
    for index, record in enumerate(records):
        out.append(record)
        max_ts = max(max_ts, record.ts)
        if index % 17 == 16:
            out.append(Watermark(max_ts - rng.randint(0, 5)))
    out.append(Watermark(max_ts + 100))
    return out


ALL_WINDOWS = [
    TumblingWindow(10),
    SlidingWindow(20, 5),
    SessionWindow(7),
    CountTumblingWindow(6),
]

FUNCTIONS = [Sum, Max, Median]  # invertible / non-invertible / holistic


class TestGeneralSlicingEquivalence:
    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("function", FUNCTIONS, ids=lambda f: f.__name__)
    def test_in_order_all_window_types(self, batch_size, function):
        stream = in_order_stream()

        def build():
            op = GeneralSlicingOperator(stream_in_order=True)
            for qid, window in enumerate(ALL_WINDOWS):
                assert op.add_query(window, function()).query_id == qid
            return op

        expected = run_tuple_at_a_time(build(), stream)
        assert expected, "workload must actually emit results"
        assert run_batched(build(), stream, batch_size) == expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize("function", FUNCTIONS, ids=lambda f: f.__name__)
    def test_out_of_order_all_window_types(self, batch_size, function):
        stream = out_of_order_stream()

        def build():
            op = GeneralSlicingOperator(
                stream_in_order=False, allowed_lateness=50
            )
            for window in ALL_WINDOWS:
                op.add_query(window, function())
            return op

        expected = run_tuple_at_a_time(build(), stream)
        assert expected
        assert run_batched(build(), stream, batch_size) == expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_mixed_functions_shared_slices(self, batch_size):
        """All three aggregation classes multiplexed over shared slices."""
        stream = in_order_stream(n=300, seed=9)

        def build():
            op = GeneralSlicingOperator(stream_in_order=True)
            op.add_query(SlidingWindow(30, 10), Sum())
            op.add_query(SlidingWindow(30, 10), Max())
            op.add_query(TumblingWindow(25), Median())
            return op

        expected = run_tuple_at_a_time(build(), stream)
        assert run_batched(build(), stream, batch_size) == expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    def test_run_helper_matches_process(self, batch_size):
        """WindowOperator.run(batch_size=...) is just chunk + process_batch."""
        stream = in_order_stream(n=120, seed=11)

        def build():
            op = GeneralSlicingOperator(stream_in_order=True)
            op.add_query(TumblingWindow(10), Sum())
            return op

        expected = run_tuple_at_a_time(build(), stream)
        size = batch_size if batch_size is not None else len(stream)
        got = [result_key(r) for r in build().run(stream, batch_size=size)]
        assert got == expected


BASELINES_IN_ORDER = [
    TupleBufferOperator,
    AggregateTreeOperator,
    BucketsOperator,
    PairsOperator,
    CuttyOperator,
]


class TestBaselineEquivalence:
    def _build(self, cls):
        if cls in (PairsOperator, CuttyOperator):
            op = cls()
        else:
            op = cls(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        op.add_query(SlidingWindow(20, 5), Sum())
        return op

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize(
        "cls", BASELINES_IN_ORDER, ids=lambda c: c.__name__
    )
    def test_in_order_sliding_and_tumbling(self, cls, batch_size):
        stream = in_order_stream(n=250, seed=5)
        expected = run_tuple_at_a_time(self._build(cls), stream)
        assert expected
        assert run_batched(self._build(cls), stream, batch_size) == expected

    @pytest.mark.parametrize("batch_size", BATCH_SIZES)
    @pytest.mark.parametrize(
        "cls",
        [TupleBufferOperator, AggregateTreeOperator, BucketsOperator],
        ids=lambda c: c.__name__,
    )
    def test_out_of_order_with_watermarks(self, cls, batch_size):
        stream = out_of_order_stream(n=250, seed=6)

        def build():
            op = cls(stream_in_order=False, allowed_lateness=50)
            op.add_query(TumblingWindow(10), Sum())
            op.add_query(SlidingWindow(20, 5), Max())
            return op

        expected = run_tuple_at_a_time(build(), stream)
        assert expected
        assert run_batched(build(), stream, batch_size) == expected
