"""Property-based end-to-end tests: slicing vs the brute-force oracle.

Hypothesis generates random streams (timestamps, values, disorder) and
random window parameters; the general slicing operator's final results
must match the reference semantics computed from the complete stream.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import final_values
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Average, Max, Median, Min, Sum
from repro.reference import reference_results
from repro.windows import (
    CountTumblingWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)

HORIZON = 100_000


@st.composite
def streams(draw, max_size=60, max_ts=200):
    """An arrival-ordered stream with arbitrary (possibly late) records."""
    n = draw(st.integers(1, max_size))
    timestamps = draw(
        st.lists(st.integers(0, max_ts), min_size=n, max_size=n)
    )
    values = draw(
        st.lists(st.integers(-50, 50).map(float), min_size=n, max_size=n)
    )
    disorder = draw(st.floats(0.0, 1.0))
    records = [Record(ts, value) for ts, value in zip(timestamps, values)]
    if disorder < 0.5:
        records.sort(key=lambda record: record.ts)  # mostly in-order cases
    return records


def run_and_compare(queries, records, eager=False):
    op = GeneralSlicingOperator(
        stream_in_order=False, eager=eager, allowed_lateness=HORIZON
    )
    for window, fn in queries:
        op.add_query(window, fn)
    final = final_values(op, list(records) + [Watermark(HORIZON)])
    expected = reference_results(queries, records, horizon=HORIZON)
    assert final == expected


@given(records=streams(), length=st.integers(1, 40))
@settings(max_examples=60, deadline=None)
def test_tumbling_sum_matches_oracle(records, length):
    run_and_compare([(TumblingWindow(length), Sum())], records)


@given(
    records=streams(),
    length=st.integers(2, 40),
    slide=st.integers(1, 20),
)
@settings(max_examples=60, deadline=None)
def test_sliding_min_matches_oracle(records, length, slide):
    run_and_compare([(SlidingWindow(length, slide), Min())], records)


@given(records=streams(), gap=st.integers(1, 30))
@settings(max_examples=60, deadline=None)
def test_session_sum_matches_oracle(records, gap):
    run_and_compare([(SessionWindow(gap), Sum())], records)


@given(records=streams(max_size=40), length=st.integers(1, 10))
@settings(max_examples=60, deadline=None)
def test_count_tumbling_matches_oracle(records, length):
    run_and_compare([(CountTumblingWindow(length), Sum())], records)


@given(records=streams(), length=st.integers(1, 30))
@settings(max_examples=40, deadline=None)
def test_median_matches_oracle(records, length):
    run_and_compare([(TumblingWindow(length), Median())], records)


@given(
    records=streams(max_size=40),
    length_a=st.integers(1, 20),
    length_b=st.integers(2, 30),
    slide=st.integers(1, 10),
    gap=st.integers(1, 20),
)
@settings(max_examples=40, deadline=None)
def test_mixed_query_set_matches_oracle(records, length_a, length_b, slide, gap):
    queries = [
        (TumblingWindow(length_a), Sum()),
        (SlidingWindow(length_b, slide), Max()),
        (SessionWindow(gap), Average()),
    ]
    run_and_compare(queries, records)


@given(records=streams(max_size=40), length=st.integers(1, 20))
@settings(max_examples=30, deadline=None)
def test_eager_equals_lazy_on_random_streams(records, length):
    queries = [(TumblingWindow(length), Sum()), (SessionWindow(7), Sum())]
    lazy = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=HORIZON)
    eager = GeneralSlicingOperator(
        stream_in_order=False, eager=True, allowed_lateness=HORIZON
    )
    for window, fn in queries:
        lazy.add_query(type(window)(length) if isinstance(window, TumblingWindow) else SessionWindow(window.gap), fn)
        eager.add_query(type(window)(length) if isinstance(window, TumblingWindow) else SessionWindow(window.gap), fn)
    stream = list(records) + [Watermark(HORIZON)]
    assert final_values(lazy, stream) == final_values(eager, stream)


@given(records=streams(max_size=50))
@settings(max_examples=40, deadline=None)
def test_slice_invariants_hold(records):
    """Structural invariants: ordered, non-overlapping slices; counts add up."""
    op = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=HORIZON)
    op.add_query(TumblingWindow(13), Sum())
    op.add_query(SessionWindow(5), Sum())
    for record in records:
        op.process(record)
    for chain in op._chains.values():
        slices = chain.store.slices
        for left, right in zip(slices, slices[1:]):
            assert left.end is not None
            assert left.start < left.end <= right.start
        assert sum(s.record_count for s in slices) == len(records)
        for slice_ in slices:
            if slice_.record_count:
                assert slice_.first_ts is not None and slice_.last_ts is not None
                assert slice_.covers(slice_.first_ts)


@given(
    records=streams(max_size=40),
    time_length=st.integers(2, 30),
    count_length=st.integers(1, 8),
)
@settings(max_examples=40, deadline=None)
def test_mixed_measures_under_disorder(records, time_length, count_length):
    """Time-chain and count-chain queries coexist on one operator."""
    queries = [
        (TumblingWindow(time_length), Sum()),
        (CountTumblingWindow(count_length), Sum()),
    ]
    run_and_compare(queries, records)


@given(records=streams(max_size=40), gap=st.integers(1, 20), length=st.integers(1, 6))
@settings(max_examples=40, deadline=None)
def test_sessions_and_count_windows_together(records, gap, length):
    queries = [
        (SessionWindow(gap), Sum()),
        (CountTumblingWindow(length), Min()),
    ]
    run_and_compare(queries, records)
