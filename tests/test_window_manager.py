"""Unit tests for the window manager (Step 3)."""

import pytest

from repro.aggregations import Sum
from repro.core.aggregate_store import LazyAggregateStore
from repro.core.slice_ import Slice
from repro.core.slice_manager import Modification, SliceManager
from repro.core.types import Record
from repro.core.window_manager import ManagedQuery, WindowManager
from repro.windows import SessionWindow, TumblingWindow


def build(window, fn=None, emit_empty=False):
    fn = fn if fn is not None else Sum()
    store = LazyAggregateStore([fn])
    manager = SliceManager(store)
    wm = WindowManager(store, manager, emit_empty=emit_empty)
    wm.add_query(ManagedQuery(0, window, fn, 0))
    return store, manager, wm, fn


def add_slice(store, fn, start, end, records):
    slice_ = Slice(start, end, 1, store_records=False)
    for ts, value in records:
        slice_.add_inorder(Record(ts, value), [fn])
    store.append_slice(slice_)
    return slice_


class TestAdvance:
    def test_emits_completed_windows(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, 10, [(1, 1.0), (5, 2.0)])
        add_slice(store, fn, 10, None, [(12, 4.0)])
        results = wm.advance(15)
        assert [(r.start, r.end, r.value) for r in results] == [(0, 10, 3.0)]

    def test_advance_is_monotone(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        wm.advance(15)
        assert wm.advance(15) == []
        assert wm.advance(10) == []

    def test_no_duplicate_emission(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        assert len(wm.advance(12)) == 1
        assert wm.advance(25) == []  # (10, 20) empty, (0, 10) already out

    def test_empty_windows_skipped_by_default(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        add_slice(store, fn, 30, 40, [(35, 1.0)])
        results = wm.advance(50)
        assert [(r.start, r.end) for r in results] == [(0, 10), (30, 40)]

    def test_emit_empty_mode(self):
        store, _, wm, fn = build(TumblingWindow(10), emit_empty=True)
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        results = wm.advance(21)
        spans = [(r.start, r.end) for r in results]
        assert (10, 20) in spans

    def test_open_head_included_when_safe(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, None, [(1, 1.0), (8, 1.0)])
        results = wm.advance(10)
        assert [(r.start, r.end, r.value) for r in results] == [(0, 10, 2.0)]

    def test_open_head_excluded_when_records_reach_window_end(self):
        store, _, wm, fn = build(TumblingWindow(10))
        # Head contains a record beyond the window end: cannot be used.
        add_slice(store, fn, 0, None, [(1, 1.0), (15, 1.0)])
        results = wm.advance(20)
        # Window (0,10) cannot be answered from this head; nothing emits.
        assert [(r.start, r.end) for r in results if r.end == 10] == []


class TestSessions:
    def test_current_sessions_groups_by_gap(self):
        store, _, wm, fn = build(SessionWindow(5))
        add_slice(store, fn, 0, 4, [(1, 1.0), (3, 1.0)])
        add_slice(store, fn, 4, 20, [(6, 1.0)])  # gap 3 < 5: same session
        add_slice(store, fn, 20, None, [(30, 1.0)])  # gap 24: new session
        sessions = wm.current_sessions(5)
        assert [(s[0], s[1]) for s in sessions] == [(1, 6), (30, 30)]

    def test_sessions_span_empty_slices(self):
        store, _, wm, fn = build(SessionWindow(10))
        add_slice(store, fn, 0, 5, [(1, 1.0)])
        add_slice(store, fn, 5, 8, [])  # empty slice inside the session
        add_slice(store, fn, 8, None, [(9, 1.0)])
        sessions = wm.current_sessions(10)
        assert [(s[0], s[1]) for s in sessions] == [(1, 9)]

    def test_session_not_emitted_before_timeout(self):
        store, _, wm, fn = build(SessionWindow(5))
        add_slice(store, fn, 0, None, [(1, 1.0)])
        assert wm.advance(5) == []  # 1 + 5 = 6 > 5
        results = wm.advance(6)
        assert [(r.start, r.end) for r in results] == [(1, 6)]


class TestModifications:
    def test_modification_before_watermark_updates(self):
        store, manager, wm, fn = build(TumblingWindow(10))
        slice_ = add_slice(store, fn, 0, 10, [(1, 1.0)])
        wm.advance(12)
        slice_.add_out_of_order(Record(5, 2.0), [fn])
        results = wm.on_modification(Modification(5))
        assert [(r.start, r.end, r.value, r.is_update) for r in results] == [
            (0, 10, 3.0, True)
        ]

    def test_modification_at_watermark_is_noop(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        wm.advance(12)
        assert wm.on_modification(Modification(12)) == []
        assert wm.on_modification(Modification(13)) == []

    def test_modification_before_any_watermark_is_noop(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        assert wm.on_modification(Modification(1)) == []


class TestBookkeeping:
    def test_prune_emitted(self):
        store, _, wm, fn = build(TumblingWindow(10))
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        add_slice(store, fn, 10, 20, [(11, 1.0)])
        wm.advance(25)
        wm.prune_emitted(10)
        emitted = wm._emitted[0]
        assert (0, 10) not in emitted
        assert (10, 20) in emitted

    def test_remove_query_clears_state(self):
        store, _, wm, fn = build(TumblingWindow(10))
        wm.remove_query(0)
        assert list(wm.queries) == []
        add_slice(store, fn, 0, 10, [(1, 1.0)])
        assert wm.advance(100) == []

    def test_completed_count_with_partial_head(self):
        fn = Sum()
        store = LazyAggregateStore([fn])
        closed = Slice(0, 10, 1, store_records=True)
        closed.count_start = 0
        closed.count_end = 2
        for ts in (1, 5):
            closed.add_inorder(Record(ts, 1.0), [fn])
        store.append_slice(closed)
        head = Slice(10, None, 1, store_records=True)
        head.count_start = 2
        for ts in (11, 15, 19):
            head.add_inorder(Record(ts, 1.0), [fn])
        store.append_slice(head)
        manager = SliceManager(store, track_counts=True, store_records=True)
        wm = WindowManager(store, manager)
        # Watermark at 16: closed slice complete (2) + head records <= 16 (2).
        assert wm.completed_count(16) == 4
        assert wm.completed_count(9) == 2
        assert wm.completed_count(100) == 5
