"""Tests for stream element types (repro.core.types)."""

import pytest

from repro.core.types import (
    Punctuation,
    Record,
    Watermark,
    WindowResult,
    is_in_order,
    max_event_time,
    records_only,
)


class TestRecord:
    def test_fields(self):
        record = Record(5, 2.5, key="a")
        assert record.ts == 5
        assert record.value == 2.5
        assert record.key == "a"

    def test_default_key_is_none(self):
        assert Record(0, 1.0).key is None

    def test_equality(self):
        assert Record(1, 2.0) == Record(1, 2.0)
        assert Record(1, 2.0) != Record(1, 3.0)
        assert Record(1, 2.0) != Record(2, 2.0)
        assert Record(1, 2.0, key="k") != Record(1, 2.0)

    def test_hashable(self):
        assert len({Record(1, 2.0), Record(1, 2.0), Record(2, 2.0)}) == 2

    def test_not_equal_to_other_types(self):
        assert Record(1, 2.0) != Watermark(1)
        assert Record(1, 2.0) != "record"


class TestWatermark:
    def test_fields_and_equality(self):
        assert Watermark(7).ts == 7
        assert Watermark(7) == Watermark(7)
        assert Watermark(7) != Watermark(8)

    def test_distinct_hash_from_record(self):
        assert hash(Watermark(3)) != hash(Record(3, 3))


class TestPunctuation:
    def test_kinds(self):
        assert Punctuation(5).kind == Punctuation.END
        assert Punctuation(5, Punctuation.START).kind == Punctuation.START

    def test_invalid_kind_rejected(self):
        with pytest.raises(ValueError):
            Punctuation(5, "middle")

    def test_equality(self):
        assert Punctuation(5) == Punctuation(5)
        assert Punctuation(5) != Punctuation(5, Punctuation.START)
        assert Punctuation(5) != Punctuation(6)


class TestWindowResult:
    def test_fields(self):
        result = WindowResult(2, 0, 10, 42.0)
        assert result.as_tuple() == (2, 0, 10, 42.0)
        assert not result.is_update

    def test_update_flag(self):
        assert WindowResult(0, 0, 10, 1.0, is_update=True).is_update

    def test_equality_includes_update_flag(self):
        assert WindowResult(0, 0, 10, 1.0) != WindowResult(0, 0, 10, 1.0, is_update=True)
        assert WindowResult(0, 0, 10, 1.0) == WindowResult(0, 0, 10, 1.0)

    def test_hashable_with_unhashable_value(self):
        # Values may be lists (CollectList); hashing must still work.
        assert isinstance(hash(WindowResult(0, 0, 10, [1, 2])), int)


class TestStreamHelpers:
    def test_is_in_order_true(self):
        assert is_in_order([Record(1, 0), Record(1, 0), Record(3, 0)])

    def test_is_in_order_false(self):
        assert not is_in_order([Record(3, 0), Record(1, 0)])

    def test_is_in_order_ignores_watermarks(self):
        assert is_in_order([Record(5, 0), Watermark(1), Record(5, 0)])

    def test_is_in_order_empty(self):
        assert is_in_order([])

    def test_max_event_time(self):
        assert max_event_time([Record(1, 0), Record(9, 0), Watermark(99)]) == 9

    def test_max_event_time_empty(self):
        assert max_event_time([Watermark(5)]) is None

    def test_records_only(self):
        elements = [Record(1, 0), Watermark(2), Punctuation(3), Record(4, 0)]
        assert [r.ts for r in records_only(elements)] == [1, 4]
