"""Tests for memory accounting and the Table 1 models."""

import pytest

from repro.runtime.memory import TABLE1_ROWS, deep_sizeof, memory_model


class TestDeepSizeof:
    def test_atomic_values(self):
        assert deep_sizeof(1) > 0
        assert deep_sizeof("hello") > deep_sizeof("")

    def test_list_includes_elements(self):
        empty = deep_sizeof([])
        filled = deep_sizeof([10**10, 2 * 10**10])
        assert filled > empty

    def test_nested_containers(self):
        flat = deep_sizeof([1, 2, 3])
        nested = deep_sizeof([[1, 2, 3], [4, 5, 6]])
        assert nested > flat

    def test_dict_counts_keys_and_values(self):
        assert deep_sizeof({"key": "value"}) > deep_sizeof({})

    def test_shared_references_counted_once(self):
        shared = list(range(1000))
        assert deep_sizeof([shared, shared]) < 2 * deep_sizeof(shared)

    def test_cycles_terminate(self):
        a = []
        a.append(a)
        assert deep_sizeof(a) > 0

    def test_slots_objects(self):
        from repro.core.types import Record

        small = deep_sizeof(Record(1, 1.0))
        large = deep_sizeof(Record(1, tuple(range(100))))
        assert large > small

    def test_dict_backed_objects(self):
        class Thing:
            def __init__(self):
                self.payload = list(range(100))

        assert deep_sizeof(Thing()) > deep_sizeof(list(range(100)))


class TestMemoryModels:
    def test_all_rows_defined(self):
        assert set(TABLE1_ROWS) == set(range(1, 9))

    def test_tuple_buffer_scales_with_tuples(self):
        small = memory_model(1, num_tuples=100, num_slices=10, num_windows=10)
        large = memory_model(1, num_tuples=10_000, num_slices=10, num_windows=10)
        assert large == 100 * small

    def test_lazy_slicing_scales_with_slices_only(self):
        base = memory_model(5, num_tuples=100, num_slices=10, num_windows=10)
        more_tuples = memory_model(5, num_tuples=10_000, num_slices=10, num_windows=10)
        more_slices = memory_model(5, num_tuples=100, num_slices=100, num_windows=10)
        assert base == more_tuples
        assert more_slices == 10 * base

    def test_buckets_scale_with_windows(self):
        base = memory_model(3, num_tuples=100, num_slices=10, num_windows=10)
        more = memory_model(3, num_tuples=100, num_slices=10, num_windows=100)
        assert more == 10 * base

    def test_eager_adds_tree_overhead(self):
        lazy = memory_model(5, num_tuples=100, num_slices=50, num_windows=10)
        eager = memory_model(6, num_tuples=100, num_slices=50, num_windows=10)
        assert eager > lazy

    def test_tuple_variants_add_tuple_cost(self):
        aggregate_only = memory_model(5, num_tuples=1000, num_slices=50, num_windows=10)
        with_tuples = memory_model(7, num_tuples=1000, num_slices=50, num_windows=10)
        assert with_tuples > aggregate_only

    def test_tuple_buckets_duplicate_overlapping_tuples(self):
        # With overlap, avg tuples per window times windows > tuples.
        model = memory_model(
            4,
            num_tuples=1000,
            num_slices=50,
            num_windows=10,
            avg_tuples_per_window=500,
        )
        buffer = memory_model(1, num_tuples=1000, num_slices=50, num_windows=10)
        assert model > buffer

    def test_unknown_row_rejected(self):
        with pytest.raises(ValueError):
            memory_model(9, num_tuples=1, num_slices=1, num_windows=1)

    def test_ordering_matches_table1_for_typical_workload(self):
        """Paper shape: slicing <= buckets <= buffers <= trees (time windows)."""
        kwargs = dict(num_tuples=50_000, num_slices=500, num_windows=500)
        lazy = memory_model(5, **kwargs)
        buckets = memory_model(3, **kwargs)
        buffer = memory_model(1, **kwargs)
        tree = memory_model(2, **kwargs)
        assert lazy < buckets < buffer < tree


class TestMeasuredFootprints:
    def test_slicing_memory_independent_of_tuple_rate(self):
        """Figure 10b shape: slicing memory stays flat as tuples grow."""
        from repro.experiments.figures import _fill_time_operator

        small = _fill_time_operator("Lazy Slicing", 50, 1_000, 1_000_000)
        large = _fill_time_operator("Lazy Slicing", 50, 5_000, 1_000_000)
        small_bytes = sum(deep_sizeof(o) for o in small.state_objects())
        large_bytes = sum(deep_sizeof(o) for o in large.state_objects())
        assert large_bytes < small_bytes * 1.5

    def test_tuple_buffer_memory_grows_with_tuples(self):
        from repro.experiments.figures import _fill_time_operator

        small = _fill_time_operator("Tuple Buffer", 50, 1_000, 1_000_000)
        large = _fill_time_operator("Tuple Buffer", 50, 5_000, 1_000_000)
        small_bytes = sum(deep_sizeof(o) for o in small.state_objects())
        large_bytes = sum(deep_sizeof(o) for o in large.state_objects())
        assert large_bytes > small_bytes * 3
