"""Tests for holistic aggregations and the RLE-encoded sorted runs."""

import pytest

from repro.aggregations import Median, Percentile, PlainMedian, RleRuns, SortedValues, fold


class TestRleRuns:
    def test_of_single_value(self):
        runs = RleRuns.of(5.0)
        assert runs.runs == [(5.0, 1)]
        assert runs.total == 1

    def test_from_values_sorts_and_encodes(self):
        runs = RleRuns.from_values([3.0, 1.0, 3.0, 2.0, 3.0])
        assert runs.runs == [(1.0, 1), (2.0, 1), (3.0, 3)]
        assert runs.total == 5

    def test_merge_preserves_order_and_counts(self):
        left = RleRuns.from_values([1.0, 3.0, 3.0])
        right = RleRuns.from_values([2.0, 3.0])
        merged = left.merge(right)
        assert merged.runs == [(1.0, 1), (2.0, 1), (3.0, 3)]
        assert merged.total == 5

    def test_merge_with_empty(self):
        runs = RleRuns.from_values([1.0])
        assert runs.merge(RleRuns()).runs == runs.runs
        assert RleRuns().merge(runs).runs == runs.runs

    def test_merge_coalesces_boundary_runs(self):
        left = RleRuns.from_values([1.0, 2.0])
        right = RleRuns.from_values([2.0, 3.0])
        assert left.merge(right).runs == [(1.0, 1), (2.0, 2), (3.0, 1)]

    def test_select(self):
        runs = RleRuns.from_values([1.0, 1.0, 2.0, 5.0])
        assert [runs.select(i) for i in range(4)] == [1.0, 1.0, 2.0, 5.0]

    def test_select_out_of_range(self):
        with pytest.raises(IndexError):
            RleRuns.from_values([1.0]).select(1)

    def test_quantile_bounds(self):
        runs = RleRuns.from_values([float(i) for i in range(10)])
        assert runs.quantile(0.0) == 0.0
        assert runs.quantile(1.0) == 9.0
        assert runs.quantile(0.5) == 5.0

    def test_quantile_empty_raises(self):
        with pytest.raises(ValueError):
            RleRuns().quantile(0.5)

    def test_quantile_invalid_q(self):
        with pytest.raises(ValueError):
            RleRuns.of(1.0).quantile(1.5)

    def test_subtract(self):
        runs = RleRuns.from_values([1.0, 1.0, 2.0, 3.0])
        removed = runs.subtract(RleRuns.from_values([1.0, 3.0]))
        assert removed.runs == [(1.0, 1), (2.0, 1)]

    def test_subtract_missing_value_raises(self):
        with pytest.raises(ValueError):
            RleRuns.from_values([1.0]).subtract(RleRuns.from_values([2.0]))

    def test_subtract_overdraw_raises(self):
        with pytest.raises(ValueError):
            RleRuns.from_values([1.0]).subtract(RleRuns.from_values([1.0, 1.0]))

    def test_distinct_counts_runs(self):
        assert RleRuns.from_values([1.0, 1.0, 2.0]).distinct() == 2

    def test_rle_compression_for_low_cardinality(self):
        # The Figure 14 effect: few distinct values -> few runs.
        many = RleRuns.from_values([float(i % 3) for i in range(1000)])
        assert many.distinct() == 3
        assert len(many) == 1000


class TestSortedValues:
    def test_merge(self):
        left = SortedValues([1.0, 3.0])
        right = SortedValues([2.0, 4.0])
        assert left.merge(right).values == [1.0, 2.0, 3.0, 4.0]

    def test_subtract(self):
        values = SortedValues([1.0, 2.0, 2.0, 3.0])
        assert values.subtract(SortedValues([2.0])).values == [1.0, 2.0, 3.0]

    def test_subtract_missing_raises(self):
        with pytest.raises(ValueError):
            SortedValues([1.0]).subtract(SortedValues([9.0]))

    def test_quantile(self):
        values = SortedValues([float(i) for i in range(4)])
        assert values.quantile(0.5) == 2.0


class TestMedian:
    def test_median_odd(self):
        fn = Median()
        partial = fold(fn, [5.0, 1.0, 3.0])
        assert fn.lower(partial) == 3.0

    def test_median_even_uses_nearest_rank(self):
        fn = Median()
        partial = fold(fn, [1.0, 2.0, 3.0, 4.0])
        assert fn.lower(partial) == 3.0  # rank int(0.5*4)=2 -> value 3.0

    def test_empty_lowers_to_none(self):
        fn = Median()
        assert fn.lower(RleRuns()) is None

    def test_invert_multiset(self):
        fn = Median()
        partial = fold(fn, [1.0, 2.0, 3.0, 9.0])
        reduced = fn.invert(partial, fn.lift(9.0))
        assert fn.lower(reduced) == 2.0

    def test_holistic_classification(self):
        from repro.aggregations.base import AggregationClass

        assert Median().kind is AggregationClass.HOLISTIC


class TestPercentile:
    def test_90th(self):
        fn = Percentile(0.9)
        partial = fold(fn, [float(i) for i in range(100)])
        assert fn.lower(partial) == 90.0

    def test_invalid_quantile(self):
        with pytest.raises(ValueError):
            Percentile(2.0)

    def test_name_includes_quantile(self):
        assert Percentile(0.9).name == "90-percentile"


class TestPlainMedian:
    def test_matches_rle_median(self):
        values = [float(i % 13) for i in range(77)]
        rle = Median()
        plain = PlainMedian()
        assert rle.lower(fold(rle, values)) == plain.lower(fold(plain, values))

    def test_empty(self):
        assert PlainMedian().lower(SortedValues()) is None
