"""Metamorphic batch-split tests: batching must be invisible.

For every technique the three ways of feeding the same element sequence
must produce bit-identical results, in content *and* order:

* one call per element (:meth:`process`),
* one batch holding the whole sequence (:meth:`process_batch`),
* the sequence cut at random points into consecutive batches.

This is the metamorphic relation behind the batched ingestion fast
path: ``process_batch(a + b)`` == ``process_batch(a)`` followed by
``process_batch(b)``.  Random split points land inside in-order runs,
on slice edges, next to watermarks, and around out-of-order records,
so every bail-out branch of the batch paths is crossed somewhere.

The same relation is checked for each forced aggregation kernel of the
eager slicing operator (the batch run-fold must commute with two-stacks
flips and subtract-on-evict prefix maintenance, not just FlatFAT).

Seeds are pinned; override with ``REPRO_FUZZ_SEED``.
"""

from __future__ import annotations

import os
import random
from typing import List

import pytest

from conftest import shuffled_with_disorder
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Average, Sum
from repro.experiments.harness import INORDER_ONLY_TECHNIQUES, TECHNIQUES
from repro.windows import SessionWindow, SlidingWindow, TumblingWindow

pytestmark = pytest.mark.fuzz

BASE_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "20190326"))

#: Iteration multiplier for long fuzz campaigns (``fuzz-long`` CI job).
FUZZ_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))

SEEDS = range(3 * FUZZ_SCALE)
N_RECORDS = 300
LATENESS = 10_000


def _child_seed(tag: str, index: int) -> int:
    return random.Random(f"{BASE_SEED}:batch:{tag}:{index}").randrange(2**63)


def _inorder_elements(seed: int) -> List[object]:
    rng = random.Random(seed)
    ts = 0
    out: List[object] = []
    for step in range(N_RECORDS):
        ts += rng.choice([0, 1, 1, 2, 3]) + (15 if rng.random() < 0.04 else 0)
        out.append(Record(ts, float(rng.randint(0, 9))))
    out.append(Watermark(ts + 1_000))
    return out


def _ooo_elements(seed: int) -> List[object]:
    base = [r for r in _inorder_elements(seed) if isinstance(r, Record)]
    records = shuffled_with_disorder(base, 0.25, 18, seed=seed + 1)
    out: List[object] = []
    high = 0
    for index, record in enumerate(records):
        out.append(record)
        high = max(high, record.ts)
        if index % 40 == 39:
            out.append(Watermark(high - 30))
    out.append(Watermark(high + 1_000))
    return out


def _random_chunks(elements: List[object], rng: random.Random) -> List[List[object]]:
    """Cut the sequence at 2-6 random interior points (chunks stay in order)."""
    n = len(elements)
    cuts = sorted(rng.sample(range(1, n), rng.randint(2, min(6, n - 1))))
    bounds = [0] + cuts + [n]
    return [elements[a:b] for a, b in zip(bounds, bounds[1:])]


def _run_three_ways(factory, elements: List[object], seed: int) -> None:
    per_element = factory()
    expected: List[object] = []
    for element in elements:
        expected.extend(per_element.process(element))

    whole = factory().process_batch(elements)
    assert whole == expected, "one whole batch diverged from per-element"

    rng = random.Random(seed)
    split = factory()
    got: List[object] = []
    for chunk in _random_chunks(elements, rng):
        got.extend(split.process_batch(chunk))
    assert got == expected, "randomly split batches diverged from per-element"


def _add_queries(operator, *, sessions: bool) -> None:
    operator.add_query(TumblingWindow(50), Sum())
    operator.add_query(SlidingWindow(80, 20), Average())
    if sessions:
        operator.add_query(SessionWindow(7), Sum())


INORDER_MATRIX = [
    (tech, seed_index) for tech in TECHNIQUES for seed_index in SEEDS
]
OOO_MATRIX = [
    (tech, seed_index)
    for tech in TECHNIQUES
    if tech not in INORDER_ONLY_TECHNIQUES
    for seed_index in SEEDS
]


@pytest.mark.parametrize(
    "tech, seed_index", INORDER_MATRIX, ids=[f"{t}-s{s}" for t, s in INORDER_MATRIX]
)
def test_batch_split_invariance_inorder(tech, seed_index):
    seed = _child_seed(f"in:{tech}", seed_index)

    def factory():
        operator = TECHNIQUES[tech](stream_in_order=True, allowed_lateness=0)
        _add_queries(operator, sessions=tech not in INORDER_ONLY_TECHNIQUES)
        return operator

    _run_three_ways(factory, _inorder_elements(seed), seed)


@pytest.mark.ooo
@pytest.mark.parametrize(
    "tech, seed_index", OOO_MATRIX, ids=[f"{t}-s{s}" for t, s in OOO_MATRIX]
)
def test_batch_split_invariance_out_of_order(tech, seed_index):
    seed = _child_seed(f"ooo:{tech}", seed_index)

    def factory():
        operator = TECHNIQUES[tech](stream_in_order=False, allowed_lateness=LATENESS)
        _add_queries(operator, sessions=True)
        return operator

    _run_three_ways(factory, _ooo_elements(seed), seed)


KERNELS = ["flatfat", "finger_tree", "two_stacks", "subtract_on_evict"]

#: Kernels that absorb mid-list inserts natively -- the two the selector
#: can actually put on a disordered stream.
OOO_KERNELS = ["flatfat", "finger_tree"]


@pytest.mark.parametrize(
    "kernel, seed_index",
    [(k, s) for k in KERNELS for s in SEEDS],
    ids=[f"{k}-s{s}" for k in KERNELS for s in SEEDS],
)
def test_batch_split_invariance_per_kernel(kernel, seed_index):
    """The batch run-fold path must commute with every kernel's internal
    bookkeeping, not just FlatFAT's."""
    seed = _child_seed(f"kernel:{kernel}", seed_index)

    def factory():
        operator = GeneralSlicingOperator(
            stream_in_order=True, eager=True, kernel=kernel
        )
        # Sum + Average keep the subtract-on-evict kernel legal.
        operator.add_query(TumblingWindow(50), Sum())
        operator.add_query(SlidingWindow(80, 20), Average())
        return operator

    _run_three_ways(factory, _inorder_elements(seed), seed)


@pytest.mark.ooo
@pytest.mark.parametrize(
    "kernel, seed_index",
    [(k, s) for k in OOO_KERNELS for s in SEEDS],
    ids=[f"{k}-s{s}" for k in OOO_KERNELS for s in SEEDS],
)
def test_batch_split_invariance_per_kernel_out_of_order(kernel, seed_index):
    """Disordered streams cross the batch bail-out branches *and* the
    kernels' positional insert/update paths; chunking must stay
    invisible for both insert-capable kernels."""
    seed = _child_seed(f"kernel-ooo:{kernel}", seed_index)

    def factory():
        operator = GeneralSlicingOperator(
            stream_in_order=False,
            eager=True,
            kernel=kernel,
            allowed_lateness=LATENESS,
        )
        _add_queries(operator, sessions=True)
        return operator

    _run_three_ways(factory, _ooo_elements(seed), seed)


@pytest.mark.parametrize("seed_index", SEEDS)
def test_batch_split_invariance_shared_vs_unshared(seed_index):
    """Window sharing is a pure cache: turning it off must not change
    results, batched or not."""
    seed = _child_seed("share", seed_index)
    elements = _inorder_elements(seed)

    def build(share):
        operator = GeneralSlicingOperator(
            stream_in_order=True, share_windows=share
        )
        operator.add_query(SlidingWindow(100, 20), Sum())
        operator.add_query(SlidingWindow(60, 20), Sum())
        return operator

    for share in (True, False):
        _run_three_ways(lambda share=share: build(share), elements, seed)

    # Direct cross-check: shared and unshared runs agree element-wise.
    a, b = build(True), build(False)
    out_a: List[object] = []
    out_b: List[object] = []
    for element in elements:
        out_a.extend(a.process(element))
        out_b.extend(b.process(element))
    assert out_a == out_b
