"""Tests for the Section 3 baseline operators."""

import pytest

from conftest import final_values, run_operator, shuffled_with_disorder
from repro import Record, StreamOrderViolation, Watermark
from repro.aggregations import Median, Min, Sum
from repro.baselines import (
    AggregateBucketsOperator,
    AggregateTreeOperator,
    CuttyOperator,
    PairsOperator,
    TupleBucketsOperator,
    TupleBufferOperator,
)
from repro.core.types import Punctuation
from repro.reference import reference_results
from repro.windows import (
    CountTumblingWindow,
    LastNEveryWindow,
    PunctuationWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)

GENERAL_BASELINES = [
    TupleBufferOperator,
    AggregateTreeOperator,
    AggregateBucketsOperator,
    TupleBucketsOperator,
]


class TestInOrderAgreementWithReference:
    @pytest.mark.parametrize("cls", GENERAL_BASELINES + [PairsOperator, CuttyOperator])
    def test_tumbling_sum(self, cls, simple_stream):
        op = cls() if cls in (PairsOperator, CuttyOperator) else cls(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        results = run_operator(op, simple_stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 10, 10.0),
            (10, 20, 10.0),
        ]

    @pytest.mark.parametrize("cls", GENERAL_BASELINES + [PairsOperator, CuttyOperator])
    def test_sliding_sum(self, cls, valued_stream):
        op = cls() if cls in (PairsOperator, CuttyOperator) else cls(stream_in_order=True)
        op.add_query(SlidingWindow(20, 10), Sum())
        final = final_values(op, valued_stream + [Watermark(10**6)])
        expected = reference_results(
            [(SlidingWindow(20, 10), Sum())], valued_stream, horizon=10**6
        )
        assert final == expected

    @pytest.mark.parametrize("cls", GENERAL_BASELINES)
    def test_sessions(self, cls):
        op = cls(stream_in_order=True)
        op.add_query(SessionWindow(5), Sum())
        stream = [Record(t, 1.0) for t in [1, 2, 3, 20, 21, 40]]
        final = final_values(op, stream + [Watermark(100)])
        assert final == {(0, 1, 8): 3.0, (0, 20, 26): 2.0, (0, 40, 45): 1.0}

    @pytest.mark.parametrize("cls", [TupleBufferOperator, AggregateTreeOperator])
    def test_count_windows(self, cls):
        op = cls(stream_in_order=True)
        op.add_query(CountTumblingWindow(3), Sum())
        stream = [Record(t, float(t)) for t in range(10)]
        results = run_operator(op, stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 3, 3.0),
            (3, 6, 12.0),
            (6, 9, 21.0),
        ]

    @pytest.mark.parametrize("cls", [TupleBufferOperator, AggregateTreeOperator])
    def test_multimeasure(self, cls):
        op = cls(stream_in_order=True)
        op.add_query(LastNEveryWindow(count=3, every=10), Sum())
        stream = [Record(t, 1.0) for t in range(0, 25, 2)]
        results = run_operator(op, stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (2, 5, 3.0),
            (7, 10, 3.0),
        ]


class TestOutOfOrderBehaviour:
    @pytest.mark.parametrize("cls", GENERAL_BASELINES)
    def test_late_update(self, cls):
        op = cls(stream_in_order=False, allowed_lateness=1000)
        op.add_query(TumblingWindow(10), Sum())
        run_operator(op, [Record(1, 1.0), Record(15, 1.0), Watermark(12)])
        updates = op.process(Record(3, 2.0))
        assert [(u.start, u.end, u.value) for u in updates] == [(0, 10, 3.0)]
        assert updates[0].is_update

    @pytest.mark.parametrize("cls", GENERAL_BASELINES)
    def test_in_order_mode_rejects_late_records(self, cls):
        op = cls(stream_in_order=True)
        op.add_query(TumblingWindow(10), Sum())
        op.process(Record(10, 1.0))
        with pytest.raises(StreamOrderViolation):
            op.process(Record(5, 1.0))

    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("cls", [TupleBufferOperator, AggregateTreeOperator])
    def test_random_disorder_matches_reference(self, cls, seed):
        base = [Record(t, float(t % 5)) for t in range(0, 200, 2)]
        disordered = shuffled_with_disorder(base, 0.3, 20, seed=seed)
        queries = [(TumblingWindow(20), Sum()), (SessionWindow(6), Sum())]
        op = cls(stream_in_order=False, allowed_lateness=10_000)
        for window, fn in queries:
            op.add_query(window, fn)
        final = final_values(op, disordered + [Watermark(10_000)])
        expected = reference_results(queries, base, horizon=10_000)
        assert final == expected


class TestBuckets:
    def test_tuple_buckets_serve_holistic(self):
        op = TupleBucketsOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), Median())
        results = run_operator(op, [Record(t, float(t)) for t in range(12)])
        assert results[0].value == 5.0

    def test_aggregate_buckets_reject_holistic(self):
        op = AggregateBucketsOperator(stream_in_order=True)
        with pytest.raises(ValueError):
            op.add_query(TumblingWindow(10), Median())

    def test_bucket_count_reflects_overlap(self):
        op = AggregateBucketsOperator(stream_in_order=False, allowed_lateness=10**9)
        op.add_query(SlidingWindow(20, 5), Sum())
        run_operator(op, [Record(t, 1.0) for t in range(0, 40, 2)])
        # Overlapping sliding windows materialize one bucket each.
        assert op.bucket_count() >= 8

    def test_session_bucket_merging(self):
        op = AggregateBucketsOperator(stream_in_order=False, allowed_lateness=1000)
        op.add_query(SessionWindow(5), Sum())
        elements = [
            Record(1, 1.0),
            Record(8, 1.0),
            Record(4, 1.0),
            Watermark(40),
        ]
        final = final_values(op, elements)
        assert final == {(0, 1, 13): 3.0}

    def test_ooo_throughput_cost_is_bucket_local(self):
        # An out-of-order record only touches its buckets: same output.
        op = AggregateBucketsOperator(stream_in_order=False, allowed_lateness=1000)
        op.add_query(TumblingWindow(10), Sum())
        final = final_values(
            op,
            [Record(5, 1.0), Record(15, 1.0), Record(2, 1.0), Watermark(20)],
        )
        assert final == {(0, 0, 10): 2.0, (0, 10, 20): 1.0}


class TestPairsRestrictions:
    def test_rejects_sessions(self):
        with pytest.raises(ValueError):
            PairsOperator().add_query(SessionWindow(5), Sum())

    def test_rejects_holistic(self):
        with pytest.raises(ValueError):
            PairsOperator().add_query(TumblingWindow(10), Median())

    def test_rejects_out_of_order(self):
        op = PairsOperator()
        op.add_query(TumblingWindow(10), Sum())
        op.process(Record(10, 1.0))
        with pytest.raises(StreamOrderViolation):
            op.process(Record(5, 1.0))

    def test_fragments_shared_across_queries(self, simple_stream):
        op = PairsOperator()
        op.add_query(TumblingWindow(10), Sum())
        op.add_query(SlidingWindow(10, 5), Sum())
        run_operator(op, simple_stream)
        # Edges at multiples of 5: about one fragment per 5 ts.
        assert op.fragment_count() <= 7


class TestCutty:
    def test_rejects_fca(self):
        with pytest.raises(ValueError):
            CuttyOperator().add_query(LastNEveryWindow(5, 10), Sum())

    def test_rejects_out_of_order(self):
        op = CuttyOperator()
        op.add_query(TumblingWindow(10), Sum())
        op.process(Record(10, 1.0))
        with pytest.raises(StreamOrderViolation):
            op.process(Record(5, 1.0))

    def test_punctuation_windows_supported(self):
        op = CuttyOperator()
        op.add_query(PunctuationWindow(), Sum())
        elements = [
            Record(1, 1.0),
            Record(2, 1.0),
            Punctuation(5),
            Record(7, 1.0),
            Punctuation(9),
            Record(11, 1.0),
        ]
        results = run_operator(op, elements)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 5, 2.0),
            (5, 9, 1.0),
        ]

    def test_user_defined_window_via_subclass(self, simple_stream):
        """Cutty's selling point: plug in a custom deterministic window."""
        from repro.windows.base import ContextFreeWindow

        class FibonacciWindow(ContextFreeWindow):
            """Windows between consecutive Fibonacci numbers."""

            EDGES = [0, 1, 2, 3, 5, 8, 13, 21, 34]

            def get_next_edge(self, ts):
                for edge in self.EDGES:
                    if edge > ts:
                        return edge
                return None

            def get_floor_edge(self, ts):
                best = None
                for edge in self.EDGES:
                    if edge <= ts:
                        best = edge
                return best

            def trigger_windows(self, prev, curr):
                for lo, hi in zip(self.EDGES, self.EDGES[1:]):
                    if prev < hi <= curr:
                        yield (lo, hi)

        op = CuttyOperator()
        op.add_query(FibonacciWindow(), Sum())
        results = run_operator(op, simple_stream)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 1, 1.0),
            (1, 2, 1.0),
            (2, 3, 1.0),
            (3, 5, 2.0),
            (5, 8, 3.0),
            (8, 13, 5.0),
            (13, 21, 8.0),
        ]


class TestEviction:
    def test_tuple_buffer_evicts_old_records(self):
        op = TupleBufferOperator(stream_in_order=True)
        op.EVICT_BATCH = 1  # force eager eviction for the test
        op.add_query(TumblingWindow(10), Sum())
        for ts in range(0, 2000, 2):
            op.process(Record(ts, 1.0))
        assert op.buffered_records() < 200

    def test_aggregate_tree_evicts_old_records(self):
        op = AggregateTreeOperator(stream_in_order=True)
        op.EVICT_BATCH = 1
        op.add_query(TumblingWindow(10), Sum())
        for ts in range(0, 2000, 2):
            op.process(Record(ts, 1.0))
        assert op.buffered_records() < 200
