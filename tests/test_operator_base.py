"""Tests for the shared WindowOperator interface and eviction behaviour."""

import pytest

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum
from repro.core.operator_base import WindowOperator
from repro.core.types import Punctuation
from repro.windows import SessionWindow, TumblingWindow


class TestDispatch:
    def test_process_routes_by_element_type(self):
        calls = []

        class Probe(WindowOperator):
            def process_record(self, record):
                calls.append(("record", record.ts))
                return []

            def process_watermark(self, watermark):
                calls.append(("watermark", watermark.ts))
                return []

            def process_punctuation(self, punctuation):
                calls.append(("punctuation", punctuation.ts))
                return []

        probe = Probe()
        probe.run([Record(1, 0), Watermark(2), Punctuation(3)])
        assert calls == [("record", 1), ("watermark", 2), ("punctuation", 3)]

    def test_unknown_element_rejected(self):
        operator = GeneralSlicingOperator(stream_in_order=True)
        with pytest.raises(TypeError):
            operator.process("not a stream element")

    def test_default_punctuation_is_ignored(self):
        class Minimal(WindowOperator):
            def process_record(self, record):
                return []

            def process_watermark(self, watermark):
                return []

        assert Minimal().process(Punctuation(5)) == []

    def test_query_ids_are_unique_and_stable(self):
        operator = GeneralSlicingOperator(stream_in_order=True)
        first = operator.add_query(TumblingWindow(10), Sum())
        second = operator.add_query(TumblingWindow(20), Sum())
        operator.remove_query(first.query_id)
        third = operator.add_query(TumblingWindow(30), Sum())
        assert len({first.query_id, second.query_id, third.query_id}) == 3


class TestEvictionLongStream:
    def test_slices_bounded_over_long_stream(self):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=50)
        operator.add_query(TumblingWindow(10), Sum())
        for ts in range(0, 20_000, 2):
            operator.process(Record(ts, 1.0))
            if ts % 100 == 0:
                operator.process(Watermark(ts - 10))
        # Retention: lateness 50 + max window 10 -> a few dozen slices max.
        assert operator.total_slices() < 50

    def test_emitted_bookkeeping_pruned(self):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=20)
        operator.add_query(TumblingWindow(10), Sum())
        for ts in range(0, 10_000, 5):
            operator.process(Record(ts, 1.0))
            operator.process(Watermark(ts - 20))
        from repro.core.measures import MeasureKind

        chain = operator._chains[MeasureKind.TIME]
        emitted = chain.window_manager._emitted[0]
        assert len(emitted) < 100

    def test_session_eviction_spares_open_sessions(self):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=10)
        operator.add_query(SessionWindow(1_000_000), Sum())
        results = []
        for ts in range(0, 5_000, 50):
            results.extend(operator.process(Record(ts, 1.0)))
            results.extend(operator.process(Watermark(ts)))
        # The session never times out, so nothing may be evicted or emitted.
        assert results == []
        flush = operator.process(Watermark(10_000_000))
        assert len(flush) == 1
        assert flush[0].value == 100.0  # all records retained

    def test_results_after_eviction_remain_correct(self):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=30)
        operator.add_query(TumblingWindow(10), Sum())
        total_emitted = 0.0
        count = 0
        for ts in range(0, 5_000):
            for result in operator.process(Record(ts, 1.0)):
                if not result.is_update:
                    total_emitted += result.value
                    count += 1
            if ts % 50 == 49:
                for result in operator.process(Watermark(ts - 30)):
                    if not result.is_update:
                        total_emitted += result.value
                        count += 1
        # Every emitted tumbling window contains exactly 10 records.
        assert total_emitted == count * 10.0


class TestInterfaceUniformity:
    def test_all_operators_accept_run(self):
        from repro.baselines import (
            AggregateBucketsOperator,
            AggregateTreeOperator,
            CuttyOperator,
            PairsOperator,
            TupleBucketsOperator,
            TupleBufferOperator,
        )

        stream = [Record(ts, 1.0) for ts in range(25)]
        expected = [(0, 10, 10.0), (10, 20, 10.0)]
        operators = [
            GeneralSlicingOperator(stream_in_order=True),
            TupleBufferOperator(stream_in_order=True),
            AggregateTreeOperator(stream_in_order=True),
            AggregateBucketsOperator(stream_in_order=True),
            TupleBucketsOperator(stream_in_order=True),
            PairsOperator(),
            CuttyOperator(),
        ]
        for operator in operators:
            operator.add_query(TumblingWindow(10), Sum())
            results = operator.run(stream)
            assert [(r.start, r.end, r.value) for r in results] == expected, operator
