"""Property tests for the context-aware window types vs the oracle.

Covers the harder paths: punctuation-delimited (FCF) windows with late
punctuations, multi-measure (FCA) windows, and count-based sliding
windows -- all under random streams and random disorder.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from conftest import final_values
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum
from repro.core.types import Punctuation
from repro.reference import reference_results
from repro.windows import CountSlidingWindow, LastNEveryWindow, PunctuationWindow

HORIZON = 100_000


@st.composite
def inorder_streams(draw, max_size=50, max_gap=10):
    n = draw(st.integers(1, max_size))
    gaps = draw(st.lists(st.integers(0, max_gap), min_size=n, max_size=n))
    values = draw(st.lists(st.integers(-20, 20).map(float), min_size=n, max_size=n))
    ts = 0
    records = []
    for gap, value in zip(gaps, values):
        ts += gap
        records.append(Record(ts, value))
    return records


@given(
    records=inorder_streams(),
    punct_gaps=st.lists(st.integers(1, 40), min_size=1, max_size=8),
)
@settings(max_examples=50, deadline=None)
def test_punctuation_windows_inorder(records, punct_gaps):
    window = PunctuationWindow()
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(window, Sum())
    # Interleave punctuations at cumulative positions.
    elements = []
    punct_ts = []
    cumulative = 0
    for gap in punct_gaps:
        cumulative += gap
        punct_ts.append(cumulative)
    # Punctuations mark the boundary *before* equal-timestamp records,
    # so they sort ahead of records at the same timestamp (flag -1).
    merged = sorted(
        [(r.ts, 0, r) for r in records] + [(t, -1, Punctuation(t)) for t in punct_ts],
        key=lambda item: (item[0], item[1]),
    )
    elements = [item[2] for item in merged]
    final = final_values(operator, elements + [Watermark(HORIZON)])

    reference_window = PunctuationWindow()
    for ts in punct_ts:
        from repro.windows.base import WindowEdges

        reference_window.on_punctuation(WindowEdges(), Punctuation(ts))
    expected = reference_results(
        [(reference_window, Sum())], elements, horizon=HORIZON
    )
    assert final == expected


@given(
    records=inorder_streams(max_size=40),
    count=st.integers(1, 8),
    every=st.integers(2, 30),
)
@settings(max_examples=50, deadline=None)
def test_last_n_every_inorder(records, count, every):
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(LastNEveryWindow(count=count, every=every), Sum())
    final = final_values(operator, records + [Watermark(HORIZON)])
    expected = reference_results(
        [(LastNEveryWindow(count=count, every=every), Sum())],
        records,
        horizon=HORIZON,
    )
    assert final == expected


@given(
    records=inorder_streams(max_size=40),
    length=st.integers(2, 10),
    slide=st.integers(1, 6),
    seed=st.integers(0, 100),
    fraction=st.floats(0.0, 0.6),
)
@settings(max_examples=50, deadline=None)
def test_count_sliding_with_disorder(records, length, slide, seed, fraction):
    from conftest import shuffled_with_disorder

    disordered = shuffled_with_disorder(records, fraction, 15, seed=seed)
    operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=HORIZON)
    operator.add_query(CountSlidingWindow(length, slide), Sum())
    final = final_values(operator, disordered + [Watermark(HORIZON)])
    # Equal-timestamp ties order by *arrival*, so the oracle must see the
    # operator's arrival order, not the pre-disorder order.
    expected = reference_results(
        [(CountSlidingWindow(length, slide), Sum())], disordered, horizon=HORIZON
    )
    assert final == expected


@given(
    records=inorder_streams(max_size=30),
    count=st.integers(1, 5),
    every=st.integers(3, 20),
    seed=st.integers(0, 50),
)
@settings(max_examples=40, deadline=None)
def test_last_n_every_with_disorder(records, count, every, seed):
    from conftest import shuffled_with_disorder

    disordered = shuffled_with_disorder(records, 0.3, 10, seed=seed)
    operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=HORIZON)
    operator.add_query(LastNEveryWindow(count=count, every=every), Sum())
    final = final_values(operator, disordered + [Watermark(HORIZON)])
    expected = reference_results(
        [(LastNEveryWindow(count=count, every=every), Sum())],
        disordered,  # ties order by arrival at the operator
        horizon=HORIZON,
    )
    assert final == expected
