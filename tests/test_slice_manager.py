"""Tests for the slice manager (Step 2): merge / split / update logic."""

import pytest

from repro.aggregations import M4, Min, Sum
from repro.core.aggregate_store import EagerAggregateStore, LazyAggregateStore
from repro.core.slice_ import Slice
from repro.core.slice_manager import Modification, SliceManager
from repro.core.types import Record


def build_store(boundaries, fn=None, store_records=False, counts=None, cls=LazyAggregateStore):
    """Store with slices between consecutive boundaries."""
    fn = fn if fn is not None else Sum()
    store = cls([fn])
    for index in range(len(boundaries) - 1):
        slice_ = Slice(boundaries[index], boundaries[index + 1], 1, store_records=store_records)
        if counts is not None:
            slice_.count_start = counts[index]
            slice_.count_end = counts[index + 1]
        store.append_slice(slice_)
    return store


class TestAddInorder:
    def test_updates_head(self):
        store = build_store([0, 10])
        store.slices[-1].end = None
        manager = SliceManager(store)
        manager.add_inorder(Record(5, 2.0), store.head)
        assert store.head.aggs[0] == 2.0


class TestOutOfOrderRouting:
    def test_routes_to_covering_slice(self):
        store = build_store([0, 10, 20, 30])
        manager = SliceManager(store)
        manager.add_out_of_order(Record(15, 3.0))
        assert store.slices[1].aggs[0] == 3.0
        assert store.slices[0].is_empty()

    def test_modification_callback_invoked(self):
        events = []
        store = build_store([0, 10])
        manager = SliceManager(store, on_modified=events.append)
        manager.add_out_of_order(Record(5, 1.0))
        assert len(events) == 1
        assert events[0].ts == 5

    def test_gap_slice_created(self):
        store = build_store([0, 10])
        late = Slice(30, 40, 1, store_records=False)
        store.append_slice(late)
        manager = SliceManager(store)
        manager.add_out_of_order(Record(15, 5.0))
        assert [s.start for s in store] == [0, 10, 30]
        gap = store.slices[1]
        assert gap.start == 10 and gap.end == 30
        assert gap.aggs[0] == 5.0

    def test_gap_slice_respects_window_edges(self):
        store = build_store([0, 10])
        late = Slice(40, 50, 1, store_records=False)
        store.append_slice(late)
        manager = SliceManager(
            store,
            floor_time_edge=lambda ts: (ts // 10) * 10,
            ceil_time_edge=lambda ts: (ts // 10 + 1) * 10,
        )
        manager.add_out_of_order(Record(25, 5.0))
        gap = store.slices[1]
        assert (gap.start, gap.end) == (20, 30)

    def test_noncommutative_recompute_on_insert(self):
        fn = M4()
        store = build_store([0, 100], fn=fn, store_records=True)
        manager = SliceManager(store, store_records=True)
        store.slices[0].add_inorder(Record(50, 5.0), [fn])
        manager.add_out_of_order(Record(10, 1.0))
        assert fn.lower(store.slices[0].aggs[0]) == (1.0, 5.0, 1.0, 5.0)


class TestSessionPlacement:
    def _manager(self, store, gap=5, edge_region=None):
        return SliceManager(
            store,
            session_gap=gap,
            edge_in_region=edge_region if edge_region else (lambda lo, hi: False),
        )

    def test_within_activity_joins_session(self):
        fn = Sum()
        store = build_store([0, 100], fn=fn)
        store.slices[0].add_inorder(Record(10, 1.0), [fn])
        store.slices[0].add_inorder(Record(20, 1.0), [fn])
        manager = self._manager(store)
        manager.add_out_of_order(Record(15, 1.0))
        assert len(store) == 1
        assert store.slices[0].aggs[0] == 3.0

    def test_new_session_after_existing_records_splits(self):
        fn = Sum()
        store = build_store([0, 100], fn=fn)
        store.slices[0].add_inorder(Record(10, 1.0), [fn])
        manager = self._manager(store, gap=5)
        manager.add_out_of_order(Record(50, 2.0))
        assert len(store) == 2
        left, right = store.slices
        assert left.end == 15  # split at last_ts + gap
        assert left.aggs[0] == 1.0
        assert right.aggs[0] == 2.0

    def test_new_session_before_existing_records_splits(self):
        fn = Sum()
        store = build_store([0, 100], fn=fn)
        store.slices[0].add_inorder(Record(80, 1.0), [fn])
        manager = self._manager(store, gap=5)
        manager.add_out_of_order(Record(10, 2.0))
        assert len(store) == 2
        left, right = store.slices
        assert left.end == 15  # split at record.ts + gap
        assert left.aggs[0] == 2.0
        assert right.aggs[0] == 1.0

    def test_extension_within_gap_no_split(self):
        fn = Sum()
        store = build_store([0, 100], fn=fn)
        store.slices[0].add_inorder(Record(10, 1.0), [fn])
        manager = self._manager(store, gap=5)
        manager.add_out_of_order(Record(13, 2.0))
        assert len(store) == 1
        assert store.slices[0].aggs[0] == 3.0

    def test_bridging_merges_adjacent_session_slices(self):
        fn = Sum()
        store = build_store([0, 15, 100], fn=fn)
        store.slices[0].add_inorder(Record(10, 1.0), [fn])
        store.slices[1].add_inorder(Record(18, 1.0), [fn])
        manager = self._manager(store, gap=5)
        # A record at 14 closes both gaps (14-10 < 5 and 18-14 < 5), so the
        # droppable boundary at 15 disappears.
        manager.add_out_of_order(Record(14, 1.0))
        assert len(store) == 1
        assert store.slices[0].aggs[0] == 3.0

    def test_bridge_respects_needed_edges(self):
        fn = Sum()
        store = build_store([0, 15, 100], fn=fn)
        store.slices[0].add_inorder(Record(14, 1.0), [fn])
        store.slices[1].add_inorder(Record(16, 1.0), [fn])
        manager = self._manager(
            store, gap=5, edge_region=lambda lo, hi: lo <= 15 <= hi
        )
        manager.add_out_of_order(Record(15, 1.0))
        assert len(store) == 2  # boundary kept: another window needs it


class TestSplitTime:
    def test_split_with_records(self):
        fn = Sum()
        store = build_store([0, 100], fn=fn, store_records=True)
        for ts in (10, 20, 30, 40):
            store.slices[0].add_inorder(Record(ts, 1.0), [fn])
        manager = SliceManager(store, store_records=True)
        assert manager.split_time(25)
        assert [s.start for s in store] == [0, 25]
        assert store.slices[0].aggs[0] == 2.0
        assert store.slices[1].aggs[0] == 2.0

    def test_split_at_existing_boundary_is_noop(self):
        store = build_store([0, 10, 20])
        manager = SliceManager(store)
        assert not manager.split_time(10)
        assert len(store) == 2

    def test_split_in_gap_is_noop(self):
        store = build_store([0, 10])
        late = Slice(30, 40, 1, store_records=False)
        store.append_slice(late)
        manager = SliceManager(store)
        assert not manager.split_time(20)

    def test_split_record_free_point_without_records(self):
        fn = Sum()
        store = build_store([0, 100], fn=fn, store_records=False)
        store.slices[0].add_inorder(Record(80, 8.0), [fn])
        manager = SliceManager(store)
        assert manager.split_time(50)
        left, right = store.slices
        assert left.is_empty()
        assert right.aggs[0] == 8.0


class TestCountCascade:
    def _count_workload(self, fn=None, slice_count=3, per_slice=2):
        fn = fn if fn is not None else Sum()
        store = LazyAggregateStore([fn])
        for index in range(slice_count):
            end = (index + 1) * 10 if index < slice_count - 1 else None
            slice_ = Slice(index * 10, end, 1, store_records=True)
            slice_.count_start = index * per_slice
            slice_.count_end = None if end is None else (index + 1) * per_slice
            if end is not None:
                slice_.end_kind = Slice.END_COUNT
            for position in range(per_slice):
                ts = index * 10 + position * 2
                slice_.add_inorder(Record(ts, float(ts)), [fn])
            store.append_slice(slice_)
        manager = SliceManager(store, store_records=True, track_counts=True)
        return store, manager, fn

    def test_insert_shifts_records_across_count_edges(self):
        store, manager, fn = self._count_workload()
        # Records: slice0 ts 0,2; slice1 ts 10,12; slice2 (open) ts 20,22.
        manager.add_out_of_order(Record(1, 1.0))
        s0, s1, s2 = store.slices
        assert [r.ts for r in s0.records] == [0, 1]
        assert [r.ts for r in s1.records] == [2, 10]
        assert [r.ts for r in s2.records] == [12, 20, 22]
        assert s0.aggs[0] == 0.0 + 1.0
        assert s1.aggs[0] == 2.0 + 10.0
        assert s2.aggs[0] == 12.0 + 20.0 + 22.0

    def test_count_boundaries_stay_fixed(self):
        store, manager, _ = self._count_workload()
        manager.add_out_of_order(Record(1, 1.0))
        assert (store.slices[0].count_start, store.slices[0].count_end) == (0, 2)
        assert (store.slices[1].count_start, store.slices[1].count_end) == (2, 4)

    def test_insert_into_open_head_no_shift(self):
        store, manager, _ = self._count_workload()
        manager.add_out_of_order(Record(21, 21.0))
        assert [r.ts for r in store.slices[0].records] == [0, 2]
        assert [r.ts for r in store.slices[2].records] == [20, 21, 22]

    def test_modification_reports_count_position(self):
        store, manager, _ = self._count_workload()
        modification = manager.add_out_of_order(Record(5, 5.0))
        # Records 0, 2 precede ts=5: zero-based position 2.
        assert modification.count_position == 2

    def test_noninvertible_shift_recomputes_correctly(self):
        store, manager, fn = self._count_workload(fn=Min())
        manager.add_out_of_order(Record(1, 1.0))
        # slice1 now holds ts 2 (value 2.0) and ts 10 (10.0): min is 2.0.
        assert store.slices[1].aggs[0] == 2.0


class TestEnsureCountBoundary:
    def test_splits_closed_slice_at_count(self):
        fn = Sum()
        store = LazyAggregateStore([fn])
        slice_ = Slice(0, 100, 1, store_records=True)
        slice_.count_start = 0
        slice_.count_end = 4
        for position in range(4):
            slice_.add_inorder(Record(position * 10, float(position)), [fn])
        store.append_slice(slice_)
        manager = SliceManager(store, store_records=True, track_counts=True)
        assert manager.ensure_count_boundary(2)
        assert len(store) == 2
        assert store.slices[0].record_count == 2
        assert store.slices[1].count_start == 2

    def test_existing_boundary_noop(self):
        fn = Sum()
        store = LazyAggregateStore([fn])
        slice_ = Slice(0, 100, 1, store_records=True)
        slice_.count_start = 0
        store.append_slice(slice_)
        manager = SliceManager(store, track_counts=True)
        assert not manager.ensure_count_boundary(0)


class TestEagerStoreIntegration:
    def test_ooo_update_refreshes_tree(self):
        fn = Sum()
        store = build_store([0, 10, 20, 30], fn=fn, cls=EagerAggregateStore)
        manager = SliceManager(store)
        manager.add_out_of_order(Record(15, 7.0))
        assert store.query_slices(0, 3, 0) == 7.0


class TestMergeBoundary:
    def test_merges_adjacent_slices(self):
        fn = Sum()
        store = build_store([0, 10, 20], fn=fn)
        store.slices[0].add_inorder(Record(5, 1.0), [fn])
        store.slices[1].add_inorder(Record(15, 2.0), [fn])
        manager = SliceManager(store)
        assert manager.merge_boundary(10)
        assert len(store) == 1
        assert store.slices[0].aggs[0] == 3.0
        assert (store.slices[0].start, store.slices[0].end) == (0, 20)

    def test_refuses_needed_edge(self):
        store = build_store([0, 10, 20])
        manager = SliceManager(store, edge_in_region=lambda lo, hi: lo <= 10 <= hi)
        assert not manager.merge_boundary(10)
        assert len(store) == 2

    def test_refuses_count_pinned_boundary(self):
        store = build_store([0, 10, 20])
        store.slices[0].end_kind = Slice.END_COUNT
        manager = SliceManager(store)
        assert not manager.merge_boundary(10)

    def test_missing_boundary_is_noop(self):
        store = build_store([0, 10, 20])
        manager = SliceManager(store)
        assert not manager.merge_boundary(5)
        assert not manager.merge_boundary(20)


class TestEmitEmptyOperatorLevel:
    def test_operator_emits_empty_windows_when_enabled(self):
        from repro import GeneralSlicingOperator
        from repro.windows import TumblingWindow
        from repro.aggregations import Count

        operator = GeneralSlicingOperator(stream_in_order=True, emit_empty=True)
        operator.add_query(TumblingWindow(10), Count())
        results = operator.run([Record(5, 1.0), Record(35, 1.0)])
        spans = {(r.start, r.end): r.value for r in results}
        assert spans[(0, 10)] == 1
        assert spans[(10, 20)] == 0
        assert spans[(20, 30)] == 0
