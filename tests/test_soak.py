"""Soak tests: long streams, structural invariants, bounded state.

These complement the oracle-based tests: instead of verifying every
output value (too slow at this scale), they run large mixed workloads
and assert the invariants that keep the operator healthy over time --
bounded state under eviction, slice-chain well-formedness, conservation
of records, and output sanity.
"""

import os
import random

import pytest

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Average, Max, Median, Sum
from repro.core.measures import MeasureKind
from repro.runtime import (
    CollectSink,
    FaultInjectingOperator,
    FaultPlan,
    RestartPolicy,
    SupervisedPipeline,
)
from repro.windows import (
    CountTumblingWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)

pytestmark = pytest.mark.slow

#: All soak workloads derive their RNG streams from this seed so a
#: failing run is reproducible from the reported environment alone.
#: Override with ``REPRO_SOAK_SEED`` to explore other schedules.
SOAK_SEED = int(os.environ.get("REPRO_SOAK_SEED", "17"))


def check_chain_invariants(operator):
    """Slices ordered, non-overlapping; metadata consistent."""
    for chain in operator._chains.values():
        slices = chain.store.slices
        for left, right in zip(slices, slices[1:]):
            assert left.end is not None, "only the head may be open"
            assert left.start < left.end <= right.start
        for slice_ in slices:
            if slice_.record_count == 0:
                assert slice_.first_ts is None and slice_.last_ts is None
            else:
                assert slice_.first_ts is not None and slice_.last_ts is not None
                assert slice_.first_ts <= slice_.last_ts
                if slice_.records is not None:
                    assert len(slice_.records) == slice_.record_count
                    timestamps = [record.ts for record in slice_.records]
                    assert timestamps == sorted(timestamps)


class TestLongRunningMixedWorkload:
    def test_100k_records_with_disorder_and_eviction(self):
        rng = random.Random(SOAK_SEED)
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=500)
        operator.add_query(TumblingWindow(100), Sum())
        operator.add_query(SlidingWindow(300, 100), Max())
        operator.add_query(SessionWindow(40), Average())

        emitted = 0
        updates = 0
        pending = []
        max_ts = 0
        ts = 0
        for step in range(100_000):
            # Mostly dense traffic with periodic quiet spells so sessions
            # close (an endless session legitimately pins eviction).
            ts += 1 if step % 400 else 80
            if rng.random() < 0.15:
                pending.append(Record(ts, float(ts % 13)))
            else:
                for result in operator.process(Record(ts, float(ts % 13))):
                    emitted += 1
                    updates += result.is_update
            if pending and rng.random() < 0.2:
                record = pending.pop(rng.randrange(len(pending)))
                for result in operator.process(record):
                    emitted += 1
                    updates += result.is_update
            max_ts = ts
            if step % 500 == 499:
                for result in operator.process(Watermark(max_ts - 300)):
                    emitted += 1
            if step % 20_000 == 19_999:
                check_chain_invariants(operator)

        # Eviction must have kept the slice chain bounded: with a 100-unit
        # tumbling grid and ~1100 units of retention, a few dozen slices.
        assert operator.total_slices() < 200
        assert emitted > 900  # ~1000 tumbling windows alone
        check_chain_invariants(operator)

    def test_count_chain_soak(self):
        rng = random.Random(SOAK_SEED + 6)
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=2_000)
        operator.add_query(CountTumblingWindow(500), Sum())

        pending = []
        emitted_values = []
        for step in range(40_000):
            record = Record(step, 1.0)
            if rng.random() < 0.1:
                pending.append(record)
            else:
                emitted_values.extend(
                    r.value for r in operator.process(record) if not r.is_update
                )
            if pending and rng.random() < 0.15:
                operator.process(pending.pop(0))
            if step % 1_000 == 999:
                emitted_values.extend(
                    r.value
                    for r in operator.process(Watermark(step - 1_000))
                    if not r.is_update
                )
        # Every completed count window of 500 records sums to exactly 500.
        assert emitted_values
        assert set(emitted_values) == {500.0}

    def test_median_workload_memory_stays_bounded(self):
        from repro.runtime import deep_sizeof

        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=200)
        operator.add_query(TumblingWindow(100), Median())
        checkpoints = []
        for ts in range(30_000):
            operator.process(Record(ts, float(ts % 50)))
            if ts % 200 == 199:
                operator.process(Watermark(ts - 100))
            if ts in (9_999, 19_999, 29_999):
                checkpoints.append(
                    sum(deep_sizeof(obj) for obj in operator.state_objects())
                )
        # State footprint is steady, not growing with stream length.
        assert checkpoints[2] < checkpoints[0] * 2


class TestRecordConservation:
    @pytest.mark.parametrize("offset", range(3))
    def test_all_records_attributed_before_eviction(self, offset):
        rng = random.Random(SOAK_SEED + 100 + offset)
        operator = GeneralSlicingOperator(
            stream_in_order=False, allowed_lateness=10**9
        )
        operator.add_query(TumblingWindow(50), Sum())
        operator.add_query(SessionWindow(10), Sum())
        count = 0
        for _ in range(5_000):
            ts = rng.randrange(0, 10_000)
            operator.process(Record(ts, 1.0))
            count += 1
        chain = operator._chains[MeasureKind.TIME]
        assert sum(s.record_count for s in chain.store.slices) == count
        check_chain_invariants(operator)
        # Total mass equals the record count when everything is flushed.
        final = {}
        for result in operator.process(Watermark(10**9)):
            final[(result.query_id, result.start, result.end)] = result.value
        tumbling_total = sum(
            value for (qid, _, _), value in final.items() if qid == 0
        )
        assert tumbling_total == count


class TestCrashRecoverResumeSoak:
    """A long supervised run through repeated crash/recover/resume
    cycles must end bit-identical to an uninterrupted run, with a
    healthy slice chain."""

    def _stream(self, n_records):
        rng = random.Random(SOAK_SEED + 200)
        pending = []
        elements = []
        ts = 0
        high = 0
        emitted = 0
        while emitted < n_records:
            ts += 1 if emitted % 400 else 60
            record = Record(ts, float(ts % 13))
            if rng.random() < 0.15:
                pending.append(record)
            else:
                elements.append(record)
                emitted += 1
                high = max(high, record.ts)
            if pending and rng.random() < 0.2:
                late = pending.pop(rng.randrange(len(pending)))
                elements.append(late)
                emitted += 1
                high = max(high, late.ts)
            if emitted and emitted % 500 == 0:
                elements.append(Watermark(high - 300))
        elements.append(Watermark(high + 10_000))
        return elements

    def _factory(self):
        operator = GeneralSlicingOperator(
            stream_in_order=False, allowed_lateness=500
        )
        operator.add_query(TumblingWindow(100), Sum())
        operator.add_query(SlidingWindow(300, 100), Max())
        operator.add_query(SessionWindow(40), Average())
        return operator

    def test_soak_crash_recover_resume(self):
        n_records = 30_000
        elements = self._stream(n_records)

        expected_sink = CollectSink()
        uninterrupted = self._factory()
        for element in elements:
            for result in uninterrupted.process(element):
                expected_sink.emit(result)

        plan = FaultPlan(SOAK_SEED + 201, n_records, crashes=5, errors=2)
        wrapped = FaultInjectingOperator(self._factory(), plan=plan)
        sink = CollectSink()
        pipeline = SupervisedPipeline(
            wrapped,
            sink,
            checkpoint_every=2_500,
            batch_size=32,
            restart_policy=RestartPolicy(max_restarts=10),
            sleep=lambda _seconds: None,
        )
        stats = pipeline.run(elements)

        assert stats.restarts == 7
        assert stats.checkpoints_taken >= n_records // 2_500
        assert sink.results == expected_sink.results
        # The recovered operator is structurally healthy, not merely
        # producing the right output.
        check_chain_invariants(wrapped.inner)
        assert wrapped.inner.total_slices() < 200
