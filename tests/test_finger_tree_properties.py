"""Finger-tree kernel property suite: disorder-shaped ops vs a list oracle.

The generic kernel suite (``tests/test_kernel_properties.py``) already
drives every kernel through uniform random op mixes; this suite aims the
:class:`~repro.core.kernels.FingerTreeKernel` at the traffic shapes it
was built for and that the uniform mix under-samples:

* **in-order runs / out-of-order bursts** -- stretches of tail appends
  interleaved with positional inserts clustered near a random locus,
  the arrival pattern a late-record burst produces;
* **bulk evictions** -- whole-prefix ``remove_front`` calls up to the
  full structure size, including the evict-everything edge;
* **snapshot/restore mid-sequence** -- the kernel is pickled and
  replaced by its clone *between* ops, so every subsequent divergence
  would convict the checkpoint path (RSLC snapshots pickle kernels
  in-place).

Reproducibility follows the house pattern: the base seed comes from
``REPRO_FINGER_SEED`` (default pinned), every case derives a child seed,
failures are greedily shrunk to a minimal op list and printed in a
pasteable form.  ``REPRO_FUZZ_SCALE`` multiplies the case count for the
``fuzz-long`` CI job.

Every aggregation in the default registry that is legal on the kernel
(associative -- the only gate ``make_kernel`` enforces) is exercised;
comparisons lower partials and use the suite-standard 1e-9 tolerance.
"""

from __future__ import annotations

import math
import os
import pickle
import random
from typing import Any, List, Optional, Tuple

import pytest

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum, default_registry
from repro.aggregations.base import AggregateFunction
from repro.core.kernels import FingerTreeKernel, KernelKind, make_kernel
from repro.runtime.checkpoint import restore, snapshot
from repro.runtime.disorder import inject_disorder, with_watermarks
from repro.windows import SessionWindow, SlidingWindow

pytestmark = [pytest.mark.fuzz, pytest.mark.ooo]

BASE_SEED = int(os.environ.get("REPRO_FINGER_SEED", "20230607"))

#: Iteration multiplier for long fuzz campaigns (``fuzz-long`` CI job).
FUZZ_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))

SEEDS = range(3 * FUZZ_SCALE)
OPS_PER_CASE = 150

#: Op kinds with draw weights.  ``run`` is an in-order append stretch,
#: ``burst`` a cluster of positional inserts around one locus,
#: ``evict`` a whole-prefix bulk eviction, ``pickle`` a mid-sequence
#: snapshot/restore swap.
OP_KINDS = (
    ("run", 4),
    ("burst", 3),
    ("insert", 2),
    ("update", 2),
    ("remove", 1),
    ("evict", 3),
    ("query", 3),
    ("pickle", 1),
)
_WEIGHTED = [kind for kind, weight in OP_KINDS for _ in range(weight)]

Op = Tuple[str, int, int, int]  # (kind, raw_a, raw_b, raw_value)


def _child_seed(fn_name: str, index: int) -> int:
    return random.Random(f"{BASE_SEED}:{fn_name}:{index}").randrange(2**63)


def _cases():
    for fn_name, fn in default_registry().items():
        if not fn.associative:
            continue
        for seed_index in SEEDS:
            yield pytest.param(fn_name, seed_index, id=f"{fn_name}-s{seed_index}")


# ----------------------------------------------------------------------
# oracle and comparison (same conventions as test_kernel_properties)


def _lift_value(function: AggregateFunction, fn_name: str, raw: int) -> Any:
    value = float(raw % 50 + 1)  # strictly positive: geomean-safe
    if fn_name in ("argmin", "argmax"):
        return function.lift((value, f"t{raw % 7}"))
    return function.lift(value)


def _oracle_fold(function: AggregateFunction, leaves: List[Any], lo: int, hi: int) -> Any:
    partial = None
    for leaf in leaves[lo:hi]:
        if leaf is None:
            continue
        partial = leaf if partial is None else function.combine(partial, leaf)
    return partial


def _approx_equal(left: Any, right: Any) -> bool:
    if isinstance(left, float) and isinstance(right, float):
        return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(left, (tuple, list)) and isinstance(right, (tuple, list)):
        return len(left) == len(right) and all(
            _approx_equal(a, b) for a, b in zip(left, right)
        )
    return left == right


def _lowered(function: AggregateFunction, partial: Any) -> Any:
    return function.lower_or_default(partial)


def _check_structure(kernel: FingerTreeKernel) -> Optional[str]:
    """Walk the tree checking the counted-B-tree bookkeeping invariants."""
    stack = [kernel._root]
    while stack:
        node = stack.pop()
        if node.leaf:
            if node.size != len(node.items):
                return f"leaf size {node.size} != {len(node.items)} items"
            continue
        if not node.items:
            return "empty inner node left in the tree"
        if len(node.items) != len(node.sizes):
            return f"inner node has {len(node.items)} children, {len(node.sizes)} sizes"
        for child, recorded in zip(node.items, node.sizes):
            if child.size != recorded:
                return f"stale child size: recorded {recorded}, actual {child.size}"
        if node.size != sum(node.sizes):
            return f"inner size {node.size} != sum of children {sum(node.sizes)}"
        stack.extend(node.items)
    return None


# ----------------------------------------------------------------------
# op generation and application


def _generate_ops(rng: random.Random) -> List[Op]:
    return [
        (
            rng.choice(_WEIGHTED),
            rng.randrange(2**30),
            rng.randrange(2**30),
            rng.randrange(2**30),
        )
        for _ in range(OPS_PER_CASE)
    ]


def _apply_ops(
    function: AggregateFunction, fn_name: str, ops: List[Op]
) -> Optional[str]:
    """Run ``ops`` against the finger tree and the oracle; return a
    mismatch description, or None.  Raw op arguments are resolved
    against the current size, so shrinking never invalidates later ops.
    """
    kernel = make_kernel(KernelKind.FINGER_TREE, function)
    oracle: List[Any] = []
    for step, (op, raw_a, raw_b, raw_value) in enumerate(ops):
        size = len(oracle)
        partial = None if raw_value % 10 == 0 else _lift_value(function, fn_name, raw_value)
        if op == "run":
            # In-order stretch: tail appends, the slicer's steady state.
            for offset in range(raw_b % 8 + 1):
                value = (
                    None
                    if (raw_value + offset) % 10 == 0
                    else _lift_value(function, fn_name, raw_value + offset)
                )
                kernel.append(value)
                oracle.append(value)
        elif op == "burst":
            # Late-record burst: inserts clustered around one locus.
            locus = raw_a % (size + 1)
            for offset in range(raw_b % 5 + 1):
                index = min(locus + offset, len(oracle))
                value = (
                    None
                    if (raw_value + offset) % 10 == 0
                    else _lift_value(function, fn_name, raw_value + offset)
                )
                kernel.insert(index, value)
                oracle.insert(index, value)
        elif op == "insert":
            index = raw_a % (size + 1)
            kernel.insert(index, partial)
            oracle.insert(index, partial)
        elif op == "update":
            if size == 0:
                continue
            index = raw_a % size
            kernel.update(index, partial)
            oracle[index] = partial
        elif op == "remove":
            if size == 0:
                continue
            index = raw_a % size
            removed = kernel.remove(index)
            expected_removed = oracle.pop(index)
            if not _approx_equal(
                _lowered(function, removed), _lowered(function, expected_removed)
            ):
                return f"step {step}: remove({index}) returned a wrong leaf"
        elif op == "evict":
            if size == 0:
                continue
            # Whole-prefix bulk eviction, up to evict-everything.
            count = raw_a % size + 1
            kernel.remove_front(count)
            del oracle[:count]
        elif op == "query":
            if size == 0:
                continue
            a, b = raw_a % (size + 1), raw_b % (size + 1)
            lo, hi = min(a, b), max(a, b)
            got = _lowered(function, kernel.query(lo, hi))
            want = _lowered(function, _oracle_fold(function, oracle, lo, hi))
            if not _approx_equal(got, want):
                return f"step {step}: query({lo}, {hi}) = {got!r}, oracle {want!r}"
        elif op == "pickle":
            # Mid-sequence snapshot/restore: the clone replaces the
            # original, so the rest of the ops run on restored state.
            kernel = pickle.loads(pickle.dumps(kernel))
        if len(kernel) != len(oracle):
            return f"step {step}: after {op}, size {len(kernel)} != oracle {len(oracle)}"
        structural = _check_structure(kernel)
        if structural is not None:
            return f"step {step}: after {op}, {structural}"
        got_root = _lowered(function, kernel.root())
        want_root = _lowered(function, _oracle_fold(function, oracle, 0, len(oracle)))
        if not _approx_equal(got_root, want_root):
            return f"step {step}: after {op}, root {got_root!r}, oracle {want_root!r}"
    got_leaves = [_lowered(function, leaf) for leaf in kernel.leaves()]
    want_leaves = [_lowered(function, leaf) for leaf in oracle]
    if not _approx_equal(got_leaves, want_leaves):
        return f"final leaves {got_leaves!r} != oracle {want_leaves!r}"
    return None


def _shrink_ops(
    function: AggregateFunction, fn_name: str, ops: List[Op]
) -> List[Op]:
    """Greedy delta-debugging: drop one op at a time while still failing."""
    current = list(ops)
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + 1 :]
            if candidate and _apply_ops(function, fn_name, candidate) is not None:
                current = candidate
                changed = True
            else:
                index += 1
    return current


# ----------------------------------------------------------------------
# the property cases


@pytest.mark.parametrize("fn_name,seed_index", _cases())
def test_finger_tree_matches_list_oracle(fn_name, seed_index):
    function = default_registry()[fn_name]
    seed = _child_seed(fn_name, seed_index)
    ops = _generate_ops(random.Random(seed))
    failure = _apply_ops(function, fn_name, ops)
    if failure is None:
        return
    minimal = _shrink_ops(function, fn_name, ops)
    final_failure = _apply_ops(function, fn_name, minimal)
    ops_repr = ", ".join(repr(op) for op in minimal)
    pytest.fail(
        f"finger tree diverges from the list oracle for {fn_name!r} "
        f"(seed {seed}, set REPRO_FINGER_SEED to reproduce)\n"
        f"failure: {final_failure}\n"
        f"minimal op sequence ({len(minimal)} of {len(ops)} ops):\n  [{ops_repr}]"
    )


# ----------------------------------------------------------------------
# targeted edges the random mix cannot guarantee


def test_finger_tree_rejects_non_associative():
    class Glue(AggregateFunction):
        name = "glue"
        associative = False

        def lift(self, value):
            return str(value)

        def combine(self, a, b):  # pragma: no cover - never reached
            return a + b

        def lower(self, partial):  # pragma: no cover - never reached
            return partial

    with pytest.raises(ValueError, match="associative"):
        make_kernel(KernelKind.FINGER_TREE, Glue())


def test_finger_tree_deep_tree_bulk_evicts_to_empty():
    """Grow past several levels, then evict everything in one call."""
    kernel = FingerTreeKernel(lambda a, b: a + b)
    total = FingerTreeKernel._LEAF_MAX * FingerTreeKernel._NODE_MAX * 4
    kernel.extend(range(total))
    assert kernel.height >= 3
    assert kernel.root() == sum(range(total))
    kernel.remove_front(total)
    assert len(kernel) == 0
    assert kernel.root() is None
    kernel.append(7)  # still usable after the wipe
    assert kernel.root() == 7


def test_finger_tree_bulk_evict_prefix_keeps_suffix_exact():
    kernel = FingerTreeKernel(lambda a, b: a + b)
    values = list(range(500))
    kernel.extend(values)
    kernel.remove_front(333)
    assert kernel.leaves() == values[333:]
    assert kernel.root() == sum(values[333:])


def test_finger_tree_counters_fire():
    from repro.core.tracing import Tracer

    tracer = Tracer()
    kernel = FingerTreeKernel(lambda a, b: a + b)
    kernel.tracer = tracer
    kernel.extend(range(100))
    kernel.insert(10, 5)  # mid-tree: out-of-order
    kernel.append(1)  # tail: in-order, not counted
    kernel.query(0, 50)
    kernel.remove_front(30)
    counters = tracer.counters
    assert counters["finger_tree.ooo_inserts"] == 1
    assert counters["finger_tree.bulk_evictions"] == 1
    assert counters["finger_tree.queries"] == 1
    assert counters["finger_tree.spine_repairs"] >= 1


def test_finger_tree_index_errors():
    kernel = FingerTreeKernel(lambda a, b: a + b)
    kernel.extend(range(10))
    with pytest.raises(IndexError):
        kernel.leaf(10)
    with pytest.raises(IndexError):
        kernel.update(-1, 0)
    with pytest.raises(IndexError):
        kernel.insert(12, 0)
    with pytest.raises(IndexError):
        kernel.remove(10)
    with pytest.raises(IndexError):
        kernel.remove_front(11)
    with pytest.raises(IndexError):
        kernel.query(0, 11)
    kernel.remove_front(0)  # zero-evict is a no-op, not an error
    assert len(kernel) == 10


# ----------------------------------------------------------------------
# operator-level: RSLC snapshot/restore mid-way through a disordered stream


def test_finger_kernel_survives_snapshot_restore_out_of_order():
    """Snapshot an out-of-order eager operator mid-stream, restore, and
    continue both: the finger trees inside must round-trip exactly
    (diverging state shows up as a differing update/result downstream).
    """
    SECOND = 1000
    base = [Record(i * 40, float(i % 23 - 11)) for i in range(1500)]
    elements = list(
        with_watermarks(
            inject_disorder(base, fraction=0.25, max_delay=2 * SECOND, seed=5),
            interval=SECOND,
            max_delay=2 * SECOND,
        )
    )

    operator = GeneralSlicingOperator(
        stream_in_order=False, eager=True, allowed_lateness=4 * SECOND
    )
    operator.add_query(SlidingWindow(8 * SECOND, SECOND), Sum())
    operator.add_query(SessionWindow(3 * SECOND), Sum())
    selected = [k.value for kinds in operator.kernel_selection.values() for k in kinds]
    assert selected and all(k == "finger_tree" for k in selected)

    midpoint = len(elements) // 2
    results = []
    for element in elements[:midpoint]:
        results.extend(operator.process(element))
    clone = restore(snapshot(operator))
    chain = clone._chains[next(iter(clone._chains))]
    assert all(type(k) is FingerTreeKernel for k in chain.store.kernels)

    tail_original, tail_clone = [], []
    for element in elements[midpoint:] + [Watermark(10**9)]:
        tail_original.extend(operator.process(element))
        tail_clone.extend(clone.process(element))
    assert tail_original == tail_clone
    assert len(tail_original) > 0
