"""Tests for supervised execution (repro.runtime.recovery).

Covers the sink/source behaviour the recovery loop guarantees:
duplicate re-emissions are deduplicated, the replay cursor lands
exactly on the snapshot boundary, watermarks are re-delivered after a
restore, source hiccups retry without restoring, and degradation
(late-record side channel, memory guard) stays exactly-once under
crashes.
"""

import pytest

from conftest import run_operator
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Median, Sum
from repro.runtime import (
    restore,
    snapshot,
    CollectSink,
    FaultInjectingOperator,
    FaultPlan,
    FaultySource,
    MemoryGuard,
    MemoryPressure,
    Pipeline,
    PipelineFailed,
    RecoveryStats,
    ReplayableSource,
    RestartPolicy,
    SourceHiccup,
    SupervisedPipeline,
)
from repro.windows import SessionWindow, TumblingWindow

NO_SLEEP = lambda _seconds: None  # noqa: E731 - keep tests instant


def build_operator(*, in_order=True, lateness=0):
    operator = GeneralSlicingOperator(
        stream_in_order=in_order, allowed_lateness=lateness
    )
    operator.add_query(TumblingWindow(5), Sum())
    return operator


def supervised(operator, **kwargs):
    sink = CollectSink()
    kwargs.setdefault("sleep", NO_SLEEP)
    return SupervisedPipeline(operator, sink, **kwargs), sink


class TestExactlyOnce:
    def test_crash_dedups_reemitted_results(self):
        stream = [Record(t, 1.0) for t in range(50)]
        expected = run_operator(build_operator(), stream)

        wrapped = FaultInjectingOperator(build_operator(), crash_at=[23])
        pipeline, sink = supervised(wrapped, checkpoint_every=10, batch_size=4)
        stats = pipeline.run(stream)

        assert sink.results == expected
        assert stats.restarts == 1
        assert stats.deduped_results > 0
        assert stats.results_emitted == len(expected)

    @pytest.mark.parametrize(
        "crash_at, expected_replayed",
        [(9, 9), (10, 0), (11, 1)],
        ids=["just-before-checkpoint", "exactly-at-checkpoint", "just-after-checkpoint"],
    )
    def test_replay_cursor_at_snapshot_boundary(self, crash_at, expected_replayed):
        """No off-by-one: a crash at record N replays exactly N - last_ckpt."""
        stream = [Record(t, 1.0) for t in range(35)]
        expected = run_operator(build_operator(), stream)

        wrapped = FaultInjectingOperator(build_operator(), crash_at=[crash_at])
        pipeline, sink = supervised(wrapped, checkpoint_every=10, batch_size=1)
        stats = pipeline.run(stream)

        assert stats.replayed_records == expected_replayed
        assert sink.results == expected
        # Sum conservation: every record counted exactly once.
        assert sum(r.value for r in sink.results) == sum(
            r.value for r in expected
        )

    def test_watermark_redelivered_after_restore(self):
        """A replay window spanning a watermark re-fires it; results dedup."""
        elements = []
        for t in range(40):
            elements.append(Record(t, 1.0))
            if t % 10 == 9:
                elements.append(Watermark(t))
        elements.append(Watermark(100))
        expected = run_operator(build_operator(in_order=False, lateness=100), elements)

        wrapped = FaultInjectingOperator(
            build_operator(in_order=False, lateness=100), crash_at=[25]
        )
        # checkpoint_every larger than the stream: the crash rewinds to
        # cursor 0 and replays both earlier watermarks.
        pipeline, sink = supervised(wrapped, checkpoint_every=1_000, batch_size=4)
        stats = pipeline.run(elements)

        assert sink.results == expected
        assert stats.restarts == 1
        # Watermark(9) finalized [0,5); Watermark(19) finalized [5,10)
        # and [10,15) -- all three re-fired during replay and were
        # suppressed.
        assert stats.deduped_results == 3

    def test_multiple_crashes_still_exactly_once(self):
        stream = [Record(t, float(t % 7)) for t in range(200)]
        expected = run_operator(build_operator(), stream)

        wrapped = FaultInjectingOperator(
            build_operator(), plan=FaultPlan(13, 200, crashes=3, errors=2)
        )
        pipeline, sink = supervised(
            wrapped,
            checkpoint_every=25,
            batch_size=8,
            restart_policy=RestartPolicy(max_restarts=10),
        )
        stats = pipeline.run(stream)

        assert sink.results == expected
        assert stats.restarts == 5

    def test_session_windows_survive_crash(self):
        operator_factory = lambda: _session_operator()  # noqa: E731
        stream = [Record(t, 1.0) for t in (0, 1, 2, 10, 11, 30, 31, 32, 50)]
        expected = run_operator(operator_factory(), stream)

        wrapped = FaultInjectingOperator(operator_factory(), crash_at=[5])
        pipeline, sink = supervised(wrapped, checkpoint_every=3, batch_size=2)
        pipeline.run(stream)
        assert sink.results == expected


def _session_operator():
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(SessionWindow(5), Sum())
    return operator


class TestSourceRecovery:
    def test_hiccups_retry_without_restore(self):
        stream = [Record(t, 1.0) for t in range(30)]
        expected = run_operator(build_operator(), stream)

        source = FaultySource(stream, hiccup_at=[5, 12])
        pipeline, sink = supervised(build_operator(), checkpoint_every=8, batch_size=4)
        stats = pipeline.run(source)

        assert sink.results == expected
        assert stats.source_retries == 2
        # Hiccups never touch operator state: no restore, no replay.
        assert stats.restarts == 0
        assert stats.replayed_records == 0

    def test_persistent_source_failure_exhausts_budget(self):
        class DeadSource(ReplayableSource):
            def read(self, cursor, count):
                raise SourceHiccup("disk on fire", cursor)

        pipeline, _sink = supervised(
            build_operator(), restart_policy=RestartPolicy(max_restarts=2)
        )
        with pytest.raises(PipelineFailed) as excinfo:
            pipeline.run(DeadSource([Record(0, 1.0)]))
        assert len(excinfo.value.failures) == 3
        assert all(isinstance(f, SourceHiccup) for f in excinfo.value.failures)

    def test_hiccup_counter_resets_after_successful_read(self):
        stream = [Record(t, 1.0) for t in range(20)]
        # 4 hiccups total but never more than one in a row: fine under a
        # budget of 2 consecutive retries.
        source = FaultySource(stream, hiccup_at=[2, 6, 10, 14])
        pipeline, sink = supervised(
            build_operator(),
            batch_size=2,
            restart_policy=RestartPolicy(max_restarts=2),
        )
        stats = pipeline.run(source)
        assert stats.source_retries == 4
        assert len(sink.results) == len(run_operator(build_operator(), stream))


class TestRestartBudget:
    def test_operator_failures_exhaust_budget(self):
        stream = [Record(t, 1.0) for t in range(20)]
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[1, 2, 3])
        pipeline, _sink = supervised(
            wrapped, restart_policy=RestartPolicy(max_restarts=2)
        )
        with pytest.raises(PipelineFailed) as excinfo:
            pipeline.run(stream)
        assert len(excinfo.value.failures) == 3
        assert pipeline.stats.restarts == 2

    def test_backoff_schedule(self):
        policy = RestartPolicy(
            max_restarts=5,
            backoff_seconds=0.5,
            backoff_factor=2.0,
            max_backoff_seconds=3.0,
        )
        assert [policy.delay(n) for n in range(5)] == [0.5, 1.0, 2.0, 3.0, 3.0]

    def test_zero_backoff_by_default(self):
        assert RestartPolicy().delay(3) == 0.0

    def test_sleep_called_with_backoff(self):
        naps = []
        stream = [Record(t, 1.0) for t in range(20)]
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[4, 9])
        pipeline = SupervisedPipeline(
            wrapped,
            CollectSink(),
            restart_policy=RestartPolicy(max_restarts=5, backoff_seconds=0.25),
            sleep=naps.append,
        )
        pipeline.run(stream)
        assert naps == [0.25, 0.5]

    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RestartPolicy(max_restarts=-1)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_seconds=-0.1)
        with pytest.raises(ValueError):
            RestartPolicy(backoff_factor=0.5)
        with pytest.raises(ValueError):
            RestartPolicy(jitter=1.5)
        with pytest.raises(ValueError):
            RestartPolicy(jitter=-0.1)


class TestJitteredBackoff:
    def _policy(self, **kwargs):
        kwargs.setdefault("max_restarts", 5)
        kwargs.setdefault("backoff_seconds", 0.5)
        kwargs.setdefault("backoff_factor", 2.0)
        kwargs.setdefault("max_backoff_seconds", 3.0)
        return RestartPolicy(**kwargs)

    def test_jitter_is_pure_given_seed(self):
        """delay() is a pure function of (seed, attempt, token): equal
        inputs give equal schedules across policy instances."""
        first = self._policy(jitter=0.5, seed=99)
        second = self._policy(jitter=0.5, seed=99)
        schedule = [first.delay(n, token=3) for n in range(5)]
        assert schedule == [second.delay(n, token=3) for n in range(5)]
        # Repeated calls on one instance do not consume shared RNG state.
        assert schedule == [first.delay(n, token=3) for n in range(5)]

    def test_jitter_stays_within_declared_stretch(self):
        policy = self._policy(jitter=0.5, seed=7)
        for attempt, base in enumerate([0.5, 1.0, 2.0, 3.0, 3.0]):
            delayed = policy.delay(attempt)
            assert base <= delayed <= base * 1.5

    def test_different_seeds_and_tokens_decorrelate(self):
        policy = self._policy(jitter=1.0, seed=1)
        other_seed = self._policy(jitter=1.0, seed=2)
        assert policy.delay(0) != other_seed.delay(0)
        # Shards restarting off one fault spread out by token.
        delays = {policy.delay(0, token=shard) for shard in range(8)}
        assert len(delays) == 8

    def test_zero_jitter_preserves_plain_schedule(self):
        plain = self._policy()
        assert [plain.delay(n) for n in range(5)] == [0.5, 1.0, 2.0, 3.0, 3.0]
        # Any token still yields the undisturbed base schedule.
        assert plain.delay(2, token=5) == 2.0


class TestLateRecordChannel:
    def _late_stream(self):
        elements = [Record(t, 1.0) for t in range(20)]
        elements.append(Watermark(19))
        # Far beyond allowed lateness of 5 once the watermark passed 19.
        elements.append(Record(2, 99.0))
        elements.append(Record(3, 99.0))
        elements.extend(Record(t, 1.0) for t in range(20, 30))
        elements.append(Watermark(100))
        return elements

    def test_late_records_reach_side_channel(self):
        elements = self._late_stream()
        late = []
        pipeline, _sink = supervised(
            build_operator(in_order=False, lateness=5),
            batch_size=4,
            late_record_sink=late,
        )
        stats = pipeline.run(elements)

        assert [(r.ts, r.value) for r in late] == [(2, 99.0), (3, 99.0)]
        assert stats.late_records == 2
        assert pipeline.operator.dropped_late_records == 2

    def test_late_channel_exactly_once_under_crash(self):
        elements = self._late_stream()
        late = []
        # Crash after the late records were consumed; with a huge
        # checkpoint interval the replay re-processes (and re-drops)
        # them, but the side channel must not hear about them twice.
        wrapped = FaultInjectingOperator(
            build_operator(in_order=False, lateness=5), crash_at=[26]
        )
        pipeline, sink = supervised(
            wrapped, checkpoint_every=1_000, batch_size=4, late_record_sink=late
        )
        stats = pipeline.run(elements)

        assert stats.restarts == 1
        assert [(r.ts, r.value) for r in late] == [(2, 99.0), (3, 99.0)]
        assert stats.late_records == 2
        expected = run_operator(
            build_operator(in_order=False, lateness=5), elements
        )
        assert sink.results == expected

    def test_late_sink_accepts_callable(self):
        seen = []
        pipeline, _sink = supervised(
            build_operator(in_order=False, lateness=5),
            batch_size=4,
            late_record_sink=lambda record: seen.append(record.ts),
        )
        pipeline.run(self._late_stream())
        assert seen == [2, 3]


class TestMemoryGuard:
    def test_pressure_sheds_load_with_signal(self):
        operator = GeneralSlicingOperator(stream_in_order=True)
        # Holistic aggregation over one huge window: state grows with
        # every record until the guard steps in.
        operator.add_query(TumblingWindow(1_000_000), Median())
        signals = []
        pipeline, _sink = supervised(
            operator,
            batch_size=16,
            memory_guard=MemoryGuard(max_state_bytes=64 * 1024, check_every=64),
            on_pressure=signals.append,
        )
        stats = pipeline.run([Record(t, float(t)) for t in range(5_000)])

        assert signals, "guard never signalled despite unbounded state"
        signal = signals[0]
        assert isinstance(signal, MemoryPressure)
        assert signal.state_bytes > signal.limit_bytes == 64 * 1024
        assert 0 < signal.cursor <= 5_000
        assert stats.shed_records > 0
        # Not everything was shed: records before the pressure point got in.
        assert stats.shed_records < 5_000

    def test_no_guard_no_shedding(self):
        pipeline, _sink = supervised(build_operator(), batch_size=16)
        stats = pipeline.run([Record(t, 1.0) for t in range(500)])
        assert stats.shed_records == 0

    def test_guard_validation(self):
        with pytest.raises(ValueError):
            MemoryGuard(0)
        with pytest.raises(ValueError):
            MemoryGuard(100, check_every=0)
        with pytest.raises(ValueError):
            MemoryGuard(100, resume_state_bytes=200)


class TestStatsAndConfig:
    def test_stats_summary_keys(self):
        stats = RecoveryStats()
        stats.record_recovery(0.5, 10, 8)
        stats.record_recovery(1.5, 4, 4)
        summary = stats.summary()
        assert summary["restarts"] == 2
        assert summary["replayed_elements"] == 14
        assert summary["replayed_records"] == 12
        assert summary["mean_recovery_seconds"] == 1.0
        assert summary["total_recovery_seconds"] == 2.0
        assert stats.max_recovery_seconds == 1.5

    def test_supervisor_validation(self):
        with pytest.raises(ValueError):
            SupervisedPipeline(build_operator(), CollectSink(), checkpoint_every=0)
        with pytest.raises(ValueError):
            SupervisedPipeline(build_operator(), CollectSink(), batch_size=0)

    def test_external_stats_object_is_filled(self):
        stats = RecoveryStats()
        pipeline, _sink = supervised(build_operator(), stats=stats)
        returned = pipeline.run([Record(t, 1.0) for t in range(10)])
        assert returned is stats
        assert stats.checkpoints_taken >= 1

    def test_checkpoint_cadence(self):
        pipeline, _sink = supervised(
            build_operator(), checkpoint_every=10, batch_size=5
        )
        stats = pipeline.run([Record(t, 1.0) for t in range(100)])
        # Initial checkpoint + one per 10 records.
        assert stats.checkpoints_taken == 11


class TestPipelineCrashSafety:
    def test_flush_keeps_batch_until_operator_succeeds(self):
        """A mid-batch failure must not drop the in-flight buffer."""
        wrapped = FaultInjectingOperator(build_operator(), crash_at=[3])
        blob = snapshot(wrapped.inner)
        sink = CollectSink()
        pipeline = Pipeline(wrapped, sink, batch_size=16)
        for t in range(8):
            pipeline.push(Record(t, 1.0))
        with pytest.raises(Exception):
            pipeline.flush()
        # Buffer survives the failure; nothing reached the sink.
        assert len(pipeline._batch) == 8
        assert sink.results == []
        # A supervisor restores the pre-batch snapshot and retries: the
        # retained buffer replays cleanly (the injected fault fired once).
        wrapped.inner = restore(blob)
        pipeline.flush()
        assert pipeline._batch == []
        assert sink.results == run_operator(
            build_operator(), [Record(t, 1.0) for t in range(8)]
        )
