"""Smoke tests: examples run end-to-end; the CLI regenerates tables."""

import pathlib
import subprocess
import sys

import pytest

from conftest import subprocess_env

EXAMPLES = sorted(
    (pathlib.Path(__file__).parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.name)
def test_example_runs_clean(script):
    completed = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=240,
        env=subprocess_env(),
    )
    assert completed.returncode == 0, completed.stderr
    assert completed.stdout.strip(), "examples must produce output"


def test_examples_cover_required_scenarios():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(names) >= 3


class TestExperimentsCLI:
    def test_run_single_experiment(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "table1"],
            capture_output=True,
            text=True,
            timeout=120,
            env=subprocess_env(),
        )
        assert completed.returncode == 0, completed.stderr
        assert "Table 1" in completed.stdout
        assert "lazy slicing" in completed.stdout

    def test_unknown_experiment_fails_with_listing(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "fig99"],
            capture_output=True,
            text=True,
            timeout=60,
            env=subprocess_env(),
        )
        assert completed.returncode == 2
        assert "fig8" in completed.stderr

    def test_scaled_fig15(self):
        completed = subprocess.run(
            [sys.executable, "-m", "repro.experiments", "fig15"],
            capture_output=True,
            text=True,
            timeout=300,
            env=subprocess_env(REPRO_BENCH_SCALE="0.2"),
        )
        assert completed.returncode == 0, completed.stderr
        assert "Figure 15" in completed.stdout


def test_package_quickstart_doctest():
    import doctest

    import repro

    failures, _ = doctest.testmod(repro, verbose=False)
    assert failures == 0
