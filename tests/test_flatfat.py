"""Tests for the FlatFAT aggregate tree."""

import operator

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.flatfat import FlatFAT


def naive_range(leaves, lo, hi):
    slice_ = [x for x in leaves[lo:hi] if x is not None]
    if not slice_:
        return None
    total = slice_[0]
    for value in slice_[1:]:
        total = total + value
    return total


class TestConstruction:
    def test_empty(self):
        tree = FlatFAT(operator.add)
        assert len(tree) == 0
        assert tree.root() is None

    def test_from_leaves(self):
        tree = FlatFAT(operator.add, [1, 2, 3])
        assert len(tree) == 3
        assert tree.root() == 6

    def test_capacity_is_power_of_two(self):
        tree = FlatFAT(operator.add, [1, 2, 3, 4, 5])
        assert tree.capacity == 8

    def test_leaves_roundtrip(self):
        tree = FlatFAT(operator.add, [4, 5, 6])
        assert tree.leaves() == [4, 5, 6]


class TestUpdate:
    def test_point_update(self):
        tree = FlatFAT(operator.add, [1, 2, 3, 4])
        tree.update(2, 30)
        assert tree.root() == 37
        assert tree.leaf(2) == 30

    def test_update_to_none(self):
        tree = FlatFAT(operator.add, [1, 2, 3])
        tree.update(1, None)
        assert tree.root() == 4

    def test_update_out_of_range(self):
        tree = FlatFAT(operator.add, [1])
        with pytest.raises(IndexError):
            tree.update(1, 5)


class TestAppend:
    def test_append_grows(self):
        tree = FlatFAT(operator.add)
        for value in range(10):
            tree.append(value)
        assert len(tree) == 10
        assert tree.root() == sum(range(10))

    def test_append_beyond_capacity(self):
        tree = FlatFAT(operator.add, [1])
        assert tree.capacity == 1
        tree.append(2)
        assert tree.capacity == 2
        tree.append(3)
        assert tree.capacity == 4
        assert tree.root() == 6


class TestInsertRemove:
    def test_middle_insert(self):
        tree = FlatFAT(operator.add, [1, 3])
        tree.insert(1, 2)
        assert tree.leaves() == [1, 2, 3]
        assert tree.root() == 6

    def test_insert_at_end_is_append(self):
        tree = FlatFAT(operator.add, [1])
        tree.insert(1, 2)
        assert tree.leaves() == [1, 2]

    def test_insert_invalid_index(self):
        tree = FlatFAT(operator.add, [1])
        with pytest.raises(IndexError):
            tree.insert(5, 0)

    def test_remove(self):
        tree = FlatFAT(operator.add, [1, 2, 3])
        assert tree.remove(1) == 2
        assert tree.leaves() == [1, 3]
        assert tree.root() == 4

    def test_remove_front(self):
        tree = FlatFAT(operator.add, list(range(10)))
        tree.remove_front(4)
        assert tree.leaves() == list(range(4, 10))
        assert tree.root() == sum(range(4, 10))

    def test_remove_front_all(self):
        tree = FlatFAT(operator.add, [1, 2])
        tree.remove_front(2)
        assert len(tree) == 0
        assert tree.root() is None

    def test_remove_front_too_many(self):
        tree = FlatFAT(operator.add, [1])
        with pytest.raises(IndexError):
            tree.remove_front(2)


class TestQuery:
    def test_full_range(self):
        tree = FlatFAT(operator.add, list(range(1, 9)))
        assert tree.query(0, 8) == 36

    def test_subranges(self):
        leaves = list(range(1, 12))
        tree = FlatFAT(operator.add, leaves)
        for lo in range(len(leaves)):
            for hi in range(lo, len(leaves) + 1):
                assert tree.query(lo, hi) == naive_range(leaves, lo, hi)

    def test_empty_range(self):
        tree = FlatFAT(operator.add, [1, 2])
        assert tree.query(1, 1) is None

    def test_out_of_bounds(self):
        tree = FlatFAT(operator.add, [1, 2])
        with pytest.raises(IndexError):
            tree.query(0, 3)

    def test_none_leaves_skipped(self):
        tree = FlatFAT(operator.add, [1, None, 3])
        assert tree.query(0, 3) == 4

    def test_non_commutative_order_preserved(self):
        concat = lambda a, b: a + b  # noqa: E731
        tree = FlatFAT(concat, ["a", "b", "c", "d", "e"])
        assert tree.query(1, 4) == "bcd"
        assert tree.query(0, 5) == "abcde"


@given(
    leaves=st.lists(st.integers(-100, 100), min_size=0, max_size=64),
    operations=st.lists(
        st.tuples(st.sampled_from(["append", "update", "insert", "remove"]), st.integers(0, 63), st.integers(-100, 100)),
        max_size=30,
    ),
)
@settings(max_examples=60)
def test_flatfat_matches_naive_model(leaves, operations):
    """Random op sequences keep FlatFAT consistent with a plain list."""
    tree = FlatFAT(operator.add, leaves)
    model = list(leaves)
    for name, index, value in operations:
        if name == "append":
            tree.append(value)
            model.append(value)
        elif name == "update" and model:
            position = index % len(model)
            tree.update(position, value)
            model[position] = value
        elif name == "insert":
            position = index % (len(model) + 1)
            tree.insert(position, value)
            model.insert(position, value)
        elif name == "remove" and model:
            position = index % len(model)
            assert tree.remove(position) == model.pop(position)
    assert tree.leaves() == model
    assert tree.root() == (sum(model) if model else None)
    if len(model) >= 2:
        assert tree.query(1, len(model)) == sum(model[1:])
