"""Tests for operator checkpointing (snapshot / restore / wrapper)."""

import pytest

from conftest import final_values, run_operator, shuffled_with_disorder
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Median, Sum
from repro.baselines import AggregateTreeOperator, TupleBufferOperator
from repro.runtime.checkpoint import CheckpointingOperator, restore, snapshot
from repro.windows import CountTumblingWindow, SessionWindow, TumblingWindow


def build_operator():
    operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=10_000)
    operator.add_query(TumblingWindow(10), Sum())
    operator.add_query(SessionWindow(5), Sum())
    return operator


class TestSnapshotRestore:
    def test_roundtrip_preserves_future_emissions(self):
        base = [Record(t, float(t % 3)) for t in range(0, 120, 2)]
        stream = shuffled_with_disorder(base, 0.3, 12, seed=4)
        split = len(stream) // 2

        original = build_operator()
        run_operator(original, stream[:split])
        clone = restore(snapshot(original))

        tail = stream[split:] + [Watermark(10_000)]
        original_results = final_values(original, tail)
        clone_results = final_values(clone, tail)
        assert original_results == clone_results
        assert original_results  # the comparison is not vacuous

    def test_snapshot_is_deep(self):
        operator = build_operator()
        run_operator(operator, [Record(t, 1.0) for t in range(15)])
        blob = snapshot(operator)
        run_operator(operator, [Record(t, 1.0) for t in range(15, 40)])
        clone = restore(blob)
        # The clone must still be at the snapshot point: feeding the same
        # suffix yields the same results the original produced.
        suffix = [Record(t, 1.0) for t in range(15, 40)] + [Watermark(35)]
        results = run_operator(clone, suffix)
        assert any(r.end == 30 for r in results)

    def test_restore_rejects_non_operator(self):
        import pickle

        with pytest.raises(TypeError):
            restore(pickle.dumps({"not": "an operator"}))

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: TupleBufferOperator(stream_in_order=False, allowed_lateness=10_000),
            lambda: AggregateTreeOperator(stream_in_order=False, allowed_lateness=10_000),
        ],
    )
    def test_baselines_snapshot_too(self, factory):
        base = [Record(t, float(t)) for t in range(0, 100, 2)]
        operator = factory()
        operator.add_query(TumblingWindow(20), Sum())
        run_operator(operator, base[:25])
        clone = restore(snapshot(operator))
        tail = base[25:] + [Watermark(10_000)]
        assert final_values(operator, tail) == final_values(clone, tail)

    def test_record_retaining_workload_roundtrips(self):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=10_000)
        operator.add_query(CountTumblingWindow(5), Sum())
        operator.add_query(TumblingWindow(20), Median())
        base = [Record(t, float(t % 7)) for t in range(0, 100, 2)]
        stream = shuffled_with_disorder(base, 0.3, 10, seed=2)
        run_operator(operator, stream[:30])
        clone = restore(snapshot(operator))
        tail = stream[30:] + [Watermark(10_000)]
        assert final_values(operator, tail) == final_values(clone, tail)


class TestCheckpointingOperator:
    def test_periodic_snapshots(self):
        guarded = CheckpointingOperator(build_operator(), every=10)
        run_operator(guarded, [Record(t, 1.0) for t in range(35)])
        assert guarded.snapshots_taken == 3
        assert guarded.records_since_snapshot == 5

    def test_results_pass_through(self):
        plain = build_operator()
        guarded = CheckpointingOperator(build_operator(), every=7)
        stream = [Record(t, 1.0) for t in range(40)] + [Watermark(1000)]
        assert final_values(plain, stream) == final_values(guarded, stream)

    def test_recovery_replay(self):
        guarded = CheckpointingOperator(build_operator(), every=10)
        stream = [Record(t, 1.0) for t in range(37)]
        emitted = run_operator(guarded, stream)
        # Simulate a crash: recover from the last snapshot and replay the
        # records processed since it.
        recovered = restore(guarded.last_snapshot)
        replay = stream[len(stream) - guarded.records_since_snapshot :]
        run_operator(recovered, replay)
        flush_original = final_values(guarded, [Watermark(10_000)])
        flush_recovered = final_values(recovered, [Watermark(10_000)])
        assert flush_original == flush_recovered

    def test_add_query_resets_checkpoint(self):
        guarded = CheckpointingOperator(
            GeneralSlicingOperator(stream_in_order=True), every=100
        )
        guarded.add_query(TumblingWindow(10), Sum())
        assert guarded.records_since_snapshot == 0
        results = run_operator(guarded, [Record(t, 1.0) for t in range(25)])
        assert [(r.start, r.end) for r in results] == [(0, 10), (10, 20)]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointingOperator(build_operator(), every=0)

    def test_manual_checkpoint(self):
        guarded = CheckpointingOperator(build_operator(), every=10**9)
        run_operator(guarded, [Record(t, 1.0) for t in range(5)])
        blob = guarded.checkpoint()
        assert guarded.records_since_snapshot == 0
        assert restore(blob) is not None
