"""Tests for operator checkpointing (snapshot / restore / wrapper)."""

import pickle

import pytest

from conftest import final_values, run_operator, shuffled_with_disorder
from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Median, Sum
from repro.baselines import AggregateTreeOperator, TupleBufferOperator
from repro.runtime.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CHECKPOINT_MAGIC,
    CheckpointFormatError,
    CheckpointingOperator,
    SnapshotError,
    restore,
    snapshot,
)
from repro.windows import CountTumblingWindow, SessionWindow, TumblingWindow


def build_operator():
    operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=10_000)
    operator.add_query(TumblingWindow(10), Sum())
    operator.add_query(SessionWindow(5), Sum())
    return operator


class TestSnapshotRestore:
    def test_roundtrip_preserves_future_emissions(self):
        base = [Record(t, float(t % 3)) for t in range(0, 120, 2)]
        stream = shuffled_with_disorder(base, 0.3, 12, seed=4)
        split = len(stream) // 2

        original = build_operator()
        run_operator(original, stream[:split])
        clone = restore(snapshot(original))

        tail = stream[split:] + [Watermark(10_000)]
        original_results = final_values(original, tail)
        clone_results = final_values(clone, tail)
        assert original_results == clone_results
        assert original_results  # the comparison is not vacuous

    def test_snapshot_is_deep(self):
        operator = build_operator()
        run_operator(operator, [Record(t, 1.0) for t in range(15)])
        blob = snapshot(operator)
        run_operator(operator, [Record(t, 1.0) for t in range(15, 40)])
        clone = restore(blob)
        # The clone must still be at the snapshot point: feeding the same
        # suffix yields the same results the original produced.
        suffix = [Record(t, 1.0) for t in range(15, 40)] + [Watermark(35)]
        results = run_operator(clone, suffix)
        assert any(r.end == 30 for r in results)

    def test_restore_rejects_non_operator(self):
        # A well-formed blob whose payload is not an operator: the
        # header check passes, the type check must still catch it --
        # and as a format violation, not a bare TypeError, so callers
        # can handle every corruption mode with one except clause.
        blob = (
            CHECKPOINT_MAGIC
            + CHECKPOINT_FORMAT_VERSION.to_bytes(2, "big")
            + pickle.dumps({"not": "an operator"})
        )
        with pytest.raises(CheckpointFormatError):
            restore(blob)

    @pytest.mark.parametrize(
        "factory",
        [
            lambda: TupleBufferOperator(stream_in_order=False, allowed_lateness=10_000),
            lambda: AggregateTreeOperator(stream_in_order=False, allowed_lateness=10_000),
        ],
    )
    def test_baselines_snapshot_too(self, factory):
        base = [Record(t, float(t)) for t in range(0, 100, 2)]
        operator = factory()
        operator.add_query(TumblingWindow(20), Sum())
        run_operator(operator, base[:25])
        clone = restore(snapshot(operator))
        tail = base[25:] + [Watermark(10_000)]
        assert final_values(operator, tail) == final_values(clone, tail)

    def test_record_retaining_workload_roundtrips(self):
        operator = GeneralSlicingOperator(stream_in_order=False, allowed_lateness=10_000)
        operator.add_query(CountTumblingWindow(5), Sum())
        operator.add_query(TumblingWindow(20), Median())
        base = [Record(t, float(t % 7)) for t in range(0, 100, 2)]
        stream = shuffled_with_disorder(base, 0.3, 10, seed=2)
        run_operator(operator, stream[:30])
        clone = restore(snapshot(operator))
        tail = stream[30:] + [Watermark(10_000)]
        assert final_values(operator, tail) == final_values(clone, tail)


class TestCheckpointingOperator:
    def test_periodic_snapshots(self):
        guarded = CheckpointingOperator(build_operator(), every=10)
        run_operator(guarded, [Record(t, 1.0) for t in range(35)])
        assert guarded.snapshots_taken == 3
        assert guarded.records_since_snapshot == 5

    def test_results_pass_through(self):
        plain = build_operator()
        guarded = CheckpointingOperator(build_operator(), every=7)
        stream = [Record(t, 1.0) for t in range(40)] + [Watermark(1000)]
        assert final_values(plain, stream) == final_values(guarded, stream)

    def test_recovery_replay(self):
        guarded = CheckpointingOperator(build_operator(), every=10)
        stream = [Record(t, 1.0) for t in range(37)]
        emitted = run_operator(guarded, stream)
        # Simulate a crash: recover from the last snapshot and replay the
        # records processed since it.
        recovered = restore(guarded.last_snapshot)
        replay = stream[len(stream) - guarded.records_since_snapshot :]
        run_operator(recovered, replay)
        flush_original = final_values(guarded, [Watermark(10_000)])
        flush_recovered = final_values(recovered, [Watermark(10_000)])
        assert flush_original == flush_recovered

    def test_add_query_resets_checkpoint(self):
        guarded = CheckpointingOperator(
            GeneralSlicingOperator(stream_in_order=True), every=100
        )
        guarded.add_query(TumblingWindow(10), Sum())
        assert guarded.records_since_snapshot == 0
        results = run_operator(guarded, [Record(t, 1.0) for t in range(25)])
        assert [(r.start, r.end) for r in results] == [(0, 10), (10, 20)]

    def test_invalid_interval(self):
        with pytest.raises(ValueError):
            CheckpointingOperator(build_operator(), every=0)

    def test_manual_checkpoint(self):
        guarded = CheckpointingOperator(build_operator(), every=10**9)
        run_operator(guarded, [Record(t, 1.0) for t in range(5)])
        blob = guarded.checkpoint()
        assert guarded.records_since_snapshot == 0
        assert restore(blob) is not None


class TestCheckpointFormat:
    """Versioned header: restore() refuses anything it cannot trust."""

    def test_snapshot_carries_magic_and_version(self):
        blob = snapshot(build_operator())
        assert blob[:4] == CHECKPOINT_MAGIC
        assert int.from_bytes(blob[4:6], "big") == CHECKPOINT_FORMAT_VERSION

    def test_headered_blob_roundtrips(self):
        operator = build_operator()
        run_operator(operator, [Record(t, 1.0) for t in range(20)])
        clone = restore(snapshot(operator))
        assert isinstance(clone, GeneralSlicingOperator)

    def test_raw_pickle_rejected(self):
        # Pre-versioning blobs (bare pickle, no header) are incompatible.
        with pytest.raises(CheckpointFormatError, match="header"):
            restore(pickle.dumps(build_operator()))

    def test_truncated_blob_rejected(self):
        blob = snapshot(build_operator())
        with pytest.raises(CheckpointFormatError):
            restore(blob[:5])

    def test_future_version_rejected(self):
        blob = snapshot(build_operator())
        future = CHECKPOINT_MAGIC + (CHECKPOINT_FORMAT_VERSION + 1).to_bytes(2, "big")
        with pytest.raises(CheckpointFormatError, match="not supported"):
            restore(future + blob[6:])

    def test_corrupt_payload_rejected(self):
        blob = bytearray(snapshot(build_operator()))
        blob[10:30] = b"\x00" * 20  # bit-rot inside the pickle payload
        with pytest.raises(CheckpointFormatError, match="corrupt"):
            restore(bytes(blob))

    def test_non_bytes_rejected(self):
        with pytest.raises(CheckpointFormatError):
            restore("not bytes at all")


class LambdaSum(Sum):
    """Picklable class, unpicklable *instance* (closure in state)."""

    def __init__(self):
        super().__init__()
        self.udf = lambda value: value


class TestSnapshotErrors:
    def test_unpicklable_udf_named_in_error(self):
        operator = GeneralSlicingOperator(stream_in_order=True)
        operator.add_query(TumblingWindow(10), Sum())
        bad_query = operator.add_query(TumblingWindow(20), LambdaSum())
        run_operator(operator, [Record(t, 1.0) for t in range(5)])
        with pytest.raises(SnapshotError) as excinfo:
            snapshot(operator)
        message = str(excinfo.value)
        assert f"query {bad_query.query_id}" in message
        assert "LambdaSum" in message

    def test_checkpointing_operator_surfaces_snapshot_error(self):
        inner = GeneralSlicingOperator(stream_in_order=True)
        inner.add_query(TumblingWindow(10), LambdaSum())
        with pytest.raises(SnapshotError):
            CheckpointingOperator(inner, every=10)


class TestCheckpointingBatches:
    """Satellite fix: the wrapper must intercept process_batch too."""

    def test_batched_ingestion_triggers_snapshots(self):
        guarded = CheckpointingOperator(build_operator(), every=10)
        stream = [Record(t, 1.0) for t in range(35)]
        for start in range(0, 35, 7):
            guarded.process_batch(stream[start : start + 7])
        # Same cadence the tuple-at-a-time path guarantees: snapshots at
        # the first batch boundary where >= 10 records accumulated.
        assert guarded.snapshots_taken == 2
        assert guarded.records_since_snapshot == 7

    def test_batch_and_record_paths_equivalent_results(self):
        plain = build_operator()
        guarded = CheckpointingOperator(build_operator(), every=7)
        stream = [Record(t, 1.0) for t in range(40)] + [Watermark(1000)]
        expected = run_operator(plain, stream)
        batched = []
        for start in range(0, len(stream), 6):
            batched.extend(guarded.process_batch(stream[start : start + 6]))
        assert batched == expected

    def test_watermarks_not_counted_as_records(self):
        guarded = CheckpointingOperator(build_operator(), every=10)
        batch = [Record(t, 1.0) for t in range(5)] + [Watermark(3)] * 5
        guarded.process_batch(batch)
        assert guarded.records_since_snapshot == 5
        assert guarded.snapshots_taken == 0

    def test_on_checkpoint_hook_receives_restorable_blob(self):
        blobs = []
        guarded = CheckpointingOperator(
            build_operator(), every=10, on_checkpoint=blobs.append
        )
        guarded.process_batch([Record(t, 1.0) for t in range(25)])
        assert len(blobs) == 1
        assert isinstance(restore(blobs[0]), GeneralSlicingOperator)

    def test_recovery_replay_from_batch_path(self):
        guarded = CheckpointingOperator(build_operator(), every=10)
        stream = [Record(t, 1.0) for t in range(37)]
        for start in range(0, 37, 4):
            guarded.process_batch(stream[start : start + 4])
        recovered = restore(guarded.last_snapshot)
        replay = stream[len(stream) - guarded.records_since_snapshot :]
        recovered.process_batch(replay)
        assert final_values(guarded, [Watermark(10_000)]) == final_values(
            recovered, [Watermark(10_000)]
        )


@pytest.mark.fuzz
class TestRestoreCorruptionFuzz:
    """Seeded fuzz over mutated snapshots: restore() must classify every
    corruption as :class:`CheckpointFormatError` (or, when the mutation
    happens to leave a loadable pickle, still return a WindowOperator)
    -- never leak a raw ``pickle``/``EOFError``/``UnicodeDecodeError``.

    Override the schedule with ``REPRO_FUZZ_SEED``.
    """

    TRIALS = 250

    def test_mutated_blobs_never_leak_raw_errors(self):
        import os
        import random

        from repro.core.operator_base import WindowOperator

        rng = random.Random(int(os.environ.get("REPRO_FUZZ_SEED", "90210")))
        operator = build_operator()
        run_operator(operator, [Record(t, float(t % 5)) for t in range(60)])
        blob = snapshot(operator)

        rejected = 0
        for _ in range(self.TRIALS):
            mutated = bytearray(blob)
            mode = rng.randrange(3)
            if mode == 0:  # truncation (torn write)
                mutated = mutated[: rng.randrange(len(mutated))]
            elif mode == 1:  # 1-8 bit flips (media corruption)
                for _ in range(rng.randint(1, 8)):
                    position = rng.randrange(len(mutated) * 8)
                    mutated[position // 8] ^= 1 << (position % 8)
            else:  # splice random garbage over a random span
                at = rng.randrange(len(mutated))
                span = rng.randint(1, 16)
                mutated[at : at + span] = bytes(
                    rng.randrange(256) for _ in range(span)
                )
            try:
                result = restore(bytes(mutated))
            except CheckpointFormatError:
                rejected += 1
            else:
                # A mutation can leave a loadable payload (e.g. a bit
                # flip inside a float); the contract is only that what
                # comes back is an operator.
                assert isinstance(result, WindowOperator)
        # The suite is vacuous if (nearly) every mutation survives.
        assert rejected > self.TRIALS // 2
