"""Direct unit tests for the buffer-baseline trigger engine."""

import pytest

from repro.aggregations import Sum
from repro.baselines.trigger import BufferTriggerEngine
from repro.core.characteristics import Query
from repro.windows import (
    CountTumblingWindow,
    LastNEveryWindow,
    SessionWindow,
    SlidingWindow,
    TumblingWindow,
)


class FakeView:
    """Minimal SortedRecordsView over (ts, value) pairs."""

    def __init__(self, pairs):
        self.pairs = sorted(pairs)

    def timestamps(self):
        return [ts for ts, _ in self.pairs]

    def fold_range(self, lo, hi, query):
        function = query.aggregation
        partial = None
        for _, value in self.pairs[lo:hi]:
            lifted = function.lift(value)
            partial = lifted if partial is None else function.combine(partial, lifted)
        return partial

    def insert(self, ts, value):
        import bisect

        bisect.insort(self.pairs, (ts, value))


def engine_for(window, pairs, emit_empty=False):
    view = FakeView(pairs)
    engine = BufferTriggerEngine(view, emit_empty=emit_empty)
    engine.set_queries([Query(window, Sum(), query_id=0)])
    return engine, view


class TestTimeTriggers:
    def test_tumbling_emission(self):
        engine, _ = engine_for(TumblingWindow(10), [(1, 1.0), (5, 2.0), (12, 4.0)])
        results = engine.advance(15)
        assert [(r.start, r.end, r.value) for r in results] == [(0, 10, 3.0)]

    def test_monotone_watermark(self):
        engine, _ = engine_for(TumblingWindow(10), [(1, 1.0)])
        engine.advance(15)
        assert engine.advance(15) == []
        assert engine.advance(12) == []

    def test_sliding_overlap(self):
        engine, _ = engine_for(SlidingWindow(10, 5), [(t, 1.0) for t in range(20)])
        results = engine.advance(16)
        assert [(r.start, r.end, r.value) for r in results] == [
            (0, 10, 10.0),
            (5, 15, 10.0),
        ]

    def test_no_duplicate_emission_across_advances(self):
        engine, _ = engine_for(TumblingWindow(10), [(1, 1.0), (11, 1.0)])
        first = engine.advance(12)
        second = engine.advance(25)
        spans = [(r.start, r.end) for r in first + second]
        assert spans == [(0, 10), (10, 20)]


class TestSessionTriggers:
    def test_sessions_from_gaps(self):
        engine, _ = engine_for(
            SessionWindow(5), [(1, 1.0), (2, 1.0), (20, 1.0)]
        )
        results = engine.advance(100)
        assert [(r.start, r.end, r.value) for r in results] == [
            (1, 7, 2.0),
            (20, 25, 1.0),
        ]

    def test_open_session_waits(self):
        engine, _ = engine_for(SessionWindow(5), [(1, 1.0)])
        assert engine.advance(5) == []
        assert [(r.start, r.end) for r in engine.advance(6)] == [(1, 6)]

    def test_late_record_updates_session(self):
        engine, view = engine_for(SessionWindow(5), [(1, 1.0), (20, 1.0)])
        engine.advance(10)
        view.insert(3, 2.0)
        updates = engine.on_late_record(3)
        assert [(u.start, u.end, u.value, u.is_update) for u in updates] == [
            (1, 8, 3.0, True)
        ]

    def test_session_reopened_by_late_record_is_retracted(self):
        engine, view = engine_for(SessionWindow(5), [(1, 1.0)])
        engine.advance(6)  # session [1, 6) emitted
        view.insert(4, 1.0)
        # Extended session now ends at 9 > watermark 6: no emission yet,
        # but the stale bookkeeping is dropped so it re-emits later.
        assert engine.on_late_record(4) == []
        results = engine.advance(9)
        assert [(r.start, r.end, r.value) for r in results] == [(1, 9, 2.0)]


class TestCountTriggers:
    def test_count_windows_respect_watermark(self):
        engine, _ = engine_for(
            CountTumblingWindow(2), [(1, 1.0), (2, 2.0), (5, 3.0), (9, 4.0)]
        )
        results = engine.advance(5)
        assert [(r.start, r.end, r.value) for r in results] == [(0, 2, 3.0)]
        results = engine.advance(9)
        assert [(r.start, r.end, r.value) for r in results] == [(2, 4, 7.0)]

    def test_eviction_offset_preserves_positions(self):
        engine, view = engine_for(
            CountTumblingWindow(2), [(1, 1.0), (2, 2.0), (5, 3.0), (9, 4.0)]
        )
        engine.advance(5)
        # Evict the first two records; count positions stay global.
        view.pairs = view.pairs[2:]
        engine.note_eviction(2)
        results = engine.advance(9)
        assert [(r.start, r.end, r.value) for r in results] == [(2, 4, 7.0)]

    def test_late_record_shifts_count_windows(self):
        engine, view = engine_for(
            CountTumblingWindow(2), [(1, 1.0), (4, 4.0), (9, 9.0)]
        )
        engine.advance(4)  # window (0,2)=5.0 emitted
        view.insert(2, 2.0)
        updates = engine.on_late_record(2)
        assert [(u.start, u.end, u.value) for u in updates] == [(0, 2, 3.0)]


class TestMultiMeasureTriggers:
    def test_last_n_every(self):
        engine, _ = engine_for(
            LastNEveryWindow(count=2, every=10),
            [(2, 1.0), (4, 2.0), (12, 4.0), (15, 8.0)],
        )
        results = engine.advance(15)
        assert [(r.value) for r in results] == [3.0]

    def test_late_record_updates_edge(self):
        engine, view = engine_for(
            LastNEveryWindow(count=2, every=10), [(2, 1.0), (4, 2.0), (12, 4.0)]
        )
        engine.advance(12)
        view.insert(6, 8.0)
        updates = engine.on_late_record(6)
        assert [u.value for u in updates] == [10.0]  # last two become 2+8


class TestEmitEmpty:
    def test_empty_windows_skipped_by_default(self):
        engine, _ = engine_for(TumblingWindow(10), [(1, 1.0), (35, 1.0)])
        spans = [(r.start, r.end) for r in engine.advance(40)]
        assert spans == [(0, 10), (30, 40)]

    def test_emit_empty_enabled(self):
        engine, _ = engine_for(
            TumblingWindow(10), [(1, 1.0), (35, 1.0)], emit_empty=True
        )
        spans = [(r.start, r.end) for r in engine.advance(40)]
        assert (10, 20) in spans and (20, 30) in spans
