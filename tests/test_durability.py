"""Durable checkpoint stores: framing, atomicity, generations, fallback.

Covers the :mod:`repro.runtime.durability` layer in isolation: CRC32
frame integrity, generation keep/GC, the manifest, atomic-write crash
windows (including a crash *between* the temp write and the rename),
corruption fallback, cross-process resume, and the store fault injection
in :mod:`repro.runtime.faults`.  Pipeline-level corruption recovery is
in ``tests/test_durability_chaos.py``.
"""

from __future__ import annotations

import json
import os
import random

import pytest

from repro.core.tracing import Tracer
from repro.runtime import (
    STORE_FORMAT_VERSION,
    STORE_MAGIC,
    CheckpointCorruptError,
    DiskCheckpointStore,
    FaultyStore,
    InMemoryStore,
    TransientStoreError,
)
from repro.runtime.durability import _decode_frame, _encode_frame, StoredCheckpoint

FUZZ_SEED = int(os.environ.get("REPRO_FUZZ_SEED", "424242"))


def make_stores(tmp_path):
    return {
        "memory": InMemoryStore(keep=3),
        "disk": DiskCheckpointStore(tmp_path / "disk", keep=3),
    }


# ----------------------------------------------------------------------
# frame format


class TestFrameFormat:
    def test_roundtrip_preserves_everything(self):
        original = StoredCheckpoint(
            7, b"payload" * 100, cursor=1234, records_processed=999,
            meta={"counters": {"a": 1}},
        )
        decoded = _decode_frame(_encode_frame(original), "test")
        assert decoded.generation == 7
        assert decoded.blob == original.blob
        assert decoded.cursor == 1234
        assert decoded.records_processed == 999
        assert decoded.meta == {"counters": {"a": 1}}

    def test_frame_leads_with_magic_and_version(self):
        frame = _encode_frame(StoredCheckpoint(0, b"x", cursor=0, records_processed=0))
        assert frame[:4] == STORE_MAGIC
        assert int.from_bytes(frame[4:6], "big") == STORE_FORMAT_VERSION

    def test_wrong_magic_rejected(self):
        frame = bytearray(
            _encode_frame(StoredCheckpoint(0, b"x", cursor=0, records_processed=0))
        )
        frame[:4] = b"NOPE"
        with pytest.raises(CheckpointCorruptError, match="magic"):
            _decode_frame(bytes(frame), "test")

    def test_future_version_rejected(self):
        frame = bytearray(
            _encode_frame(StoredCheckpoint(0, b"x", cursor=0, records_processed=0))
        )
        frame[4:6] = (STORE_FORMAT_VERSION + 1).to_bytes(2, "big")
        with pytest.raises(CheckpointCorruptError, match="not supported"):
            _decode_frame(bytes(frame), "test")

    def test_single_bit_flip_detected_anywhere(self):
        # Every byte of the frame is covered by either the header checks
        # or the CRC: flip one bit per region and expect rejection.
        frame = _encode_frame(
            StoredCheckpoint(3, b"blob-bytes" * 20, cursor=50, records_processed=40)
        )
        rng = random.Random(FUZZ_SEED)
        for _ in range(100):
            mutated = bytearray(frame)
            position = rng.randrange(len(mutated) * 8)
            mutated[position // 8] ^= 1 << (position % 8)
            with pytest.raises(CheckpointCorruptError):
                _decode_frame(bytes(mutated), "test")

    def test_truncation_detected_at_every_length(self):
        frame = _encode_frame(
            StoredCheckpoint(3, b"blob" * 10, cursor=5, records_processed=5)
        )
        for cut in range(len(frame)):
            with pytest.raises(CheckpointCorruptError):
                _decode_frame(frame[:cut], "test")

    def test_appended_garbage_detected(self):
        frame = _encode_frame(StoredCheckpoint(0, b"x", cursor=0, records_processed=0))
        with pytest.raises(CheckpointCorruptError):
            _decode_frame(frame + b"trailing", "test")


# ----------------------------------------------------------------------
# store behaviour, both implementations


class TestStoreContract:
    def test_save_load_roundtrip(self, tmp_path):
        for name, store in make_stores(tmp_path).items():
            generation = store.save(b"blob-a", cursor=10, records_processed=8)
            loaded = store.load(generation)
            assert loaded.blob == b"blob-a", name
            assert loaded.cursor == 10
            assert loaded.records_processed == 8

    def test_keep_bound_garbage_collects_oldest(self, tmp_path):
        for name, store in make_stores(tmp_path).items():
            generations = [
                store.save(f"b{i}".encode(), cursor=i * 10, records_processed=i * 9)
                for i in range(5)
            ]
            assert store.generations() == generations[-3:], name
            with pytest.raises(KeyError):
                store.load(generations[0])

    def test_oldest_cursor_tracks_gc(self, tmp_path):
        for name, store in make_stores(tmp_path).items():
            assert store.oldest_cursor() is None, name
            for i in range(5):
                store.save(b"x", cursor=i * 10, records_processed=0)
            assert store.oldest_cursor() == 20, name  # 2 oldest GC'd

    def test_load_latest_falls_back_past_corruption(self, tmp_path):
        for name, store in make_stores(tmp_path).items():
            tracer = Tracer()
            store.tracer = tracer
            g0 = store.save(b"good-old", cursor=0, records_processed=0)
            g1 = store.save(b"good-mid", cursor=10, records_processed=10)
            g2 = store.save(b"torn-new", cursor=20, records_processed=20)
            store.corrupt(g2, truncate_to=store.frame_size(g2) // 2)
            loaded = store.load_latest()
            assert loaded.generation == g1, name
            assert loaded.blob == b"good-mid"
            assert tracer.value("durability.fallbacks") == 1
            assert tracer.value("durability.corrupt_generations") == 1
            # Two corrupt generations: fall back all the way.
            store.corrupt(g1, flip_bit=200)
            assert store.load_latest().generation == g0, name
            # All corrupt: nothing loadable.
            store.corrupt(g0, flip_bit=77)
            assert store.load_latest() is None, name

    def test_min_generation_bounds_fallback(self, tmp_path):
        for name, store in make_stores(tmp_path).items():
            g0 = store.save(b"previous-run", cursor=0, records_processed=0)
            g1 = store.save(b"this-run", cursor=0, records_processed=0)
            store.corrupt(g1, flip_bit=99)
            # A fresh run must not restore another run's generation.
            assert store.load_latest(min_generation=g1) is None, name
            assert store.load_latest().generation == g0

    def test_generation_mismatch_detected(self, tmp_path):
        # A frame that passes its CRC but claims another generation
        # (e.g. a misplaced file) is corruption, not silently accepted.
        store = DiskCheckpointStore(tmp_path / "d", keep=3)
        g0 = store.save(b"a", cursor=0, records_processed=0)
        g1 = store.save(b"b", cursor=5, records_processed=5)
        os.replace(store._path(g0), store._path(g1))
        with pytest.raises(CheckpointCorruptError, match="claims"):
            store.load(g1)

    def test_tracer_counts_saves_loads_gc(self, tmp_path):
        for name, store in make_stores(tmp_path).items():
            tracer = Tracer()
            store.tracer = tracer
            for i in range(4):
                store.save(b"x" * 10, cursor=i, records_processed=i)
            store.load_latest()
            assert tracer.value("durability.saves") == 4, name
            assert tracer.value("durability.loads") == 1
            assert tracer.value("durability.gc_collected") == 1
            assert tracer.value("durability.bytes_written") > 0

    def test_keep_validation(self, tmp_path):
        with pytest.raises(ValueError):
            InMemoryStore(keep=0)
        with pytest.raises(ValueError):
            DiskCheckpointStore(tmp_path / "bad", keep=0)


# ----------------------------------------------------------------------
# disk-specific: atomicity, manifest, resume


class TestDiskStore:
    def test_resume_from_existing_directory(self, tmp_path):
        store = DiskCheckpointStore(tmp_path / "d", keep=3)
        g_old = store.save(b"first", cursor=10, records_processed=10)
        g_new = store.save(b"second", cursor=20, records_processed=20)
        # A new supervisor (new process) opens the same directory.
        reopened = DiskCheckpointStore(tmp_path / "d", keep=3)
        assert reopened.generations() == [g_old, g_new]
        assert reopened.load_latest().blob == b"second"
        assert reopened.oldest_cursor() == 10
        # Numbering resumes past the dead run's generations.
        assert reopened.save(b"third", cursor=30, records_processed=30) > g_new

    def test_crash_between_temp_write_and_rename(self, tmp_path):
        """A full temp file that never got renamed must not shadow or
        corrupt the committed generations, and GC sweeps it away."""
        store = DiskCheckpointStore(tmp_path / "d", keep=3)
        g0 = store.save(b"committed", cursor=10, records_processed=10)
        # Simulate the crash window: the next generation's frame is
        # fully written to the .tmp name, but os.replace never ran.
        doomed = _encode_frame(
            StoredCheckpoint(g0 + 1, b"never-renamed", cursor=20, records_processed=20)
        )
        tmp = store._path(g0 + 1) + ".tmp"
        with open(tmp, "wb") as handle:
            handle.write(doomed)

        # A new supervisor sees only the committed generation...
        reopened = DiskCheckpointStore(tmp_path / "d", keep=3)
        assert reopened.generations() == [g0]
        assert reopened.load_latest().blob == b"committed"
        # ...reuses the orphaned number without tripping on the stray...
        g1 = reopened.save(b"replacement", cursor=20, records_processed=20)
        assert g1 == g0 + 1
        assert reopened.load(g1).blob == b"replacement"
        # ...and the stray temp file is gone after the GC sweep.
        assert not any(n.endswith(".tmp") for n in os.listdir(store.directory))

    def test_partial_temp_write_is_ignored(self, tmp_path):
        store = DiskCheckpointStore(tmp_path / "d", keep=3)
        store.save(b"committed", cursor=10, records_processed=10)
        with open(os.path.join(store.directory, "ckpt-x.tmp"), "wb") as handle:
            handle.write(b"half a fra")
        reopened = DiskCheckpointStore(tmp_path / "d", keep=3)
        assert reopened.load_latest().blob == b"committed"

    def test_manifest_reflects_retained_generations(self, tmp_path):
        store = DiskCheckpointStore(tmp_path / "d", keep=2)
        for i in range(4):
            store.save(b"x", cursor=i, records_processed=i)
        with open(os.path.join(store.directory, "MANIFEST")) as handle:
            manifest = json.load(handle)
        assert manifest["version"] == STORE_FORMAT_VERSION
        assert manifest["generations"] == store.generations()
        assert len(manifest["generations"]) == 2

    def test_files_are_ground_truth_over_manifest(self, tmp_path):
        # A deleted or stale MANIFEST must not hide real generations.
        store = DiskCheckpointStore(tmp_path / "d", keep=3)
        store.save(b"alpha", cursor=1, records_processed=1)
        os.remove(os.path.join(store.directory, "MANIFEST"))
        reopened = DiskCheckpointStore(tmp_path / "d", keep=3)
        assert reopened.load_latest().blob == b"alpha"

    def test_corrupt_oldest_reports_unknown_horizon(self, tmp_path):
        store = DiskCheckpointStore(tmp_path / "d", keep=2)
        g0 = store.save(b"a", cursor=10, records_processed=10)
        store.save(b"b", cursor=20, records_processed=20)
        reopened = DiskCheckpointStore(tmp_path / "d", keep=2)
        reopened.corrupt(g0, truncate_to=4)
        assert reopened.oldest_cursor() is None


# ----------------------------------------------------------------------
# store fault injection (FaultyStore)


class TestFaultyStore:
    def test_torn_write_corrupts_scheduled_save(self, tmp_path):
        for name, inner in make_stores(tmp_path).items():
            store = FaultyStore(inner, torn_write_at=(1,), seed=FUZZ_SEED)
            g0 = store.save(b"good" * 50, cursor=0, records_processed=0)
            g1 = store.save(b"torn" * 50, cursor=10, records_processed=10)
            assert inner.load(g0).blob == b"good" * 50, name
            with pytest.raises(CheckpointCorruptError):
                inner.load(g1)
            assert store.load_latest().generation == g0
            assert store.faults_fired == 1

    def test_bit_flip_corrupts_scheduled_save(self, tmp_path):
        for name, inner in make_stores(tmp_path).items():
            store = FaultyStore(inner, bit_flip_at=(0,), seed=FUZZ_SEED)
            g0 = store.save(b"flipped" * 30, cursor=0, records_processed=0)
            with pytest.raises(CheckpointCorruptError):
                inner.load(g0)

    def test_transient_io_errors_fire_once(self, tmp_path):
        for name, inner in make_stores(tmp_path).items():
            store = FaultyStore(
                inner, io_error_saves=(0,), io_error_loads=(0,), seed=FUZZ_SEED
            )
            with pytest.raises(TransientStoreError):
                store.save(b"x", cursor=0, records_processed=0)
            generation = store.save(b"x", cursor=0, records_processed=0)
            with pytest.raises(TransientStoreError):
                store.load_latest()
            assert store.load_latest().generation == generation, name
            assert store.faults_fired == 2

    def test_transient_error_is_oserror(self):
        # Supervisors retry OSError from the store; the injected fault
        # must be caught by that path.
        assert issubclass(TransientStoreError, OSError)

    def test_delegation_preserves_store_contract(self, tmp_path):
        inner = DiskCheckpointStore(tmp_path / "d", keep=2)
        store = FaultyStore(inner, seed=FUZZ_SEED)
        g = store.save(b"x", cursor=3, records_processed=2)
        assert store.generations() == [g]
        assert store.oldest_cursor() == 3
        assert store.frame_size(g) == inner.frame_size(g)
        assert store.load(g).blob == b"x"

    def test_seeded_damage_is_deterministic(self, tmp_path):
        sizes = []
        for attempt in range(2):
            inner = InMemoryStore(keep=2)
            store = FaultyStore(inner, torn_write_at=(0,), seed=FUZZ_SEED)
            g = store.save(b"payload" * 64, cursor=0, records_processed=0)
            sizes.append(inner.frame_size(g))
        assert sizes[0] == sizes[1]
