"""Tests for the experiment harness and small-scale figure runs."""

import pytest

from repro.experiments import (
    INORDER_ONLY_TECHNIQUES,
    TECHNIQUES,
    ResultTable,
    bench_scale,
    make_operator,
    scaled,
)
from repro.experiments.figures import (
    fig11_latency,
    fig13_aggregations,
    fig15_split_cost,
    table1_memory_models,
)


class TestHarness:
    def test_all_paper_techniques_registered(self):
        for name in (
            "Lazy Slicing",
            "Eager Slicing",
            "Tuple Buffer",
            "Aggregate Tree",
            "Buckets",
            "Tuple Buckets",
            "Pairs",
            "Cutty",
        ):
            assert name in TECHNIQUES

    def test_make_operator_builds_each_inorder_technique(self):
        for name in TECHNIQUES:
            operator = make_operator(name, stream_in_order=True)
            assert operator is not None

    def test_inorder_only_techniques_reject_ooo(self):
        for name in INORDER_ONLY_TECHNIQUES:
            with pytest.raises(ValueError):
                make_operator(name, stream_in_order=False)

    def test_unknown_technique(self):
        with pytest.raises(KeyError):
            make_operator("Quantum Slicing", stream_in_order=True)

    def test_scaled_respects_minimum(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "0.0001")
        assert scaled(1000, minimum=10) == 10

    def test_bench_scale_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_BENCH_SCALE", raising=False)
        assert bench_scale() == 1.0

    def test_bench_scale_invalid_falls_back(self, monkeypatch):
        monkeypatch.setenv("REPRO_BENCH_SCALE", "not-a-number")
        assert bench_scale() == 1.0


class TestRateConsistency:
    """Both harness result types must agree on the degenerate cases:
    a zero wall-clock (or empty) run reports a rate of 0.0, never inf.
    ``ParallelResult`` used to divide unguarded and leak inf into JSON
    reports and comparisons."""

    def test_zero_wall_time_rate_matches_throughput_harness(self):
        from repro.runtime.metrics import ThroughputResult
        from repro.runtime.partition import ParallelResult

        throughput = ThroughputResult(records=100, seconds=0.0, results_emitted=0)
        parallel = ParallelResult(100, 0.0, 0.0, 0, 1)
        assert throughput.records_per_second == 0.0
        assert parallel.records_per_second == throughput.records_per_second

    def test_empty_run_rate_is_zero_in_both(self):
        from repro.runtime.metrics import ThroughputResult
        from repro.runtime.partition import ParallelResult

        assert ThroughputResult(records=0, seconds=1.0, results_emitted=0).records_per_second == 0.0
        assert ParallelResult(0, 1.0, 0.0, 0, 1).records_per_second == 0.0


class TestResultTable:
    def test_add_and_column(self):
        table = ResultTable("t", ["a", "b"])
        table.add(a=1, b=2)
        table.add(a=3, b=4)
        assert table.column("a") == [1, 3]

    def test_missing_column_rejected(self):
        table = ResultTable("t", ["a", "b"])
        with pytest.raises(ValueError):
            table.add(a=1)

    def test_series_grouping(self):
        table = ResultTable("t", ["tech", "value"])
        table.add(tech="x", value=1)
        table.add(tech="y", value=2)
        table.add(tech="x", value=3)
        assert table.series("tech", "value") == {"x": [1, 3], "y": [2]}

    def test_render_contains_rows(self):
        table = ResultTable("My Title", ["name", "value"])
        table.add(name="sum", value=123456.0)
        text = table.render()
        assert "My Title" in text
        assert "sum" in text
        assert "123,456" in text

    def test_render_empty(self):
        table = ResultTable("Empty", ["col"])
        assert "Empty" in table.render()


class TestSmallFigureRuns:
    """Tiny-scale executions proving each experiment function works."""

    def test_table1(self):
        table = table1_memory_models()
        assert len(table.rows) == 8

    def test_fig11_small(self):
        table = fig11_latency(entries_list=(50,), aggregations=("sum",), iterations=20)
        techniques = set(table.column("technique"))
        assert "Lazy Slicing" in techniques and "Buckets" in techniques
        assert all(row["latency_ns"] > 0 for row in table.rows)

    def test_fig11_bucket_fastest(self):
        table = fig11_latency(entries_list=(2000,), aggregations=("sum",), iterations=50)
        latency = {row["technique"]: row["latency_ns"] for row in table.rows}
        assert latency["Buckets"] <= latency["Lazy Slicing"]
        assert latency["Buckets"] <= latency["Tuple Buffer"]

    def test_fig13_subset(self):
        table = fig13_aggregations(
            num_records=400, concurrent_windows=4, aggregations=("sum", "min")
        )
        assert len(table.rows) == 4  # 2 aggregations x 2 measures
        assert all(row["throughput"] > 0 for row in table.rows)

    def test_fig15_monotone_in_slice_size(self):
        table = fig15_split_cost(sizes=(100, 2000), aggregations=("sum",), repetitions=3)
        times = table.column("time_us")
        assert times[1] > times[0]
