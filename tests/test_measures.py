"""Tests for windowing measures (repro.core.measures)."""

import pytest

from repro.core.measures import (
    AttributeMeasure,
    CountMeasure,
    EventTimeMeasure,
    MeasureKind,
    MeasureVector,
    ProcessingTimeMeasure,
)
from repro.core.types import Record


class TestEventTime:
    def test_reads_record_ts(self):
        assert EventTimeMeasure().timestamp(Record(42, 0)) == 42

    def test_kind(self):
        assert EventTimeMeasure.kind is MeasureKind.TIME


class TestProcessingTime:
    def test_uses_injected_clock(self):
        ticks = iter([100, 200])
        measure = ProcessingTimeMeasure(clock=lambda: next(ticks))
        assert measure.timestamp(Record(1, 0)) == 100
        assert measure.timestamp(Record(1, 0)) == 200

    def test_default_clock_monotone(self):
        measure = ProcessingTimeMeasure()
        first = measure.timestamp(Record(0, 0))
        second = measure.timestamp(Record(0, 0))
        assert second >= first


class TestAttributeMeasure:
    def test_extracts_attribute(self):
        measure = AttributeMeasure(lambda record: int(record.value * 10), name="km")
        assert measure.timestamp(Record(0, 3.5)) == 35

    def test_kind_is_time_like(self):
        # Arbitrary advancing measures process identically to event-time.
        measure = AttributeMeasure(lambda r: 0)
        assert measure.kind is MeasureKind.TIME


class TestCountMeasure:
    def test_counts_arrivals(self):
        measure = CountMeasure()
        assert measure.timestamp(Record(10, 0)) == 0
        assert measure.timestamp(Record(5, 0)) == 1
        assert measure.arrived == 2

    def test_reset(self):
        measure = CountMeasure()
        measure.timestamp(Record(0, 0))
        measure.reset()
        assert measure.arrived == 0
        assert measure.timestamp(Record(0, 0)) == 0

    def test_kind(self):
        assert CountMeasure.kind is MeasureKind.COUNT


class TestMeasureVector:
    def test_components(self):
        vector = MeasureVector(ts=100, count=7)
        assert vector.component(MeasureKind.TIME) == 100
        assert vector.component(MeasureKind.COUNT) == 7

    def test_ordering_by_ts_then_count(self):
        assert MeasureVector(1, 5) < MeasureVector(2, 0)
        assert MeasureVector(1, 1) < MeasureVector(1, 2)
        assert not MeasureVector(2, 0) < MeasureVector(1, 5)

    def test_equality_and_hash(self):
        assert MeasureVector(1, 2) == MeasureVector(1, 2)
        assert MeasureVector(1, 2) != MeasureVector(1, 3)
        assert len({MeasureVector(1, 2), MeasureVector(1, 2)}) == 1
