"""The tracked benchmark subsystem: schema, comparison, CLI contracts.

These tests exercise the harness with tiny synthetic scenarios (no real
measurement, so they are fast and deterministic) plus one end-to-end
smoke run of the real registry that enforces the CI time budget.
"""

import json
import os
import time

import pytest

from repro.bench import (
    DEFAULT_THRESHOLD,
    FINGERPRINT_FIELDS,
    RESULT_KIND,
    SCENARIOS,
    SCHEMA_VERSION,
    compare_results,
    fingerprint,
    format_report,
    load_result,
    next_bench_path,
    run_scenarios,
    select,
    write_result,
)
from repro.bench.__main__ import main as bench_main
from repro.bench.scenarios import Scenario


def _fake_scenario(name, seconds=0.01, records=100, **extra):
    def fn(size):
        run = {"records": records, "seconds": seconds, "results_emitted": 7}
        run.update(extra)
        return run

    return Scenario(name, fn, ("fake",), full_size=records, smoke_size=records)


class TestRegistry:
    def test_registry_covers_the_required_axes(self):
        names = set(SCENARIOS)
        for prefix in ("ingest/inorder/", "ingest/ooo/", "batched/", "keyed/",
                       "holistic/", "recovery/", "tracing/", "kernel/", "ooo/"):
            assert any(name.startswith(prefix) for name in names), prefix

    def test_smoke_sizes_are_smaller(self):
        for scn in SCENARIOS.values():
            assert scn.smoke_size < scn.full_size

    def test_select_filters_by_substring(self):
        assert all("tracing" in s.name for s in select(["tracing"]))
        assert len(select([])) == len(SCENARIOS)
        assert select(["no-such-scenario"]) == []


class TestHarness:
    def test_result_document_schema(self, tmp_path):
        result = run_scenarios([_fake_scenario("fake/a")], repeats=3, warmup=0, trim=1)
        assert result["kind"] == RESULT_KIND
        assert result["schema_version"] == SCHEMA_VERSION
        assert set(FINGERPRINT_FIELDS) <= set(result["fingerprint"])
        entry = result["scenarios"]["fake/a"]
        assert entry["records"] == 100
        assert len(entry["seconds"]) == 2  # 3 repeats, slowest trimmed
        assert entry["records_per_second"] == pytest.approx(100 / 0.01)
        assert entry["results_emitted"] == 7

    def test_counters_and_metrics_pass_through(self):
        scn = _fake_scenario("fake/c", counters={"z": 1, "a": 2}, metrics={"m": 3.0})
        entry = run_scenarios([scn], repeats=1, warmup=0, trim=0)["scenarios"]["fake/c"]
        assert list(entry["counters"]) == ["a", "z"]  # sorted for diffability
        assert entry["metrics"] == {"m": 3.0}

    def test_round_trip_and_numbering(self, tmp_path):
        result = run_scenarios([_fake_scenario("fake/a")], repeats=1, warmup=0, trim=0)
        first = next_bench_path(str(tmp_path))
        assert os.path.basename(first) == "BENCH_0.json"
        write_result(result, first)
        assert os.path.basename(next_bench_path(str(tmp_path))) == "BENCH_1.json"
        assert load_result(first)["scenarios"] == result["scenarios"]

    def test_load_rejects_foreign_and_future_files(self, tmp_path):
        alien = tmp_path / "alien.json"
        alien.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(ValueError, match="not a repro-bench"):
            load_result(str(alien))
        future = tmp_path / "future.json"
        future.write_text(
            json.dumps({"kind": RESULT_KIND, "schema_version": SCHEMA_VERSION + 1})
        )
        with pytest.raises(ValueError, match="schema_version"):
            load_result(str(future))

    def test_fingerprint_fields_present(self):
        print_ = fingerprint(smoke=True)
        assert set(FINGERPRINT_FIELDS) == set(print_)
        assert print_["smoke"] is True
        assert print_["python"]

    def test_run_scenarios_validates_arguments(self):
        with pytest.raises(ValueError, match="repeats"):
            run_scenarios([], repeats=0)
        with pytest.raises(ValueError, match="warmup"):
            run_scenarios([], warmup=-1)


def _doc(rates):
    return {
        "kind": RESULT_KIND,
        "schema_version": SCHEMA_VERSION,
        "fingerprint": fingerprint(),
        "config": {"smoke": True},
        "scenarios": {
            name: {"records_per_second": rate, "best_records_per_second": rate}
            for name, rate in rates.items()
        },
    }


class TestCompare:
    def test_detects_injected_regression(self):
        rows = compare_results(_doc({"a": 1000.0}), _doc({"a": 700.0}))
        assert [row.status for row in rows] == ["regression"]
        assert rows[0].delta == pytest.approx(-0.3)

    def test_noise_jitter_passes(self):
        rows = compare_results(
            _doc({"a": 1000.0, "b": 500.0}),
            _doc({"a": 1000.0 * (1 - DEFAULT_THRESHOLD + 0.01), "b": 540.0}),
        )
        assert all(row.status == "ok" for row in rows)

    def test_improvement_never_fails(self):
        rows = compare_results(_doc({"a": 1000.0}), _doc({"a": 5000.0}))
        assert rows[0].status == "improved"

    def test_new_and_missing_are_informational(self):
        rows = compare_results(_doc({"a": 1.0, "gone": 1.0}), _doc({"a": 1.0, "fresh": 1.0}))
        statuses = {row.name: row.status for row in rows}
        assert statuses == {"a": "ok", "gone": "missing", "fresh": "new"}

    def test_report_mentions_verdict(self):
        rows = compare_results(_doc({"a": 1000.0}), _doc({"a": 100.0}))
        report = format_report(rows, threshold=DEFAULT_THRESHOLD)
        assert "FAIL" in report and "a" in report
        ok_rows = compare_results(_doc({"a": 1000.0}), _doc({"a": 1000.0}))
        assert "OK: no regressions" in format_report(ok_rows, threshold=DEFAULT_THRESHOLD)

    def test_threshold_validation(self):
        with pytest.raises(ValueError, match="threshold"):
            compare_results(_doc({}), _doc({}), threshold=0)


class TestCLI:
    def test_list_exits_zero(self, capsys):
        assert bench_main(["--list"]) == 0
        out = capsys.readouterr().out
        assert "tracing/off" in out

    def test_unknown_filter_exits_two(self, capsys):
        assert bench_main(["-k", "no-such-scenario"]) == 2

    def test_smoke_subset_emits_valid_json_under_budget(self, tmp_path, capsys):
        """The acceptance contract: --smoke produces a valid result file
        well inside the 30 s CI budget (full registry measured here via
        a representative subset to keep the unit suite quick)."""
        out = tmp_path / "BENCH_0.json"
        started = time.perf_counter()
        code = bench_main(
            ["--smoke", "-k", "tracing", "-k", "recovery", "--out", str(out)]
        )
        elapsed = time.perf_counter() - started
        assert code == 0
        assert elapsed < 30
        document = load_result(str(out))
        assert document["config"]["smoke"] is True
        assert "tracing/on" in document["scenarios"]
        assert document["scenarios"]["recovery/checkpointed"]["metrics"][
            "checkpoints_taken"
        ] >= 1

    def test_compare_against_self_is_clean(self, tmp_path, capsys):
        """A run compared against itself must never report regressions."""
        out = tmp_path / "BENCH_0.json"
        assert bench_main(["--smoke", "-k", "batched/", "--out", str(out)]) == 0
        document = load_result(str(out))
        rows = compare_results(document, document)
        assert all(row.status == "ok" for row in rows)

    def test_compare_exit_codes(self, tmp_path, capsys):
        out = tmp_path / "BENCH_0.json"
        assert bench_main(["--smoke", "-k", "tracing/off", "--out", str(out)]) == 0
        document = load_result(str(out))

        # Inflate the baseline: the fresh measurement now "regresses".
        inflated = json.loads(json.dumps(document))
        for entry in inflated["scenarios"].values():
            entry["records_per_second"] *= 100
            entry["best_records_per_second"] *= 100
        bad = tmp_path / "inflated.json"
        bad.write_text(json.dumps(inflated))
        out2 = tmp_path / "BENCH_1.json"
        assert (
            bench_main(
                ["--smoke", "-k", "tracing/off", "--out", str(out2), "--compare", str(bad)]
            )
            == 1
        )

        # Compared against the honest previous run: clean exit.
        out3 = tmp_path / "BENCH_2.json"
        assert (
            bench_main(
                ["--smoke", "-k", "tracing/off", "--out", str(out3), "--compare", str(out)]
            )
            == 0
        )
