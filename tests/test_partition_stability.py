"""Partition assignment must be reproducible across processes.

The builtin ``hash()`` is salted per process for strings (and anything
containing them), so ``hash(key) % parallelism`` routed the same key to
different partitions in different runs -- a restored keyed pipeline
would have consulted the wrong partition's state.  ``stable_hash``
(zlib.crc32 over a canonical encoding) fixes that; these tests pin the
behaviour, including across ``PYTHONHASHSEED`` values in subprocesses.
"""

import subprocess
import sys

import pytest

from conftest import subprocess_env
from repro.aggregations import Sum
from repro.core.operator_ import GeneralSlicingOperator
from repro.core.types import Record, Watermark
from repro.runtime.partition import (
    ParallelResult,
    hash_partition,
    run_parallel,
    stable_hash,
)
from repro.windows import TumblingWindow


class TestStableHash:
    def test_deterministic_for_common_key_types(self):
        # Pinned values: changing the encoding silently would re-route
        # keys on restore, so a change here must be a conscious one.
        assert stable_hash("sensor-17") == stable_hash("sensor-17")
        assert stable_hash(b"sensor-17") == stable_hash(b"sensor-17")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash("sensor-17") == 3769463154

    def test_distinct_types_do_not_collide_by_encoding(self):
        values = [1, "1", b"1", 1.0, True, (1,), ["1"], None]
        encodings = {stable_hash(v) for v in values}
        assert len(encodings) == len(values)

    def test_container_keys(self):
        assert stable_hash(("user", 42)) != stable_hash(("user", 43))
        assert stable_hash(frozenset({1, 2})) == stable_hash(frozenset({2, 1}))

    def test_set_keys_encode_like_frozenset(self):
        # A plain set used to fall through to the repr fallback, whose
        # element order depends on PYTHONHASHSEED -- the same key routed
        # to different shards in different processes.  Sets and
        # frozensets compare equal in Python, so they must hash equal.
        assert stable_hash({1, 2}) == stable_hash({2, 1})
        assert stable_hash({1, 2}) == stable_hash(frozenset({1, 2}))
        assert stable_hash({"a", "b"}) == stable_hash({"b", "a"})
        assert stable_hash({1, 2}) != stable_hash({1, 3})

    def test_dict_keys_encode_by_sorted_items(self):
        assert stable_hash({"a": 1, "b": 2}) == stable_hash({"b": 2, "a": 1})
        assert stable_hash({"a": 1}) != stable_hash({"a": 2})
        assert stable_hash({}) != stable_hash(set())

    def test_namedtuple_keys_encode_as_tuples(self):
        import collections

        Point = collections.namedtuple("Point", "x y")
        # isinstance-based tagging: the old type-keyed lookup raised
        # KeyError for tuple subclasses.
        assert stable_hash(Point(1, 2)) == stable_hash((1, 2))

    def test_fallback_for_unregistered_types(self):
        import enum

        class Color(enum.Enum):
            RED = 1

        assert stable_hash(Color.RED) == stable_hash(Color.RED)

    def test_reasonably_uniform_over_partitions(self):
        parallelism = 8
        counts = [0] * parallelism
        for i in range(4000):
            counts[stable_hash(f"key-{i}") % parallelism] += 1
        expected = 4000 / parallelism
        for count in counts:
            assert 0.7 * expected < count < 1.3 * expected


def _partition_digest(seed: str) -> str:
    """Run the partitioner under a specific PYTHONHASHSEED; digest routing."""
    code = (
        "from repro.core.types import Record\n"
        "from repro.runtime.partition import hash_partition\n"
        "elements = [Record(i, 1.0, key=f'key-{i % 97}') for i in range(500)]\n"
        "partitions = hash_partition(elements, 5)\n"
        "print(';'.join(','.join(str(e.ts) for e in p) for p in partitions))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=subprocess_env(PYTHONHASHSEED=seed),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_partitioning_identical_across_hash_seeds():
    digests = {_partition_digest(seed) for seed in ("0", "1", "424242")}
    assert len(digests) == 1, "partition routing depends on PYTHONHASHSEED"


def test_partitioning_matches_in_process_routing():
    """The parent process routes identically to a fresh subprocess."""
    elements = [Record(i, 1.0, key=f"key-{i % 97}") for i in range(500)]
    partitions = hash_partition(elements, 5)
    local = ";".join(",".join(str(e.ts) for e in p) for p in partitions)
    assert local == _partition_digest("7")


def test_watermarks_still_broadcast():
    elements = [Record(0, 1.0, key="a"), Watermark(5), Record(6, 1.0, key="b")]
    for partition in hash_partition(elements, 3):
        assert any(isinstance(e, Watermark) for e in partition)


def _set_key_digest(seed: str) -> str:
    """Partition routing digest for set/dict keys under one hash seed."""
    code = (
        "from repro.core.types import Record\n"
        "from repro.runtime.partition import hash_partition\n"
        "elements = ["
        "Record(i, 1.0, key={f'tag-{i % 11}', f'tag-{(i * 7) % 13}', i % 5})"
        " for i in range(300)]\n"
        "elements += ["
        "Record(300 + i, 1.0, key={'region': f'r{i % 7}', 'tier': i % 3})"
        " for i in range(200)]\n"
        "partitions = hash_partition(elements, 5)\n"
        "print(';'.join(','.join(str(e.ts) for e in p) for p in partitions))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=subprocess_env(PYTHONHASHSEED=seed),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_set_and_dict_key_routing_identical_across_hash_seeds():
    """The satellite bug: set keys routed via the repr fallback, whose
    iteration order is salted -- routing differed between processes."""
    digests = {_set_key_digest(seed) for seed in ("0", "1", "424242")}
    assert len(digests) == 1, "set/dict key routing depends on PYTHONHASHSEED"


# ----------------------------------------------------------------------
# run_parallel result semantics


class TestParallelResult:
    def test_zero_wall_time_reports_zero_rate(self):
        # Used to return float("inf"), inconsistent with the throughput
        # harness's 0.0 guard; inf leaked into JSON and comparisons.
        assert ParallelResult(100, 0.0, 0.0, 0, 1).records_per_second == 0.0
        assert ParallelResult(0, 0.0, 0.0, 0, 1).records_per_second == 0.0
        assert ParallelResult(0, 1.0, 0.0, 0, 1).records_per_second == 0.0

    def test_positive_rate_unchanged(self):
        assert ParallelResult(100, 0.5, 0.0, 0, 1).records_per_second == 200.0


def _tail_window_operator():
    """Module-level factory (run_parallel pickles it into workers)."""
    operator = GeneralSlicingOperator(stream_in_order=True)
    operator.add_query(TumblingWindow(10), Sum())
    return operator


@pytest.mark.parametrize("parallelism", [1, 2])
def test_run_parallel_flushes_tail_windows(parallelism):
    """The last window only materializes on flush: records stop at
    ts=14, so window [10, 20) closes for no in-stream reason.  Workers
    used to drop it from results_emitted."""
    elements = [Record(ts, 1.0, key=f"k{ts % 4}") for ts in range(15)]
    expected = 0
    unflushed = 0
    for partition in hash_partition(elements, parallelism):
        operator = _tail_window_operator()
        in_stream = len(operator.run(partition))
        tail = operator.flush()
        if any(isinstance(element, Record) for element in partition):
            assert any(result.end == 20 for result in tail), "tail window missing"
        else:
            assert tail == []  # empty partitions flush to nothing
        unflushed += in_stream
        expected += in_stream + len(tail)
    result = run_parallel(_tail_window_operator, elements, parallelism)
    assert result.results_emitted == expected
    # The tail windows are genuinely part of the count: a no-flush run
    # emits strictly fewer results.
    assert result.results_emitted > unflushed
