"""Partition assignment must be reproducible across processes.

The builtin ``hash()`` is salted per process for strings (and anything
containing them), so ``hash(key) % parallelism`` routed the same key to
different partitions in different runs -- a restored keyed pipeline
would have consulted the wrong partition's state.  ``stable_hash``
(zlib.crc32 over a canonical encoding) fixes that; these tests pin the
behaviour, including across ``PYTHONHASHSEED`` values in subprocesses.
"""

import subprocess
import sys

from conftest import subprocess_env
from repro.core.types import Record, Watermark
from repro.runtime.partition import hash_partition, stable_hash


class TestStableHash:
    def test_deterministic_for_common_key_types(self):
        # Pinned values: changing the encoding silently would re-route
        # keys on restore, so a change here must be a conscious one.
        assert stable_hash("sensor-17") == stable_hash("sensor-17")
        assert stable_hash(b"sensor-17") == stable_hash(b"sensor-17")
        assert stable_hash(("a", 1)) == stable_hash(("a", 1))
        assert stable_hash("sensor-17") == 3769463154

    def test_distinct_types_do_not_collide_by_encoding(self):
        values = [1, "1", b"1", 1.0, True, (1,), ["1"], None]
        encodings = {stable_hash(v) for v in values}
        assert len(encodings) == len(values)

    def test_container_keys(self):
        assert stable_hash(("user", 42)) != stable_hash(("user", 43))
        assert stable_hash(frozenset({1, 2})) == stable_hash(frozenset({2, 1}))

    def test_fallback_for_unregistered_types(self):
        import enum

        class Color(enum.Enum):
            RED = 1

        assert stable_hash(Color.RED) == stable_hash(Color.RED)

    def test_reasonably_uniform_over_partitions(self):
        parallelism = 8
        counts = [0] * parallelism
        for i in range(4000):
            counts[stable_hash(f"key-{i}") % parallelism] += 1
        expected = 4000 / parallelism
        for count in counts:
            assert 0.7 * expected < count < 1.3 * expected


def _partition_digest(seed: str) -> str:
    """Run the partitioner under a specific PYTHONHASHSEED; digest routing."""
    code = (
        "from repro.core.types import Record\n"
        "from repro.runtime.partition import hash_partition\n"
        "elements = [Record(i, 1.0, key=f'key-{i % 97}') for i in range(500)]\n"
        "partitions = hash_partition(elements, 5)\n"
        "print(';'.join(','.join(str(e.ts) for e in p) for p in partitions))\n"
    )
    result = subprocess.run(
        [sys.executable, "-c", code],
        env=subprocess_env(PYTHONHASHSEED=seed),
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout.strip()


def test_partitioning_identical_across_hash_seeds():
    digests = {_partition_digest(seed) for seed in ("0", "1", "424242")}
    assert len(digests) == 1, "partition routing depends on PYTHONHASHSEED"


def test_partitioning_matches_in_process_routing():
    """The parent process routes identically to a fresh subprocess."""
    elements = [Record(i, 1.0, key=f"key-{i % 97}") for i in range(500)]
    partitions = hash_partition(elements, 5)
    local = ";".join(",".join(str(e.ts) for e in p) for p in partitions)
    assert local == _partition_digest("7")


def test_watermarks_still_broadcast():
    elements = [Record(0, 1.0, key="a"), Watermark(5), Record(6, 1.0, key="b")]
    for partition in hash_partition(elements, 3):
        assert any(isinstance(e, Watermark) for e in partition)
