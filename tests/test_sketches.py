"""Tests for the extended aggregations (top-k, distinct, product)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregations import CountDistinct, Product, TopK, fold


class TestTopK:
    def test_basic(self):
        fn = TopK(3)
        assert fn.lower(fold(fn, [5.0, 1.0, 9.0, 7.0, 3.0])) == [9.0, 7.0, 5.0]

    def test_fewer_values_than_k(self):
        fn = TopK(5)
        assert fn.lower(fold(fn, [2.0, 1.0])) == [2.0, 1.0]

    def test_duplicates_kept(self):
        fn = TopK(3)
        assert fn.lower(fold(fn, [4.0, 4.0, 4.0, 1.0])) == [4.0, 4.0, 4.0]

    def test_partial_size_bounded(self):
        fn = TopK(2)
        partial = fold(fn, [float(i) for i in range(100)])
        assert len(partial) == 2

    def test_invalid_k(self):
        with pytest.raises(ValueError):
            TopK(0)

    def test_signature_includes_k(self):
        assert TopK(2).signature() != TopK(3).signature()
        assert TopK(2).signature() == TopK(2).signature()

    def test_empty_result(self):
        assert TopK(3).empty_result() == []

    @given(values=st.lists(st.integers(-100, 100).map(float), min_size=1, max_size=40))
    @settings(max_examples=40)
    def test_matches_sorted_reference(self, values):
        fn = TopK(4)
        assert fn.lower(fold(fn, values)) == sorted(values, reverse=True)[:4]


class TestCountDistinct:
    def test_basic(self):
        fn = CountDistinct()
        assert fn.lower(fold(fn, ["a", "b", "a", "c", "b"])) == 3

    def test_empty_result(self):
        assert CountDistinct().empty_result() == 0

    @given(values=st.lists(st.integers(0, 10), min_size=1, max_size=50))
    @settings(max_examples=40)
    def test_matches_set_reference(self, values):
        fn = CountDistinct()
        assert fn.lower(fold(fn, values)) == len(set(values))

    @given(
        left=st.lists(st.integers(0, 5), max_size=20),
        right=st.lists(st.integers(0, 5), max_size=20),
    )
    @settings(max_examples=40)
    def test_combine_is_union(self, left, right):
        fn = CountDistinct()
        lp = fold(fn, left) if left else fn.identity()
        rp = fold(fn, right) if right else fn.identity()
        assert fn.lower(fn.combine(lp, rp)) == len(set(left) | set(right))


class TestProduct:
    def test_basic(self):
        fn = Product()
        assert fn.lower(fold(fn, [2.0, 3.0, 4.0])) == 24.0

    def test_zero_makes_product_zero(self):
        fn = Product()
        assert fn.lower(fold(fn, [2.0, 0.0, 4.0])) == 0.0

    def test_invert_regular_value(self):
        fn = Product()
        partial = fold(fn, [2.0, 3.0, 4.0])
        reduced = fn.invert(partial, fn.lift(4.0))
        assert fn.lower(reduced) == 6.0

    def test_invert_a_zero_recovers_product(self):
        fn = Product()
        partial = fold(fn, [2.0, 0.0, 4.0])
        reduced = fn.invert(partial, fn.lift(0.0))
        assert fn.lower(reduced) == 8.0

    def test_identity(self):
        fn = Product()
        assert fn.lower(fn.combine(fn.identity(), fn.lift(7.0))) == 7.0

    @given(values=st.lists(st.integers(-5, 5).map(float), min_size=1, max_size=15))
    @settings(max_examples=40)
    def test_matches_direct_product(self, values):
        fn = Product()
        expected = 1.0
        for value in values:
            expected *= value
        assert fn.lower(fold(fn, values)) == pytest.approx(expected)


class TestInsideOperator:
    def test_topk_over_tumbling_windows(self):
        from repro import GeneralSlicingOperator, Record
        from repro.windows import TumblingWindow

        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(TumblingWindow(10), TopK(2))
        results = op.run([Record(t, float(t % 7)) for t in range(25)])
        assert results[0].value == [6.0, 5.0]

    def test_count_distinct_over_sessions(self):
        from repro import GeneralSlicingOperator, Record, Watermark
        from repro.windows import SessionWindow

        op = GeneralSlicingOperator(stream_in_order=True)
        op.add_query(SessionWindow(5), CountDistinct())
        out = op.run(
            [Record(0, "x"), Record(1, "y"), Record(2, "x"), Watermark(100)]
        )
        assert out[-1].value == 2
