"""Property-based kernel suite: random op sequences vs a list oracle.

Every kernel (FlatFAT, finger-tree, two-stacks, subtract-on-evict) is
driven through
seeded random operation sequences -- append / update / insert / remove /
evict / merge / query -- for every aggregation in the default registry,
and checked step-by-step against a brute-force oracle that keeps the
leaf partials in a plain list and folds ranges left-to-right.

Mirrors ``tests/test_differential_fuzz.py``: the base seed comes from
``REPRO_KERNEL_SEED`` (default pinned), each case derives a child seed,
and a failing op sequence is greedily shrunk (drop one op at a time
while the disagreement persists) before being printed in a pasteable
form.  Op arguments are stored as raw integers and mapped onto the
current structure size at apply time, so dropped ops never invalidate
later ones.

Comparisons go through ``lower_or_default`` so partial representations
(tuples, RLE runs, M4 structs) compare by meaning; floats use the same
1e-9 ``isclose`` tolerance as ``tests/test_aggregations_properties.py``
(geomean's log-sum partials re-associate across kernels).

A snapshot/restore test at the bottom covers the checkpoint side: every
kernel's state must survive a mid-stream RSLC round-trip bit-for-bit.
"""

from __future__ import annotations

import math
import os
import random
from typing import Any, List, Optional, Tuple

import pytest

from repro import GeneralSlicingOperator, Record, Watermark
from repro.aggregations import Sum, default_registry
from repro.aggregations.base import AggregateFunction
from repro.core.kernels import KernelKind, make_kernel
from repro.runtime.checkpoint import restore, snapshot
from repro.windows import SlidingWindow, TumblingWindow

pytestmark = pytest.mark.fuzz

BASE_SEED = int(os.environ.get("REPRO_KERNEL_SEED", "20150831"))

#: Iteration multiplier for long fuzz campaigns (``fuzz-long`` CI job).
FUZZ_SCALE = max(1, int(os.environ.get("REPRO_FUZZ_SCALE", "1")))

SEEDS = range(3 * FUZZ_SCALE)
OPS_PER_CASE = 120

#: Op kinds with draw weights; raw arguments are resolved at apply time.
OP_KINDS = (
    ("append", 5),
    ("update", 2),
    ("insert", 1),
    ("remove", 1),
    ("evict", 2),
    ("merge", 1),
    ("query", 3),
)
_WEIGHTED = [kind for kind, weight in OP_KINDS for _ in range(weight)]

Op = Tuple[str, int, int, int]  # (kind, raw_a, raw_b, raw_value)


def _child_seed(fn_name: str, kernel: str, index: int) -> int:
    return random.Random(f"{BASE_SEED}:{fn_name}:{kernel}:{index}").randrange(2**63)


def _cases():
    for fn_name, fn in default_registry().items():
        kinds = [KernelKind.FLAT_FAT, KernelKind.TWO_STACKS]
        if fn.associative:
            kinds.append(KernelKind.FINGER_TREE)
        if fn.invertible:
            kinds.append(KernelKind.SUBTRACT_ON_EVICT)
        for kind in kinds:
            for seed_index in SEEDS:
                yield pytest.param(
                    fn_name, kind, seed_index, id=f"{fn_name}-{kind.value}-s{seed_index}"
                )


# ----------------------------------------------------------------------
# oracle and comparison


def _lift_value(function: AggregateFunction, fn_name: str, raw: int) -> Any:
    """Map a raw int draw onto this function's input domain."""
    value = float(raw % 50 + 1)  # strictly positive: geomean-safe
    if fn_name in ("argmin", "argmax"):
        return function.lift((value, f"t{raw % 7}"))
    return function.lift(value)


def _oracle_fold(function: AggregateFunction, leaves: List[Any], lo: int, hi: int) -> Any:
    partial = None
    for leaf in leaves[lo:hi]:
        if leaf is None:
            continue
        partial = leaf if partial is None else function.combine(partial, leaf)
    return partial


def _approx_equal(left: Any, right: Any) -> bool:
    if isinstance(left, float) and isinstance(right, float):
        return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(left, (tuple, list)) and isinstance(right, (tuple, list)):
        return len(left) == len(right) and all(
            _approx_equal(a, b) for a, b in zip(left, right)
        )
    return left == right


def _lowered(function: AggregateFunction, partial: Any) -> Any:
    return function.lower_or_default(partial)


# ----------------------------------------------------------------------
# op application


def _generate_ops(rng: random.Random) -> List[Op]:
    return [
        (
            rng.choice(_WEIGHTED),
            rng.randrange(2**30),
            rng.randrange(2**30),
            rng.randrange(2**30),
        )
        for _ in range(OPS_PER_CASE)
    ]


def _apply_ops(
    function: AggregateFunction, fn_name: str, kind: KernelKind, ops: List[Op]
) -> Optional[str]:
    """Run ``ops`` against kernel and oracle; return a mismatch, or None."""
    kernel = make_kernel(kind, function)
    oracle: List[Any] = []
    for step, (op, raw_a, raw_b, raw_value) in enumerate(ops):
        size = len(oracle)
        partial = None if raw_value % 10 == 0 else _lift_value(function, fn_name, raw_value)
        if op == "append":
            kernel.append(partial)
            oracle.append(partial)
        elif op == "update":
            if size == 0:
                continue
            index = raw_a % size
            kernel.update(index, partial)
            oracle[index] = partial
        elif op == "insert":
            index = raw_a % (size + 1)
            kernel.insert(index, partial)
            oracle.insert(index, partial)
        elif op == "remove":
            if size == 0:
                continue
            index = raw_a % size
            removed = kernel.remove(index)
            expected_removed = oracle.pop(index)
            if not _approx_equal(
                _lowered(function, removed), _lowered(function, expected_removed)
            ):
                return f"step {step}: remove({index}) returned a wrong leaf"
        elif op == "evict":
            if size == 0:
                continue
            count = raw_a % min(size, 4) + 1
            kernel.remove_front(count)
            del oracle[:count]
        elif op == "merge":
            # A slice merge as the store performs it: fold the right
            # neighbour into the left leaf, then drop the right leaf.
            if size < 2:
                continue
            index = raw_a % (size - 1)
            left, right = oracle[index], oracle[index + 1]
            if left is None:
                merged = right
            elif right is None:
                merged = left
            else:
                merged = function.combine(left, right)
            kernel.update(index, merged)
            kernel.remove(index + 1)
            oracle[index] = merged
            del oracle[index + 1]
        elif op == "query":
            if size == 0:
                continue
            a, b = raw_a % (size + 1), raw_b % (size + 1)
            lo, hi = min(a, b), max(a, b)
            got = _lowered(function, kernel.query(lo, hi))
            want = _lowered(function, _oracle_fold(function, oracle, lo, hi))
            if not _approx_equal(got, want):
                return f"step {step}: query({lo}, {hi}) = {got!r}, oracle {want!r}"
        if len(kernel) != len(oracle):
            return f"step {step}: after {op}, size {len(kernel)} != oracle {len(oracle)}"
        got_root = _lowered(function, kernel.root())
        want_root = _lowered(function, _oracle_fold(function, oracle, 0, len(oracle)))
        if not _approx_equal(got_root, want_root):
            return f"step {step}: after {op}, root {got_root!r}, oracle {want_root!r}"
    got_leaves = [_lowered(function, leaf) for leaf in kernel.leaves()]
    want_leaves = [_lowered(function, leaf) for leaf in oracle]
    if not _approx_equal(got_leaves, want_leaves):
        return f"final leaves {got_leaves!r} != oracle {want_leaves!r}"
    return None


def _shrink_ops(
    function: AggregateFunction, fn_name: str, kind: KernelKind, ops: List[Op]
) -> List[Op]:
    """Greedy delta-debugging: drop one op at a time while still failing."""
    current = list(ops)
    changed = True
    while changed:
        changed = False
        index = 0
        while index < len(current):
            candidate = current[:index] + current[index + 1 :]
            if candidate and _apply_ops(function, fn_name, kind, candidate) is not None:
                current = candidate
                changed = True
            else:
                index += 1
    return current


# ----------------------------------------------------------------------
# the property cases


@pytest.mark.parametrize("fn_name,kind,seed_index", _cases())
def test_kernel_matches_list_oracle(fn_name, kind, seed_index):
    function = default_registry()[fn_name]
    seed = _child_seed(fn_name, kind.value, seed_index)
    ops = _generate_ops(random.Random(seed))
    failure = _apply_ops(function, fn_name, kind, ops)
    if failure is None:
        return
    minimal = _shrink_ops(function, fn_name, kind, ops)
    final_failure = _apply_ops(function, fn_name, kind, minimal)
    ops_repr = ", ".join(repr(op) for op in minimal)
    pytest.fail(
        f"kernel {kind.value!r} diverges from the list oracle for "
        f"{fn_name!r} (seed {seed})\n"
        f"failure: {final_failure}\n"
        f"minimal op sequence ({len(minimal)} of {len(ops)} ops):\n  [{ops_repr}]"
    )


# ----------------------------------------------------------------------
# kernel capability and selection edges


def test_subtract_kernel_rejects_non_invertible():
    registry = default_registry()
    with pytest.raises(ValueError, match="invertible"):
        make_kernel(KernelKind.SUBTRACT_ON_EVICT, registry["min"])


def test_kernel_override_requires_eager():
    with pytest.raises(ValueError, match="eager"):
        GeneralSlicingOperator(stream_in_order=True, kernel="two_stacks")


def test_unknown_kernel_name_rejected():
    with pytest.raises(ValueError, match="unknown kernel"):
        GeneralSlicingOperator(stream_in_order=True, eager=True, kernel="btree")


# ----------------------------------------------------------------------
# checkpoint round-trip: kernel state through RSLC snapshots


@pytest.mark.parametrize(
    "kernel", ["flatfat", "finger_tree", "two_stacks", "subtract_on_evict"]
)
def test_kernel_state_survives_snapshot_restore(kernel):
    """Snapshot mid-stream, restore, continue both: bit-identical output.

    The restored operator must carry the kernel's internal stacks and
    prefixes, not just the slice list -- a wrong restore shows up as a
    diverging window result on the remainder of the stream.
    """

    def build():
        operator = GeneralSlicingOperator(stream_in_order=True, eager=True, kernel=kernel)
        operator.add_query(TumblingWindow(10), Sum())
        operator.add_query(SlidingWindow(25, 5), Sum())
        return operator

    stream = [Record(ts, float(ts % 13 - 6)) for ts in range(200)]
    original = build()
    results = []
    for record in stream[:100]:
        results.extend(original.process(record))
    clone = restore(snapshot(original))
    assert type(clone._chains[next(iter(clone._chains))].store.kernels[0]) is type(
        original._chains[next(iter(original._chains))].store.kernels[0]
    )
    tail_original, tail_clone = [], []
    for record in stream[100:] + [Watermark(10_000)]:
        tail_original.extend(original.process(record))
        tail_clone.extend(clone.process(record))
    assert tail_original == tail_clone
    assert len(tail_original) > 0
