"""Property-based tests: the declared algebraic properties must hold.

The correctness of slicing *depends* on these properties (Section 4.2):
associativity enables sharing; commutativity enables cheap out-of-order
updates; invertibility enables cheap count shifts.  Hypothesis checks
each declared property against the implementation.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.aggregations import (
    Average,
    Count,
    GeometricMean,
    M4,
    Max,
    Median,
    Min,
    Percentile,
    PopulationStdDev,
    Sum,
    fold,
)
from repro.aggregations.ordered import CollectList, ConcatString, First, Last

# Bounded floats keep float associativity exact enough to assert equality
# on lowered results with tolerance.
values = st.integers(min_value=-1000, max_value=1000).map(float)
positive_values = st.integers(min_value=1, max_value=1000).map(float)

COMMUTATIVE_FUNCTIONS = [Sum(), Count(), Average(), Min(), Max(), PopulationStdDev(), Median()]
ALL_FUNCTIONS = COMMUTATIVE_FUNCTIONS + [M4(), First(), Last(), CollectList()]


def _approx_equal(left, right) -> bool:
    if isinstance(left, float) and isinstance(right, float):
        return math.isclose(left, right, rel_tol=1e-9, abs_tol=1e-9)
    if isinstance(left, tuple) and isinstance(right, tuple):
        return len(left) == len(right) and all(
            _approx_equal(a, b) for a, b in zip(left, right)
        )
    return left == right


@given(x=values, y=values, z=values)
@settings(max_examples=60)
def test_associativity_all_functions(x, y, z):
    for fn in ALL_FUNCTIONS:
        a, b, c = fn.lift(x), fn.lift(y), fn.lift(z)
        left = fn.combine(fn.combine(a, b), c)
        right = fn.combine(a, fn.combine(b, c))
        assert _approx_equal(fn.lower(left), fn.lower(right)), fn.name


@given(x=values, y=values)
@settings(max_examples=60)
def test_commutativity_where_declared(x, y):
    for fn in COMMUTATIVE_FUNCTIONS:
        assert fn.commutative, fn.name
        left = fn.combine(fn.lift(x), fn.lift(y))
        right = fn.combine(fn.lift(y), fn.lift(x))
        assert _approx_equal(fn.lower(left), fn.lower(right)), fn.name


@given(batch=st.lists(values, min_size=1, max_size=30), removed_index=st.integers(0, 29))
@settings(max_examples=60)
def test_invert_roundtrip(batch, removed_index):
    removed_index %= len(batch)
    removed = batch[removed_index]
    remaining = batch[:removed_index] + batch[removed_index + 1 :]
    for fn in (Sum(), Count(), Average(), PopulationStdDev(), Median()):
        assert fn.invertible, fn.name
        full = fold(fn, batch)
        reduced = fn.invert(full, fn.lift(removed))
        if remaining:
            expected = fold(fn, remaining)
            assert _approx_equal(fn.lower(reduced), fn.lower(expected)), fn.name


@given(batch=st.lists(positive_values, min_size=1, max_size=20))
@settings(max_examples=40)
def test_geomean_matches_direct_computation(batch):
    fn = GeometricMean()
    partial = fold(fn, batch)
    direct = math.exp(sum(math.log(v) for v in batch) / len(batch))
    assert math.isclose(fn.lower(partial), direct, rel_tol=1e-9)


@given(batch=st.lists(values, min_size=1, max_size=50))
@settings(max_examples=60)
def test_median_matches_sorted_reference(batch):
    fn = Median()
    partial = fold(fn, batch)
    expected = sorted(batch)[min(len(batch) - 1, int(0.5 * len(batch)))]
    assert fn.lower(partial) == expected


@given(batch=st.lists(values, min_size=1, max_size=50), q=st.floats(0.0, 1.0))
@settings(max_examples=60)
def test_percentile_matches_nearest_rank(batch, q):
    fn = Percentile(q)
    partial = fold(fn, batch)
    expected = sorted(batch)[min(len(batch) - 1, max(0, int(q * len(batch))))]
    assert fn.lower(partial) == expected


@given(
    left=st.lists(values, min_size=0, max_size=30),
    right=st.lists(values, min_size=0, max_size=30),
)
@settings(max_examples=60)
def test_rle_merge_equals_multiset_union(left, right):
    from repro.aggregations import RleRuns

    merged = RleRuns.from_values(left).merge(RleRuns.from_values(right))
    assert merged.runs == RleRuns.from_values(left + right).runs


@given(batch=st.lists(values, min_size=1, max_size=30))
@settings(max_examples=60)
def test_m4_fold_matches_direct(batch):
    fn = M4()
    result = fn.lower(fold(fn, batch))
    assert result == (min(batch), max(batch), batch[0], batch[-1])


@given(batch=st.lists(st.text(max_size=4), min_size=1, max_size=10))
@settings(max_examples=40)
def test_concat_order_sensitive(batch):
    fn = ConcatString("|")
    assert fn.lower(fold(fn, batch)) == "|".join(batch)
